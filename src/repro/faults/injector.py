"""Runtime fault injection compiled from a :class:`FaultPlan`.

The :class:`FaultInjector` materializes a plan into concrete, seeded
schedules for one simulation run: sorted telemetry dropout/freeze windows,
a server churn event list, and per-command actuation perturbations. The
cluster simulator consults it at every telemetry tick and command issue;
the injector tallies what it injected so the end-of-run
:class:`~repro.faults.report.RobustnessReport` can compare injected
against detected and recovered faults.

All randomness derives from the plan seed via independent child streams,
so the same ``(plan, duration, n_servers)`` triple always injects the
identical fault sequence regardless of what the simulated cluster does.
"""

from __future__ import annotations

import bisect
import enum
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, ServerChurnEvent, Window


class TelemetryFate(enum.Enum):
    """What happens to one telemetry sample."""

    OK = "ok"
    DROPPED = "dropped"
    FROZEN = "frozen"


def _merge_windows(windows: List[Window]) -> List[Window]:
    """Sort and coalesce overlapping windows."""
    merged: List[Window] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _random_windows(
    rng: np.random.Generator,
    rate_per_hour: float,
    mean_duration_s: float,
    duration_s: float,
) -> List[Window]:
    """Poisson-process windows over ``[0, duration_s)``."""
    if rate_per_hour <= 0:
        return []
    expected = rate_per_hour * duration_s / 3600.0
    count = int(rng.poisson(expected))
    windows: List[Window] = []
    for _ in range(count):
        start = float(rng.uniform(0.0, duration_s))
        length = float(rng.exponential(mean_duration_s))
        windows.append((start, min(start + length, duration_s)))
    return windows


class FaultInjector:
    """Materialized fault schedule for one simulation run.

    Attributes:
        plan: The source plan.
        duration_s: Simulated horizon the schedules cover.
        n_servers: Deployed server count (bounds churn targets).
    """

    def __init__(
        self, plan: FaultPlan, duration_s: float, n_servers: int
    ) -> None:
        if duration_s <= 0:
            raise ConfigurationError("injector duration must be positive")
        if n_servers <= 0:
            raise ConfigurationError("injector needs at least one server")
        self.plan = plan
        self.duration_s = duration_s
        self.n_servers = n_servers
        seeds = np.random.SeedSequence(plan.seed).spawn(4)
        windows_rng = np.random.default_rng(seeds[0])
        churn_rng = np.random.default_rng(seeds[1])
        self._spike_rng = np.random.default_rng(seeds[2])
        self._delay_rng = np.random.default_rng(seeds[3])

        telemetry = plan.telemetry
        self.dropout_windows: List[Window] = _merge_windows(
            list(telemetry.dropout_windows)
            + _random_windows(
                windows_rng,
                telemetry.dropouts_per_hour,
                telemetry.dropout_duration_s,
                duration_s,
            )
        )
        self.freeze_windows: List[Window] = _merge_windows(
            list(telemetry.freeze_windows)
            + _random_windows(
                windows_rng,
                telemetry.freezes_per_hour,
                telemetry.freeze_duration_s,
                duration_s,
            )
        )
        self._dropout_starts = [w[0] for w in self.dropout_windows]
        self._freeze_starts = [w[0] for w in self.freeze_windows]
        self.churn_events: List[ServerChurnEvent] = self._compile_churn(
            churn_rng
        )

        # Injection tallies (consumed by the RobustnessReport).
        self.dropped_ticks = 0
        self.frozen_ticks = 0
        self.spikes_injected = 0
        self.delayed_actuations = 0

    # ------------------------------------------------------------------
    def _compile_churn(
        self, rng: np.random.Generator
    ) -> List[ServerChurnEvent]:
        churn = self.plan.churn
        events = [
            e for e in churn.events
            if e.fail_at_s < self.duration_s
        ]
        for event in events:
            if event.server_index >= self.n_servers:
                raise ConfigurationError(
                    f"churn targets server {event.server_index} but only "
                    f"{self.n_servers} are deployed"
                )
        if churn.failures_per_hour > 0:
            expected = churn.failures_per_hour * self.duration_s / 3600.0
            for _ in range(int(rng.poisson(expected))):
                fail_at = float(rng.uniform(0.0, self.duration_s))
                downtime = float(rng.exponential(churn.mean_downtime_s))
                recover: Optional[float] = fail_at + downtime
                if recover >= self.duration_s:
                    recover = None
                events.append(ServerChurnEvent(
                    server_index=int(rng.integers(self.n_servers)),
                    fail_at_s=fail_at,
                    recover_at_s=recover,
                ))
        return sorted(events, key=lambda e: e.fail_at_s)

    # ------------------------------------------------------------------
    @staticmethod
    def _in_windows(
        t: float, starts: List[float], windows: List[Window]
    ) -> bool:
        index = bisect.bisect_right(starts, t) - 1
        return index >= 0 and t < windows[index][1]

    def telemetry_fate(self, t: float) -> TelemetryFate:
        """Decide what happens to the sample taken at time ``t``.

        Dropout wins over freeze when windows overlap. Tallies the
        injected fault.
        """
        if self._in_windows(t, self._dropout_starts, self.dropout_windows):
            self.dropped_ticks += 1
            return TelemetryFate.DROPPED
        if self._in_windows(t, self._freeze_starts, self.freeze_windows):
            self.frozen_ticks += 1
            return TelemetryFate.FROZEN
        return TelemetryFate.OK

    def perturb_sample(self, value: float) -> float:
        """Apply spike noise on top of the interface's Gaussian noise."""
        telemetry = self.plan.telemetry
        if telemetry.spike_prob <= 0:
            return value
        if float(self._spike_rng.random()) < telemetry.spike_prob:
            self.spikes_injected += 1
            sign = 1.0 if float(self._spike_rng.random()) < 0.5 else -1.0
            return value * (1.0 + sign * telemetry.spike_magnitude)
        return value

    def actuation_extra_delay(self) -> float:
        """Beyond-spec delay for the command being issued (0.0 = on time)."""
        actuation = self.plan.actuation
        if actuation.delay_prob <= 0:
            return 0.0
        if float(self._delay_rng.random()) < actuation.delay_prob:
            self.delayed_actuations += 1
            return float(self._delay_rng.exponential(actuation.extra_delay_s))
        return 0.0

    @property
    def dropout_window_count(self) -> int:
        """Number of distinct (merged) dropout windows in the schedule."""
        return len(self.dropout_windows)

    @property
    def freeze_window_count(self) -> int:
        """Number of distinct (merged) freeze windows in the schedule."""
        return len(self.freeze_windows)


def summarize_schedule(injector: FaultInjector) -> str:
    """Human-readable one-line summary of a compiled schedule."""
    return (
        f"{injector.dropout_window_count} dropout window(s), "
        f"{injector.freeze_window_count} freeze window(s), "
        f"{len(injector.churn_events)} churn event(s) over "
        f"{injector.duration_s:.0f} s"
    )
