"""Row manager: 2-second aggregate power telemetry for a row of racks.

The row manager "aggregates the power draw across all servers in the row"
(Section 3.1) and delivers a reading every 2 seconds (Tables 1-2:
"Power telemetry delay: 2s"). POLCA's power manager consumes exactly this
signal (Figure 12) — it is the coarsest but the only row-level view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.timeseries import TimeSeries
from repro.errors import TelemetryError
from repro.telemetry.base import SampledInterface, Signal

#: Row-level telemetry period (Table 2).
ROW_TELEMETRY_INTERVAL_S = 2.0


@dataclass
class RowManager(SampledInterface):
    """OOB aggregate power telemetry for one row (PDU scope)."""

    name: str = "RowManager"
    interval: float = ROW_TELEMETRY_INTERVAL_S
    in_band: bool = False
    delay: float = 0.0
    noise_std: float = 0.0

    def aggregate_signal(self, server_signals: Sequence[Signal]) -> Signal:
        """Build the row power signal as the sum of server signals.

        Raises:
            TelemetryError: If the row has no servers.
        """
        if not server_signals:
            raise TelemetryError("row has no servers to aggregate")

        def row_power(t: float) -> float:
            return float(sum(signal(t) for signal in server_signals))

        return row_power

    def row_power_series(
        self, server_signals: Sequence[Signal], start: float, end: float
    ) -> TimeSeries:
        """Sampled row power over a window (the Figure 16 '2s avg' trace)."""
        return self.sample_series(self.aggregate_signal(server_signals), start, end)
