"""The Table 1 catalogue of power-monitoring interfaces.

This module is the machine-readable form of the paper's Table 1 ("Power
monitoring interfaces in an LLM cluster"), used by the corresponding
benchmark to print the reproduced table and by tests to assert the
simulated interfaces honor their published properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InterfaceInfo:
    """One row of Table 1.

    Attributes:
        mechanism: Interface name.
        granularity: What the interface measures.
        in_band: True for in-band ("IB"), False for out-of-band ("OOB").
        interval_seconds: (min, max) sampling interval in seconds.
    """

    mechanism: str
    granularity: str
    in_band: bool
    interval_seconds: Tuple[float, float]

    def __post_init__(self) -> None:
        lo, hi = self.interval_seconds
        if not 0 < lo <= hi:
            raise ConfigurationError(
                f"{self.mechanism}: invalid interval range {self.interval_seconds}"
            )

    @property
    def path(self) -> str:
        """Table 1's "Path" column: "IB" or "OOB"."""
        return "IB" if self.in_band else "OOB"


#: Table 1, verbatim.
INTERFACE_CATALOG: Dict[str, InterfaceInfo] = {
    "RAPL": InterfaceInfo(
        mechanism="RAPL",
        granularity="CPU & DRAM",
        in_band=True,
        interval_seconds=(0.001, 0.010),
    ),
    "DCGM": InterfaceInfo(
        mechanism="DCGM",
        granularity="GPU",
        in_band=True,
        interval_seconds=(0.1, 1.0),
    ),
    "SMBPBI": InterfaceInfo(
        mechanism="SMBPBI",
        granularity="GPU",
        in_band=False,
        interval_seconds=(5.0, 40.0),
    ),
    "IPMI": InterfaceInfo(
        mechanism="IPMI",
        granularity="Server",
        in_band=False,
        interval_seconds=(1.0, 5.0),
    ),
    "RowManager": InterfaceInfo(
        mechanism="Row manager",
        granularity="Row of racks",
        in_band=False,
        interval_seconds=(2.0, 2.0),
    ),
}
