"""SMBPBI: the slow, unreliable OOB GPU interface (Tables 1-2).

NVIDIA's SMBPBI provides OOB power monitoring and control per GPU, but
"it is quite slow in practice" (Section 3.1): reads take 5 s or more
(Table 1), control actions take up to 40 s to execute (Table 2), and the
interface "may sometimes fail without signaling completion or errors"
(Section 3.3). POLCA has to be designed around exactly these properties,
so the simulation models all three: read latency, actuation latency, and
silent failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.telemetry.base import SampledInterface

#: OOB read interval (Table 1: "5s+").
SMBPBI_READ_INTERVAL_S = 5.0

#: OOB control latency (Table 2: "OOB control latency: 40s").
SMBPBI_ACTUATION_LATENCY_S = 40.0

#: Default probability that an OOB command silently fails (Section 3.3).
DEFAULT_SILENT_FAILURE_RATE = 0.02


@dataclass(frozen=True)
class OobCommand:
    """A pending out-of-band control command.

    Attributes:
        issued_at: When the command was sent.
        effective_at: When it takes effect (issue time + actuation latency).
        kind: Command kind, e.g. ``"frequency_cap"`` or ``"power_cap"``.
        value: Command payload (MHz or watts).
        target: Opaque identifier of the targeted GPU/server.
        failed_silently: Whether the command was dropped without error.
    """

    issued_at: float
    effective_at: float
    kind: str
    value: float
    target: str
    failed_silently: bool


@dataclass
class SmbpbiInterface(SampledInterface):
    """OOB GPU monitoring and control with realistic latency and loss.

    Attributes:
        actuation_latency: Seconds before a control command takes effect.
        silent_failure_rate: Probability a command is silently dropped.
    """

    name: str = "SMBPBI"
    interval: float = SMBPBI_READ_INTERVAL_S
    in_band: bool = False
    delay: float = 1.0
    noise_std: float = 0.01
    actuation_latency: float = SMBPBI_ACTUATION_LATENCY_S
    silent_failure_rate: float = DEFAULT_SILENT_FAILURE_RATE
    _pending: List[OobCommand] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.silent_failure_rate < 1.0:
            raise ConfigurationError("silent_failure_rate must be in [0, 1)")
        if self.actuation_latency < 0:
            raise ConfigurationError("actuation latency cannot be negative")

    def issue(self, now: float, kind: str, value: float, target: str) -> OobCommand:
        """Issue an OOB control command; it lands after the actuation
        latency, or never (silent failure). Either way the caller receives
        no error — exactly the failure mode the paper warns about."""
        failed = bool(self._rng.random() < self.silent_failure_rate)
        command = OobCommand(
            issued_at=now,
            effective_at=now + self.actuation_latency,
            kind=kind,
            value=value,
            target=target,
            failed_silently=failed,
        )
        if not failed:
            self._pending.append(command)
        return command

    def effective_commands(self, now: float) -> List[OobCommand]:
        """Pop and return the commands that have taken effect by ``now``."""
        landed = [c for c in self._pending if c.effective_at <= now]
        self._pending = [c for c in self._pending if c.effective_at > now]
        return landed

    @property
    def pending_count(self) -> int:
        """Number of commands still in flight."""
        return len(self._pending)
