"""Common machinery for sampled telemetry interfaces.

Every monitoring interface in Table 1 is, abstractly, a sampler over a
continuous power signal with three properties: a sampling interval, a
measurement path (in-band or out-of-band), and a noise/staleness profile.
:class:`SampledInterface` captures that shape once; the concrete interfaces
(DCGM, IPMI, SMBPBI, row manager) configure it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.analysis.timeseries import TimeSeries, sample_times
from repro.errors import ConfigurationError, TelemetryError

#: A function of time returning the instantaneous value being monitored.
Signal = Callable[[float], float]


@dataclass(frozen=True)
class TelemetrySample:
    """One reading from a monitoring interface.

    Attributes:
        time: When the reading became *available* to the consumer, which is
            the sample time plus the interface's reporting delay.
        value: The measured value (watts for power interfaces).
        sampled_at: When the underlying signal was actually observed.
    """

    time: float
    value: float
    sampled_at: float


@dataclass
class SampledInterface:
    """A periodic sampler over a continuous signal.

    Attributes:
        name: Interface name (for diagnostics).
        interval: Sampling period in seconds (Table 1's "Interval").
        in_band: Whether the interface is in-band (Table 1's "Path").
        delay: Reporting delay between observation and availability.
        noise_std: Gaussian measurement noise, as a *fraction* of the
            reading.
        seed: RNG seed for the noise process.
    """

    name: str
    interval: float
    in_band: bool
    delay: float = 0.0
    noise_std: float = 0.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _sample_index: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"{self.name}: interval must be positive")
        if self.delay < 0:
            raise ConfigurationError(f"{self.name}: delay cannot be negative")
        self._rng = np.random.default_rng(self.seed)

    def read(self, now: float, signal: Signal) -> TelemetrySample:
        """Take one reading of ``signal`` at time ``now``.

        The returned sample carries the noisy value and its availability
        time (``now + delay``).
        """
        true_value = float(signal(now))
        noisy = true_value
        if self.noise_std > 0:
            noisy = true_value * (1.0 + self.noise_std * self._rng.standard_normal())
        return TelemetrySample(time=now + self.delay, value=noisy, sampled_at=now)

    def sample_series(
        self, signal: Signal, start: float, end: float
    ) -> TimeSeries:
        """Sample ``signal`` over ``[start, end)`` at this interface's rate.

        Raises:
            TelemetryError: If the window is empty.
        """
        if end <= start:
            raise TelemetryError(f"{self.name}: empty sampling window")
        times = sample_times(start, end, self.interval)
        values = np.array([self.read(float(t), signal).value for t in times])
        return TimeSeries(start=start, interval=self.interval, values=values)

    def due_samples(self, until: float) -> List[float]:
        """Sample times that have become due up to ``until`` (stateful).

        Used by the discrete-event simulator to schedule readings. Sample
        times are ``index * interval`` from an integer cursor, so long
        traces accumulate no floating-point drift (a ``+= interval``
        cursor drifts by one ulp per step).
        """
        due: List[float] = []
        while self._sample_index * self.interval <= until:
            due.append(self._sample_index * self.interval)
            self._sample_index += 1
        return due
