"""Power monitoring interfaces of an LLM cluster (Table 1).

The paper's Table 1 catalogues the monitoring landscape: RAPL (CPU, in-band,
1-10 ms), DCGM (GPU, in-band, 100 ms+), SMBPBI (GPU, out-of-band, 5 s+),
IPMI (server, OOB, 1-5 s), and the row manager (row of racks, OOB, 2 s).
Each simulated interface samples the continuous power signal of the
underlying simulated hardware at its characteristic interval, with
measurement noise, staleness, and — for SMBPBI — silent failures
(Section 3.3: OOB interfaces "may sometimes fail without signaling
completion or errors").
"""

from repro.telemetry.base import SampledInterface, TelemetrySample
from repro.telemetry.dcgm import DcgmMonitor
from repro.telemetry.ipmi import IpmiMonitor
from repro.telemetry.smbpbi import SmbpbiInterface
from repro.telemetry.row_manager import RowManager
from repro.telemetry.registry import INTERFACE_CATALOG, InterfaceInfo

__all__ = [
    "DcgmMonitor",
    "INTERFACE_CATALOG",
    "InterfaceInfo",
    "IpmiMonitor",
    "RowManager",
    "SampledInterface",
    "SmbpbiInterface",
    "TelemetrySample",
]
