"""IPMI: out-of-band server-level power monitoring (Table 1).

IPMI "queries the server baseboard management controller (BMC) to obtain
power readings" at a 1-5 s interval (Table 1). The paper uses IPMI to
validate DCGM power measurements (Section 3.4); :meth:`IpmiMonitor.validate`
implements that cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timeseries import TimeSeries
from repro.errors import TelemetryError
from repro.telemetry.base import SampledInterface, Signal

#: IPMI sampling interval; Table 1 gives 1-5 s, we default to the middle.
IPMI_INTERVAL_S = 3.0


@dataclass
class IpmiMonitor(SampledInterface):
    """OOB server power monitor via the BMC."""

    name: str = "IPMI"
    interval: float = IPMI_INTERVAL_S
    in_band: bool = False
    delay: float = 0.5
    noise_std: float = 0.01

    def server_power_series(
        self, server_power_signal: Signal, start: float, end: float
    ) -> TimeSeries:
        """Server-level power series over a window."""
        return self.sample_series(server_power_signal, start, end)

    def validate(
        self,
        server_series: TimeSeries,
        gpu_series: TimeSeries,
        host_floor_w: float,
        host_ceiling_w: float,
    ) -> bool:
        """Cross-check a GPU-level series against the server-level one.

        The paper validates DCGM against IPMI by checking that the
        server-minus-GPU residual stays within the plausible host power
        envelope. Returns ``True`` when every aligned sample does.

        Raises:
            TelemetryError: If either series is empty.
        """
        if len(server_series) == 0 or len(gpu_series) == 0:
            raise TelemetryError("cannot validate empty series")
        # Align the finer GPU series onto IPMI timestamps by decimation.
        ratio = max(1, int(round(self.interval / gpu_series.interval)))
        coarse_gpu = gpu_series.downsample(ratio)
        n = min(len(server_series), len(coarse_gpu))
        residual = server_series.values[:n] - coarse_gpu.values[:n]
        return bool(
            (residual >= host_floor_w).all() and (residual <= host_ceiling_w).all()
        )
