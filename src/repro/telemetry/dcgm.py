"""DCGM: in-band GPU monitoring at 100 ms (Table 1).

DCGM "provides additional support to monitor GPU performance counters like
Streaming Multiprocessor (SM) activity, memory activity, and PCIe TX/RX
usage" (Section 3.1). The paper runs it at a 100 ms interval and notes a
5-10 W server-power overhead from the repeated counter queries
(Section 3.4, "Minimizing overheads"); the simulated monitor reproduces
both the interval and the overhead so experiments can account for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.telemetry.base import SampledInterface, Signal
from repro.analysis.timeseries import TimeSeries

#: The paper's DCGM sampling configuration (Section 3.4).
DCGM_INTERVAL_S = 0.1

#: Server-power overhead of running DCGM, in watts (Section 3.4 reports
#: "about 5-10W"; we use the midpoint).
DCGM_OVERHEAD_W = 7.5


@dataclass
class DcgmMonitor(SampledInterface):
    """In-band GPU monitor: power plus performance counters at 100 ms.

    Attributes:
        overhead_w: Additional server power while DCGM is enabled.
    """

    name: str = "DCGM"
    interval: float = DCGM_INTERVAL_S
    in_band: bool = True
    delay: float = 0.0
    noise_std: float = 0.005
    overhead_w: float = DCGM_OVERHEAD_W

    def power_series(
        self, power_signal: Signal, start: float, end: float
    ) -> TimeSeries:
        """DCGM power time series over a window (the Figure 4/6 traces)."""
        return self.sample_series(power_signal, start, end)

    def counter_series(
        self, counter_signals: Dict[str, Signal], start: float, end: float
    ) -> Dict[str, TimeSeries]:
        """Sample several performance counters over one window.

        All counters share the DCGM sampling clock, mirroring how the
        paper collects the Figure 7 correlation inputs.

        Raises:
            ConfigurationError: If no counters are supplied.
        """
        if not counter_signals:
            raise ConfigurationError("DCGM asked to sample zero counters")
        return {
            name: self.sample_series(signal, start, end)
            for name, signal in counter_signals.items()
        }
