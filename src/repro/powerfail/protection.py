"""The protection runtime: thermal accumulators, trips, re-energization.

:class:`ProtectionRuntime` is the stateful side of
:mod:`repro.powerfail.topology`. The simulator feeds it every server
power change; it maintains, per protection device:

* the device's subtree power (float mirror for trip arithmetic, plus an
  exact :class:`~fractions.Fraction` mirror for the energy ledger);
* the inverse-time thermal accumulator, settled *lazily*: server powers
  are piecewise constant, so the accumulator is piecewise linear and
  ``A(t) = clamp(A0 + rate * (t - t0), 0, ·)`` is exact — no per-tick
  integration, no drift between replays;
* a projected threshold-crossing event. Whenever a device's heat rate
  changes, the runtime computes the exact time its accumulator would
  cross the next threshold (risk flag, then trip) and hands the
  simulator a ``("prot", device, target, epoch)`` event to enqueue.
  Every rate change bumps the device epoch, so stale projections are
  recognized and dropped on arrival; a run that never overloads any
  device enqueues *nothing*.

A trip de-energizes the device's subtree (the simulator fails those
servers mid-flight), starts the cooldown clock, and schedules staged
re-energization: ``restore_batch`` servers per ``restore_stagger_s``,
beginning once the accumulator has cooled below ``reset_below`` and at
least ``cooldown_s`` has passed. Trips arriving while another device is
down (or within ``cascade_window_s`` of the last trip) are flagged as
cascade members.

The energy ledger accumulates per-device subtree energy in exact
rational arithmetic (float timestamps and powers are dyadic rationals,
so every product is exact). Because each server power change applies
the *same* Fraction delta to the server fuse, its rack PDU, and the row
breaker at the same instant, conservation — row energy equals the sum
of rack energies equals the sum of server energies, across any pattern
of trips — holds as an identity in ℚ, and
:attr:`PowerFailReport.energy_conserved_exactly` checks it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.powerfail.topology import (
    PowerTopology,
    ProtectionDevice,
    ProtectionSpec,
)

__all__ = ["ProtectionRuntime", "PowerFailReport"]

# A queued projection or restore event: (fire_time, payload-tuple).
QueuePush = Tuple[float, tuple]


@dataclass
class PowerFailReport:
    """What the protection layer saw and did during one run.

    Mirrors the :class:`~repro.faults.report.RobustnessReport` pattern:
    plain counters a trace cross-check can re-derive independently.
    ``trip_log`` keeps one dict per trip (device, time, overload,
    servers lost, cascade membership) for post-hoc forensics.
    """

    trips: int = 0
    cascade_trips: int = 0
    reenergizations: int = 0
    requests_lost_to_trips: int = 0
    requests_dropped_shed: int = 0
    requests_deferred: int = 0
    shed_engagements: int = 0
    time_shedding_s: float = 0.0
    offline_server_seconds: float = 0.0
    peak_accumulator: float = 0.0
    energy_row_j: float = 0.0
    energy_racks_j: float = 0.0
    energy_servers_j: float = 0.0
    energy_conserved_exactly: bool = True
    trip_log: List[Dict[str, Any]] = field(default_factory=list)


class _DeviceState:
    """Mutable per-device state (accumulator, power mirrors, outage)."""

    __slots__ = (
        "device", "power_w", "acc", "acc_t", "rate", "epoch", "tripped",
        "risk_active", "trip_t", "trip_overload", "to_restore",
        "restore_version", "power_frac", "energy_frac", "energy_t",
    )

    def __init__(self, device: ProtectionDevice) -> None:
        self.device = device
        self.power_w = 0.0
        self.acc = 0.0
        self.acc_t = 0.0
        self.rate = 0.0
        self.epoch = 0
        self.tripped = False
        self.risk_active = False
        self.trip_t: Optional[float] = None
        self.trip_overload = 0.0
        self.to_restore: List[int] = []
        self.restore_version = 0
        self.power_frac = Fraction(0)
        self.energy_frac = Fraction(0)
        self.energy_t = Fraction(0)


class ProtectionRuntime:
    """Tracks every protection device through one simulation run."""

    def __init__(
        self,
        topology: PowerTopology,
        spec: ProtectionSpec,
        duration_s: float,
        initial_powers: Sequence[float],
    ) -> None:
        self.topology = topology
        self.spec = spec
        self.curve = spec.curve
        self.report = PowerFailReport()
        self._duration = duration_s
        self._duration_frac = Fraction(duration_s)
        self._states: Dict[str, _DeviceState] = {
            d.device_id: _DeviceState(d) for d in topology.devices
        }
        self._chains: List[Tuple[_DeviceState, ...]] = [
            tuple(self._states[did] for did in chain)
            for chain in topology.chains
        ]
        # index -> (owning tripped device id, de-energized since)
        self._deenergized: Dict[int, Tuple[str, float]] = {}
        self._last_trip_t: Optional[float] = None
        if len(initial_powers) != len(topology.chains):
            raise SimulationError(
                "initial_powers does not match topology server count"
            )
        for state in self._states.values():
            power = sum(initial_powers[i] for i in state.device.servers)
            state.power_w = power
            if spec.exact_energy_ledger:
                state.power_frac = sum(
                    (Fraction(initial_powers[i])
                     for i in state.device.servers),
                    Fraction(0),
                )

    # ------------------------------------------------------------------
    # Accumulator settlement and crossing projection
    # ------------------------------------------------------------------
    def _settle(self, state: _DeviceState, t: float) -> None:
        # Clamp to the reported window, like the energy ledger: the
        # simulator discards protection events past the horizon, so
        # heat accumulated during the post-horizon drain is outside the
        # model (it would otherwise inflate ``peak_accumulator`` with
        # overloads no breaker was ever allowed to act on).
        if t > self._duration:
            t = self._duration
        dt = t - state.acc_t
        if dt > 0.0 and state.rate != 0.0:
            acc = state.acc + state.rate * dt
            state.acc = acc if acc > 0.0 else 0.0
            if state.acc > self.report.peak_accumulator:
                self.report.peak_accumulator = state.acc
        if t > state.acc_t:
            state.acc_t = t

    def _reproject(
        self, state: _DeviceState, t: float, pushes: List[QueuePush]
    ) -> None:
        """Recompute the heat rate and (re)project the next crossing."""
        state.epoch += 1
        curve = self.curve
        if state.tripped:
            # An open breaker carries no load; it cools at the floor
            # rate until re-energization (handled by the restore path).
            state.rate = curve.rate(0.0)
            return
        state.rate = curve.rate(state.power_w / state.device.capacity_w)
        if state.rate > 0.0:
            if state.risk_active or state.acc >= curve.risk_at:
                target, value = "trip", 1.0
            else:
                target, value = "risk", curve.risk_at
            dt = (value - state.acc) / state.rate
            pushes.append((
                t + (dt if dt > 0.0 else 0.0),
                ("prot", state.device.device_id, target, state.epoch),
            ))
        elif state.rate < 0.0 and state.risk_active:
            dt = (state.acc - curve.clear_at) / -state.rate
            pushes.append((
                t + (dt if dt > 0.0 else 0.0),
                ("prot", state.device.device_id, "clear", state.epoch),
            ))

    # ------------------------------------------------------------------
    # Simulator-facing API
    # ------------------------------------------------------------------
    def initial_events(self) -> List[QueuePush]:
        """Projections for the initial power state (time 0)."""
        pushes: List[QueuePush] = []
        for state in self._states.values():
            self._reproject(state, 0.0, pushes)
        return pushes

    def update_server_power(
        self, t: float, index: int, new_power_w: float
    ) -> List[QueuePush]:
        """Apply one server's power change to its device chain.

        Returns projection events the simulator must enqueue. A no-op
        change returns an empty list without touching any state.
        """
        chain = self._chains[index]
        old = chain[0].power_w
        if new_power_w == old:
            return []
        delta = new_power_w - old
        ledger = self.spec.exact_energy_ledger
        delta_frac = (Fraction(new_power_w) - chain[0].power_frac) \
            if ledger else Fraction(0)
        pushes: List[QueuePush] = []
        for state in chain:
            self._settle(state, t)
            if ledger:
                self._settle_energy(state, t)
                state.power_frac += delta_frac
            state.power_w += delta
            self._reproject(state, t, pushes)
        return pushes

    def on_projection(
        self, t: float, device_id: str, target: str, epoch: int
    ) -> Optional[Tuple[str, Dict[str, Any], List[QueuePush]]]:
        """Handle a ``("prot", ...)`` event popping from the queue.

        Returns ``None`` for stale projections (superseded epoch or a
        device that tripped meanwhile); otherwise ``(fired, info,
        pushes)`` where ``fired`` is ``"risk"``, ``"clear"``, or
        ``"trip"``. A ``"trip"`` outcome is only *announced* here — the
        simulator must follow up with :meth:`begin_trip` /
        :meth:`commit_trip` so it can fail the subtree in between.
        """
        state = self._states[device_id]
        if state.tripped or epoch != state.epoch:
            return None
        self._settle(state, t)
        curve = self.curve
        pushes: List[QueuePush] = []
        overload = state.power_w / state.device.capacity_w
        if target == "risk":
            # Snap to the exact threshold: the crossing time was solved
            # analytically, so this removes the last float rounding.
            state.acc = curve.risk_at
            state.risk_active = True
            self._reproject(state, t, pushes)
        elif target == "clear":
            state.acc = curve.clear_at
            state.risk_active = False
            self._reproject(state, t, pushes)
        elif target == "trip":
            state.acc = 1.0
            if 1.0 > self.report.peak_accumulator:
                self.report.peak_accumulator = 1.0
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown projection target {target!r}")
        info = {
            "device_level": state.device.level,
            "accumulator": state.acc,
            "overload": overload,
        }
        return target, info, pushes

    # ------------------------------------------------------------------
    # Trip lifecycle
    # ------------------------------------------------------------------
    def begin_trip(self, device_id: str, t: float) -> List[int]:
        """Open the breaker; returns the servers newly de-energized.

        Servers already de-energized under another tripped device stay
        with that device's restore schedule.
        """
        state = self._states[device_id]
        state.tripped = True
        state.trip_t = t
        # Capture the overload now, before the subtree drains to zero
        # through the per-server refresh calls.
        state.trip_overload = state.power_w / state.device.capacity_w
        state.risk_active = False
        state.restore_version += 1
        covered = [
            i for i in state.device.servers if i not in self._deenergized
        ]
        for index in covered:
            self._deenergized[index] = (device_id, t)
        state.to_restore = list(covered)
        # Cooling starts now; the subtree power drains to ~0 through the
        # per-server refresh calls that follow.
        state.rate = self.curve.rate(0.0)
        state.epoch += 1
        return covered

    def commit_trip(
        self, device_id: str, t: float, dropped: int
    ) -> Tuple[Dict[str, Any], QueuePush]:
        """Ledger the trip and schedule the first re-energization step."""
        state = self._states[device_id]
        spec = self.spec
        cascaded = any(
            s.tripped for s in self._states.values()
            if s.device.device_id != device_id
        ) or (
            self._last_trip_t is not None
            and t - self._last_trip_t <= spec.cascade_window_s
        )
        self._last_trip_t = t
        self.report.trips += 1
        if cascaded:
            self.report.cascade_trips += 1
        restore_at = t + max(spec.cooldown_s, self.curve.reset_time_s)
        record = {
            "t": t,
            "device": device_id,
            "device_level": state.device.level,
            "capacity_w": state.device.capacity_w,
            "overload": state.trip_overload,
            "servers_offline": len(state.to_restore),
            "dropped": dropped,
            "cascaded": cascaded,
            "restore_at": restore_at,
        }
        self.report.trip_log.append(record)
        return record, (
            restore_at,
            ("prot_restore", device_id, 0, state.restore_version),
        )

    def restore_step(
        self, device_id: str, step: int, version: int, t: float
    ) -> Optional[Tuple[List[int], Optional[QueuePush], bool]]:
        """One staged re-energization step.

        Returns ``(servers_to_recover, next_push, done)`` or ``None``
        for a stale event. Servers whose subtree is still dark under a
        *different* tripped device are handed to that device's restore
        schedule instead of being re-energized under a dead feed.
        """
        state = self._states[device_id]
        if version != state.restore_version or not state.tripped:
            return None
        if step == 0:
            self._settle(state, t)
            state.risk_active = False
        batch = state.to_restore[:self.spec.restore_batch]
        state.to_restore = state.to_restore[self.spec.restore_batch:]
        restored: List[int] = []
        for index in batch:
            owner, since = self._deenergized[index]
            blocker = self._blocking_device(index, exclude=device_id)
            if blocker is not None:
                self._deenergized[index] = (blocker, since)
                self._states[blocker].to_restore.append(index)
                continue
            del self._deenergized[index]
            self.report.offline_server_seconds += max(
                0.0, min(t, self._duration) - min(since, self._duration)
            )
            restored.append(index)
        done = not state.to_restore
        next_push: Optional[QueuePush] = None
        if done:
            state.tripped = False
            state.trip_t = None
            # Back in service: the rate is recomputed by the refresh
            # calls that re-power the restored servers.
            state.epoch += 1
        else:
            next_push = (
                t + self.spec.restore_stagger_s,
                ("prot_restore", device_id, step + 1, version),
            )
        return restored, next_push, done

    def _blocking_device(
        self, index: int, exclude: str
    ) -> Optional[str]:
        for state in self._chains[index]:
            if state.tripped and state.device.device_id != exclude:
                return state.device.device_id
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_deenergized(self, index: int) -> bool:
        return index in self._deenergized

    @property
    def in_emergency(self) -> bool:
        """Any device tripped or carrying an active trip-risk flag."""
        return any(
            s.tripped or s.risk_active for s in self._states.values()
        )

    def accumulator(self, device_id: str, t: float) -> float:
        """The settled accumulator value at time ``t`` (read-only)."""
        state = self._states[device_id]
        if t > self._duration:
            t = self._duration
        dt = t - state.acc_t
        if dt <= 0.0 or state.rate == 0.0:
            return state.acc
        return max(0.0, state.acc + state.rate * dt)

    def offline_stats(self, peak_server_w: float) -> Tuple[float, float]:
        """(offline capacity in W, offline fraction of the fleet)."""
        n_total = len(self._chains)
        n_off = len(self._deenergized)
        return n_off * peak_server_w, n_off / n_total

    # ------------------------------------------------------------------
    # Exact energy ledger
    # ------------------------------------------------------------------
    def _settle_energy(self, state: _DeviceState, t: float) -> None:
        # Clamp to the reported window, like the simulator's own energy
        # integral: in-flight drain past duration_s is not accounted.
        te = Fraction(t)
        if te > self._duration_frac:
            te = self._duration_frac
        dt = te - state.energy_t
        if dt > 0:
            state.energy_frac += state.power_frac * dt
            state.energy_t = te

    def finalize(self, t_end: float) -> PowerFailReport:
        """Settle everything to the end of the run and fill the report."""
        report = self.report
        for _index, (_owner, since) in self._deenergized.items():
            report.offline_server_seconds += max(
                0.0, self._duration - min(since, self._duration)
            )
        if self.spec.exact_energy_ledger:
            for state in self._states.values():
                self._settle_energy(state, max(t_end, self._duration))
            row = self._states["row"].energy_frac
            racks = sum(
                (s.energy_frac for s in self._states.values()
                 if s.device.level == "rack"),
                Fraction(0),
            )
            servers = sum(
                (s.energy_frac for s in self._states.values()
                 if s.device.level == "server"),
                Fraction(0),
            )
            report.energy_row_j = float(row)
            report.energy_racks_j = float(racks)
            report.energy_servers_j = float(servers)
            report.energy_conserved_exactly = (row == racks == servers)
        return report
