"""The power-delivery topology: server → rack PDU → row breaker.

POLCA's oversubscription argument (Section 3) rests on a hierarchy of
protection devices: every server hangs off a rack PDU, racks share a
row-level breaker, and each device is rated for a *provisioned*
capacity that sustained load must not exceed. "From Servers to Sites"
motivates exactly this server/rack/row decomposition; Table 2 gives the
row budget our :class:`~repro.cluster.simulator.ClusterConfig` already
carries. This module derives the per-level capacities from that config
and attaches an inverse-time trip curve to every device.

The trip curve is the classic :math:`I^2t` dead-band form: a breaker
carrying overload ratio :math:`M` (load / capacity) heats a thermal
accumulator at rate :math:`(M^2 - 1)/\\tau_{trip}` while :math:`M > 1`
and cools at :math:`(1 - M^2)/\\tau_{cool}` below it, tripping when the
accumulator reaches 1. A *constant* overload therefore trips in
:math:`t = \\tau_{trip}/(M^2-1)` — sustained overload trips faster at
higher overload, and brief excursions that POLCA's brake absorbs never
accumulate enough heat to matter. Piecewise-constant server power makes
the accumulator piecewise *linear* in time, so the simulator can settle
it lazily and project threshold crossings exactly (no per-tick
integration error, bit-deterministic across replays).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.control.emergency import EmergencyConfig
from repro.errors import ConfigurationError

__all__ = [
    "TripCurve",
    "ProtectionSpec",
    "ProtectionDevice",
    "PowerTopology",
]


@dataclass(frozen=True)
class TripCurve:
    """Inverse-time (:math:`I^2t`) trip characteristic of one device.

    Attributes:
        tau_trip_s: Thermal time constant while overloaded; a constant
            overload ratio ``M`` trips in ``tau_trip_s / (M**2 - 1)``
            seconds (e.g. 2x overload trips in ``tau_trip_s / 3``).
        tau_cool_s: Cooling time constant below capacity; a fully
            unloaded device sheds a full accumulator in ``tau_cool_s``.
        risk_at: Accumulator level that raises the trip-risk flag (the
            emergency shed layer engages here).
        clear_at: Accumulator level that clears the risk flag
            (hysteresis: ``clear_at < risk_at``).
        reset_below: The accumulator must cool below this level before
            a tripped device may re-energize.
    """

    tau_trip_s: float = 20.0
    tau_cool_s: float = 600.0
    risk_at: float = 0.5
    clear_at: float = 0.25
    reset_below: float = 0.1

    def __post_init__(self) -> None:
        if self.tau_trip_s <= 0 or self.tau_cool_s <= 0:
            raise ConfigurationError("trip-curve time constants must be "
                                     "positive")
        if not 0.0 < self.clear_at < self.risk_at < 1.0:
            raise ConfigurationError(
                "need 0 < clear_at < risk_at < 1, got "
                f"clear_at={self.clear_at}, risk_at={self.risk_at}"
            )
        if not 0.0 < self.reset_below <= self.clear_at:
            raise ConfigurationError(
                "need 0 < reset_below <= clear_at, got "
                f"reset_below={self.reset_below}"
            )

    # ------------------------------------------------------------------
    def rate(self, overload: float) -> float:
        """d(accumulator)/dt at a constant load ratio ``overload``.

        Positive above capacity (heating), non-positive at or below it
        (cooling); exactly 0.0 at the capacity boundary.
        """
        if overload > 1.0:
            return (overload * overload - 1.0) / self.tau_trip_s
        return -(1.0 - overload * overload) / self.tau_cool_s

    def time_to_trip(self, overload: float) -> float:
        """Seconds a cold device sustains ``overload`` before tripping."""
        if overload <= 1.0:
            return math.inf
        return self.tau_trip_s / (overload * overload - 1.0)

    @property
    def reset_time_s(self) -> float:
        """Cooling time from a fresh trip (accumulator 1) to re-close."""
        return (1.0 - self.reset_below) * self.tau_cool_s


@dataclass(frozen=True)
class ProtectionSpec:
    """Configuration of the whole protection layer.

    Capacities are derived from the :class:`ClusterConfig` budget: the
    row breaker is rated at the Table 2 provisioned budget times
    ``row_headroom`` (1.0: the budget *is* the breaker), each rack PDU
    at its fair share of the row capacity times ``rack_headroom``
    (tolerating transient load imbalance), and each server fuse at the
    server's physical peak power times ``server_headroom`` (branch
    fuses are rated above the PSU maximum, so they only trip in
    deliberately stressed topologies).

    Attributes:
        servers_per_rack: Rack size used to slice the row.
        row_headroom: Row breaker rating / provisioned row budget.
        rack_headroom: Rack PDU rating / the rack's fair share.
        server_headroom: Server fuse rating / server peak power.
        curve: The shared inverse-time trip curve.
        cooldown_s: Minimum outage after a trip, even if the device
            cools quickly.
        restore_batch: Servers re-energized per re-admission step.
        restore_stagger_s: Delay between re-admission steps (gradual
            re-energization avoids re-tripping on inrush).
        cascade_window_s: A trip within this window of a prior trip is
            counted as part of a cascade.
        exact_energy_ledger: Keep the exact (Fraction-arithmetic)
            per-device energy ledger used by the conservation
            cross-check. Never affects trip behavior.
        emergency: The shed/safe-mode response (see
            :class:`~repro.control.emergency.EmergencyConfig`).
    """

    servers_per_rack: int = 8
    row_headroom: float = 1.0
    rack_headroom: float = 1.25
    server_headroom: float = 1.5
    curve: TripCurve = field(default_factory=TripCurve)
    cooldown_s: float = 120.0
    restore_batch: int = 2
    restore_stagger_s: float = 10.0
    cascade_window_s: float = 60.0
    exact_energy_ledger: bool = True
    emergency: EmergencyConfig = field(default_factory=EmergencyConfig)

    def __post_init__(self) -> None:
        if self.servers_per_rack <= 0:
            raise ConfigurationError("servers_per_rack must be positive")
        for name in ("row_headroom", "rack_headroom", "server_headroom"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.cooldown_s < 0:
            raise ConfigurationError("cooldown_s cannot be negative")
        if self.restore_batch <= 0:
            raise ConfigurationError("restore_batch must be positive")
        if self.restore_stagger_s <= 0:
            raise ConfigurationError("restore_stagger_s must be positive")
        if self.cascade_window_s < 0:
            raise ConfigurationError("cascade_window_s cannot be negative")


@dataclass(frozen=True)
class ProtectionDevice:
    """One protection device and the server subtree it energizes."""

    device_id: str
    level: str  # "server" | "rack" | "row"
    capacity_w: float
    servers: Tuple[int, ...]
    parent: Optional[str]

    def __post_init__(self) -> None:
        if self.capacity_w <= 0:
            raise ConfigurationError(
                f"device {self.device_id!r} capacity must be positive"
            )
        if not self.servers:
            raise ConfigurationError(
                f"device {self.device_id!r} must cover at least one server"
            )


@dataclass(frozen=True)
class PowerTopology:
    """The device tree, plus each server's root-ward device chain.

    ``chains[i]`` lists the devices energizing server ``i`` from leaf
    to root (server fuse, rack PDU, row breaker): a power change on
    server ``i`` touches exactly these devices.
    """

    devices: Tuple[ProtectionDevice, ...]
    chains: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        ids = [d.device_id for d in self.devices]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate device ids in topology")

    @property
    def by_id(self) -> Dict[str, ProtectionDevice]:
        return {d.device_id: d for d in self.devices}

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_servers: int,
        provisioned_power_w: float,
        peak_server_w: float,
        spec: ProtectionSpec,
    ) -> "PowerTopology":
        """Derive the server → rack → row tree from the row budget.

        The row budget covers the *designed* capacity only (it does not
        grow with oversubscribed servers), exactly like
        ``ClusterConfig.provisioned_power_w``; rack shares are
        proportional to deployed rack population.
        """
        if n_servers <= 0:
            raise ConfigurationError("n_servers must be positive")
        row_capacity = provisioned_power_w * spec.row_headroom
        devices: List[ProtectionDevice] = []
        chains: List[Tuple[str, ...]] = [() for _ in range(n_servers)]
        devices.append(ProtectionDevice(
            device_id="row", level="row", capacity_w=row_capacity,
            servers=tuple(range(n_servers)), parent=None,
        ))
        n_racks = math.ceil(n_servers / spec.servers_per_rack)
        for rack in range(n_racks):
            members = tuple(range(
                rack * spec.servers_per_rack,
                min((rack + 1) * spec.servers_per_rack, n_servers),
            ))
            rack_id = f"rack{rack}"
            devices.append(ProtectionDevice(
                device_id=rack_id, level="rack",
                capacity_w=row_capacity * (len(members) / n_servers)
                * spec.rack_headroom,
                servers=members, parent="row",
            ))
            for index in members:
                server_id = f"fuse{index}"
                devices.append(ProtectionDevice(
                    device_id=server_id, level="server",
                    capacity_w=peak_server_w * spec.server_headroom,
                    servers=(index,), parent=rack_id,
                ))
                chains[index] = (server_id, rack_id, "row")
        return cls(devices=tuple(devices), chains=tuple(chains))
