"""repro.powerfail — power-delivery fault domains and breaker trips.

POLCA (Section 3) is a bet that oversubscription never trips an
upstream breaker; this package gives the bet consequences. It models
the server → rack PDU → row breaker protection hierarchy ("From
Servers to Sites" motivates the decomposition; Table 2 rates the row),
each device carrying an inverse-time :math:`I^2t` trip curve with a
deterministic, lazily-settled thermal accumulator:

* :class:`~repro.powerfail.topology.ProtectionSpec` /
  :class:`~repro.powerfail.topology.TripCurve` describe the layer;
  attach a spec to ``ClusterConfig.protection`` to enable it (the
  default ``None`` is inert and bit-identical to an unprotected run);
* :class:`~repro.powerfail.topology.PowerTopology` derives per-level
  capacities from the cluster's provisioned budget;
* :class:`~repro.powerfail.protection.ProtectionRuntime` integrates the
  accumulators inside the simulator event loop, trips devices (taking
  their subtree offline mid-flight — redistribution onto survivors can
  cascade into sibling domains), and stages cooldown-gated, gradual
  re-energization;
* :class:`~repro.powerfail.protection.PowerFailReport` ledgers trips,
  cascades, shed decisions, offline server-seconds, and an exact
  rational-arithmetic energy-conservation check across the hierarchy,
  surfacing as ``SimulationResult.powerfail``.

The emergency response (priority- and tier-aware load shedding, safe
caps on survivors) lives in :mod:`repro.control.emergency`.
"""

from repro.control.emergency import EmergencyConfig
from repro.powerfail.protection import PowerFailReport, ProtectionRuntime
from repro.powerfail.topology import (
    PowerTopology,
    ProtectionDevice,
    ProtectionSpec,
    TripCurve,
)

__all__ = [
    "EmergencyConfig",
    "PowerFailReport",
    "PowerTopology",
    "ProtectionDevice",
    "ProtectionRuntime",
    "ProtectionSpec",
    "TripCurve",
]
