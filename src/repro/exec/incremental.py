"""Checkpointed incremental re-simulation for controller sweeps.

The paper's evaluation (Figs 13-18) is a dense grid over *controller
parameters*: most sweep points share the cluster configuration and
request trace and differ only in policy thresholds. A policy influences
the simulation through exactly three calls per control step —
``wants_brake``, ``brake_release_ok``, ``desired_caps`` — so two
policies that answer those calls identically produce bit-identical
trajectories. This module exploits that:

* the first run of a *family* (same :class:`~repro.cluster.simulator
  .ClusterConfig` + duration, policy excluded — see
  :func:`family_digest`) runs under a :class:`TapePolicy` that records
  every control-step input/output pair, and pickles full
  :class:`~repro.cluster.core.SimulationCore` snapshots at epoch
  boundaries into the :class:`~repro.exec.cache.RunCache` blob layer;
* a later sweep point in the same family replays its *own* policy
  against the recorded inputs to find the first control step where the
  answers diverge, restores the latest checkpoint at or before that
  step, replays the matching prefix into a fresh policy instance to
  rebuild its hysteresis state, and simulates only the suffix;
* a policy that matches the whole tape reuses the base result outright.

The replay is sound because the recorded inputs (utilization, time,
which brake call fires) are functions of the simulator trajectory,
which is identical while the outputs match: the first divergence found
against the tape is the first divergence of a real run. Checkpoints
restore bit-identically (pickling round-trips the full core, RNG
streams included), so suffix replay equals straight-through simulation
— the parity tests assert this exactly, adversarial fault plans
included.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.metrics import SimulationResult
from repro.cluster.policy_base import GroupCaps, PowerPolicy
from repro.cluster.simulator import ClusterSimulator
from repro.errors import ConfigurationError
from repro.exec import traces
from repro.exec.cache import RunCache
from repro.exec.runspec import DIGEST_VERSION, RunSpec, _canonical
from repro.obs.recorder import MemoryRecorder, TraceRecorder

#: Bump when the tape/checkpoint blob layout changes incompatibly;
#: embedded in :func:`family_digest`, so stale blobs become unreachable
#: rather than mis-read. Schema 2: recorded base runs store the family
#: event tape (the full trace, per-checkpoint event counts, and
#: pickled metrics registries) so resumed runs can replay the
#: checkpointed prefix's events and record traces identical to a cold
#: run's.
INCREMENTAL_SCHEMA = 2


def family_digest(spec: RunSpec) -> str:
    """The digest of everything the spec's *simulation* shares.

    Policy is deliberately excluded: all sweep points with the same
    config, duration, and trace source replay the same trace through
    the same cluster and may share checkpoints up to their first
    controller divergence. The trace source *is* included — a replayed
    CSV and the synthetic pipeline are different simulations even under
    identical configs.
    """
    payload = json.dumps(
        {
            "digest_version": DIGEST_VERSION,
            "incremental_schema": INCREMENTAL_SCHEMA,
            "config": _canonical(spec.config),
            "duration_s": repr(spec.duration_s),
            "trace": _canonical(spec.trace),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StepRecord:
    """One control step as the policy saw it.

    Attributes:
        now: Simulation time of the telemetry delivery.
        utilization: Row utilization handed to the policy.
        brake_call: Which brake predicate the simulator consulted this
            step — ``"want"``, ``"release"``, or ``None`` (neither: the
            brake was engaged but still inside its hold window).
        brake_result: The predicate's answer (``None`` iff no call).
        caps: The caps the policy asked for.
    """

    now: float
    utilization: float
    brake_call: Optional[str]
    brake_result: Optional[bool]
    caps: GroupCaps


class TapePolicy(PowerPolicy):
    """Forwarding wrapper that records the control-step tape.

    Wraps any :class:`~repro.cluster.policy_base.PowerPolicy` without
    changing its behavior: every call is forwarded verbatim (so the
    wrapped run stays bit-identical), and each ``desired_caps`` call —
    the unconditional last policy call of a control step — closes one
    :class:`StepRecord` on :attr:`tape`.
    """

    def __init__(self, inner: PowerPolicy) -> None:
        self.inner = inner
        self.tape: List[StepRecord] = []
        self._pending: Optional[Tuple[str, bool]] = None
        # Shadow the PowerPolicy *class* attributes with the wrapped
        # policy's values — class attributes resolve before
        # ``__getattr__``, which only covers names the base class does
        # not define.
        self.name = inner.name
        self.brake_threshold = inner.brake_threshold
        self.brake_release = inner.brake_release

    def __getattr__(self, name: str) -> Any:
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    def wants_brake(self, utilization: float) -> bool:
        result = self.inner.wants_brake(utilization)
        self._pending = ("want", result)
        return result

    def brake_release_ok(self, utilization: float) -> bool:
        result = self.inner.brake_release_ok(utilization)
        self._pending = ("release", result)
        return result

    def desired_caps(self, utilization: float, now: float = 0.0) -> GroupCaps:
        caps = self.inner.desired_caps(utilization, now)
        call, result = self._pending if self._pending else (None, None)
        self.tape.append(StepRecord(now, utilization, call, result, caps))
        self._pending = None
        return caps

    def reset(self) -> None:
        self.inner.reset()
        self.tape.clear()
        self._pending = None


def _feed_step(policy: PowerPolicy, record: StepRecord) -> bool:
    """Drive one recorded step through ``policy``; True if it matches.

    Issues exactly the calls the original run's policy received —
    including ``desired_caps`` after a divergent brake answer, since
    the simulator calls it unconditionally — so the policy's internal
    hysteresis state tracks a real run step for step.
    """
    if record.brake_call == "want":
        brake = policy.wants_brake(record.utilization)
    elif record.brake_call == "release":
        brake = policy.brake_release_ok(record.utilization)
    else:
        brake = record.brake_result
    caps = policy.desired_caps(record.utilization, record.now)
    return brake == record.brake_result and caps == record.caps


def first_divergence(
    records: Sequence[StepRecord], policy: PowerPolicy
) -> Optional[int]:
    """Index of the first step where ``policy`` answers differently.

    ``None`` means the policy matches the entire tape (and would
    reproduce the base run bit-for-bit). The probe policy is consumed:
    its state afterwards is only meaningful up to the returned index.
    """
    for index, record in enumerate(records):
        if not _feed_step(policy, record):
            return index
    return None


@dataclass
class IncrementalStats:
    """What the incremental executor actually did (cumulative).

    Attributes:
        base_runs: Family-first runs simulated in full while recording
            the tape and checkpoints.
        resumed_runs: Runs restored from a checkpoint and replayed only
            past it.
        reused_results: Full-tape matches answered with the base
            family's result, no simulation at all.
        cold_runs: Runs simulated in full with no reuse (divergence
            before the first checkpoint, or evicted blobs).
        saved_s: Total simulated seconds skipped via restores.
        replayed_s: Total simulated seconds actually re-run on resumes.
    """

    base_runs: int = 0
    resumed_runs: int = 0
    reused_results: int = 0
    cold_runs: int = 0
    saved_s: float = 0.0
    replayed_s: float = 0.0


class IncrementalExecutor:
    """Executes :class:`~repro.exec.runspec.RunSpec`\\ s incrementally.

    Attributes:
        cache: The :class:`~repro.exec.cache.RunCache` holding tape and
            checkpoint blobs (and, through the engine, results).
        checkpoint_epoch_s: Simulation-time spacing of checkpoints
            recorded during each family's base run.
        stats: Cumulative :class:`IncrementalStats`.
    """

    def __init__(
        self, cache: RunCache, checkpoint_epoch_s: float = 600.0
    ) -> None:
        if checkpoint_epoch_s <= 0:
            raise ConfigurationError("checkpoint_epoch_s must be positive")
        self.cache = cache
        self.checkpoint_epoch_s = checkpoint_epoch_s
        self.stats = IncrementalStats()

    # ------------------------------------------------------------------
    def execute(
        self,
        spec: RunSpec,
        recorder: Optional[TraceRecorder] = None,
    ) -> SimulationResult:
        """Run one spec, reusing the family's prefix when possible.

        With an enabled ``recorder``, the run's full trace lands in it
        — identical to a cold recorded run — regardless of how the
        result was produced: base runs store their event stream in the
        family tape, resumed runs replay the checkpointed prefix's
        events from the tape and record the suffix live (the restored
        core re-arms via ``attach_recorder``), and full-tape reuses
        replay the whole tape. Recording never perturbs results.
        """
        if recorder is not None and not recorder.enabled:
            recorder = None
        family = family_digest(spec)
        meta = self._load_tape(family)
        if meta is None:
            return self._base_run(spec, family, recorder)
        return self._variant_run(spec, family, meta, recorder)

    # ------------------------------------------------------------------
    def _load_tape(self, family: str) -> Optional[Dict[str, Any]]:
        blob = self.cache.get_blob(f"{family}-tape")
        if blob is None:
            return None
        try:
            meta = pickle.loads(blob)
        except Exception:
            return None
        if not isinstance(meta, dict) \
                or meta.get("schema") != INCREMENTAL_SCHEMA:
            return None
        return meta

    def _base_run(
        self,
        spec: RunSpec,
        family: str,
        recorder: Optional[TraceRecorder] = None,
    ) -> SimulationResult:
        """Full run under the tape recorder, checkpointing each epoch.

        When recording, the run spools its events into an internal
        buffer that becomes the family *event tape*: the full stream,
        plus — aligned with each checkpoint — the number of events
        emitted strictly before it and the metrics registry as of it
        (checkpoint blobs themselves exclude both; see
        ``SimulationCore.__getstate__``). The caller's recorder gets
        the spooled stream replayed at the end.
        """
        policy = TapePolicy(spec.policy.build())
        requests = traces.requests_for(spec.trace_key())
        spool = MemoryRecorder() if recorder is not None else None
        simulator = ClusterSimulator(spec.config, policy, recorder=spool)
        core = simulator.start(requests, spec.duration_s)
        epochs: List[float] = []
        event_counts: List[int] = []
        registries: List[bytes] = []

        def checkpoint(when: float, live_core: Any) -> None:
            blob = pickle.dumps(
                live_core, protocol=pickle.HIGHEST_PROTOCOL
            )
            self.cache.put_blob(f"{family}-ckpt-{len(epochs)}", blob)
            epochs.append(when)
            if spool is not None:
                event_counts.append(len(spool.events))
                registries.append(pickle.dumps(
                    live_core.obs, protocol=pickle.HIGHEST_PROTOCOL
                ))

        core.run_all(self.checkpoint_epoch_s, checkpoint)
        result = core.finalize()
        meta = {
            "schema": INCREMENTAL_SCHEMA,
            "records": list(policy.tape),
            "epochs": epochs,
            "result_digest": spec.digest(),
            "events": list(spool.events) if spool is not None else None,
            "event_counts": event_counts if spool is not None else None,
            "registries": registries if spool is not None else None,
        }
        self.cache.put_blob(
            f"{family}-tape",
            pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self.stats.base_runs += 1
        if recorder is not None:
            for event in spool.events:
                recorder.emit(event)
            recorder.finalize(spec.duration_s)
        return result

    def _variant_run(
        self,
        spec: RunSpec,
        family: str,
        meta: Dict[str, Any],
        recorder: Optional[TraceRecorder] = None,
    ) -> SimulationResult:
        """Resume past the longest matching prefix of the family tape."""
        if recorder is not None and meta.get("events") is None:
            # The family's base ran unrecorded, so there is no event
            # tape to replay a prefix from. Re-record the family from
            # scratch under this spec's policy — the overwritten tape
            # serves later recorded variants.
            return self._base_run(spec, family, recorder)
        records: List[StepRecord] = meta["records"]
        probe = spec.policy.build()
        probe.reset()
        divergence = first_divergence(records, probe)
        if divergence is None:
            base = self.cache.get(meta["result_digest"])
            if base is not None:
                # The policy matches the base run's every answer: the
                # trajectory (hence the result and its trace) is
                # identical.
                self.stats.reused_results += 1
                if recorder is not None:
                    for event in meta["events"]:
                        recorder.emit(event)
                    recorder.finalize(spec.duration_s)
                return base
            horizon = None  # full match, result lost: resume at the end
        else:
            horizon = records[divergence].now
        # The latest checkpoint taken at or before the divergent step
        # (its control event is >= the boundary, so it has not run yet
        # in the restored core). Evicted blobs degrade to earlier
        # checkpoints, then to a cold run.
        candidates = [
            (index, when)
            for index, when in enumerate(meta["epochs"])
            if horizon is None or when <= horizon
        ]
        for index, when in reversed(candidates):
            blob = self.cache.get_blob(f"{family}-ckpt-{index}")
            if blob is not None:
                return self._resume(
                    spec, records, blob, when, meta, index, recorder
                )
        self.stats.cold_runs += 1
        policy = spec.policy.build()
        requests = traces.requests_for(spec.trace_key())
        return ClusterSimulator(
            spec.config, policy, recorder=recorder
        ).run(requests, spec.duration_s)

    def _resume(
        self,
        spec: RunSpec,
        records: Sequence[StepRecord],
        blob: bytes,
        when: float,
        meta: Optional[Dict[str, Any]] = None,
        index: Optional[int] = None,
        recorder: Optional[TraceRecorder] = None,
    ) -> SimulationResult:
        core = pickle.loads(blob)
        policy = spec.policy.build()
        policy.reset()
        # Rebuild the policy's hysteresis state as of the checkpoint:
        # replay every control step strictly before it (the step at the
        # boundary, if any, has not been processed by the restored
        # core). All of these matched during divergence probing, so the
        # state equals a real run's.
        for record in records:
            if record.now >= when:
                break
            _feed_step(policy, record)
        core.policy = policy
        if recorder is not None:
            # The base and this variant are bit-identical up to the
            # checkpoint (the prefix matched), so the tape's first
            # ``event_counts[index]`` events are exactly the events the
            # restored core will not re-emit. Replay them, then re-arm
            # recording with the registry pickled at the checkpoint —
            # the suffix continues counters and events exactly where a
            # cold recorded run would be at this point.
            assert meta is not None and index is not None
            for event in meta["events"][:meta["event_counts"][index]]:
                recorder.emit(event)
            core.attach_recorder(
                recorder, pickle.loads(meta["registries"][index])
            )
        core.run_all()
        self.stats.resumed_runs += 1
        self.stats.saved_s += when
        self.stats.replayed_s += spec.duration_s - when
        return core.finalize()
