"""Process-wide, bounded caches for the synthetic trace pipeline.

Trace generation is deterministic in ``(seed, n_servers, provisioned
power, duration)``, so request traces can be shared by *key* rather than
by object: every harness, sweep, and worker process asking for the same
deployment gets the identical (cached) trace. This replaces the old
per-harness ``_requests_cache`` dict, which grew without bound and could
not share work between harness instances — and it is what lets
:class:`~repro.exec.runspec.RunSpec` stay cheaply picklable: specs carry
the key, and each worker process materializes (and then reuses) the
trace locally.

Both caches are small LRUs: a sweep touches a handful of deployment
sizes, so a few entries give a 100% hit rate while keeping long-lived
processes bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.timeseries import TimeSeries
from repro.errors import ConfigurationError
from repro.workloads.replay import TraceSource, apply_flash_crowd
from repro.workloads.requests import SampledRequest
from repro.workloads.tracegen import (
    INFERENCE_PROVISIONED_PER_SERVER_W,
    ProductionTraceModel,
    SyntheticTraceGenerator,
)

#: Entries kept per cache; a Figure 13-18 grid needs at most a handful.
_MAX_TRACES = 16


@dataclass(frozen=True)
class TraceKey:
    """Everything the request-trace synthesis depends on.

    Attributes:
        seed: Trace-generation seed (shared with the simulation seed by
            the evaluation harness).
        n_servers: Deployed server count; offered load scales with it.
        provisioned_per_server_w: Breaker budget per designed slot.
        duration_s: Trace duration in seconds.
        source: Where the trace comes from — ``None`` for the default
            synthetic pipeline, or a replay descriptor (Azure CSV,
            session workload, flash-crowd overlay). Part of the key:
            the same deployment replaying different traces caches
            different request streams.
    """

    seed: int
    n_servers: int
    provisioned_per_server_w: float = INFERENCE_PROVISIONED_PER_SERVER_W
    duration_s: float = 0.0
    source: Optional[TraceSource] = None

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ConfigurationError("n_servers must be positive")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")


_utilization_traces: "OrderedDict[Tuple[int, float], TimeSeries]" = (
    OrderedDict()
)
_request_traces: "OrderedDict[TraceKey, List[SampledRequest]]" = OrderedDict()


def utilization_trace(seed: int, duration_s: float) -> TimeSeries:
    """The production-style target utilization trace (cached by key)."""
    key = (seed, duration_s)
    cached = _utilization_traces.get(key)
    if cached is not None:
        _utilization_traces.move_to_end(key)
        return cached
    trace = ProductionTraceModel(seed=seed).generate(duration_s=duration_s)
    _utilization_traces[key] = trace
    while len(_utilization_traces) > _MAX_TRACES:
        _utilization_traces.popitem(last=False)
    return trace


def _synthetic_requests(key: TraceKey) -> List[SampledRequest]:
    """The default MAPE-validated synthetic request trace."""
    generator = SyntheticTraceGenerator(
        n_servers=key.n_servers,
        provisioned_per_server_w=key.provisioned_per_server_w,
        seed=key.seed,
    )
    synthetic = generator.generate(utilization_trace(key.seed, key.duration_s))
    synthetic.validate()
    return synthetic.requests


def requests_for(key: TraceKey) -> List[SampledRequest]:
    """The request trace for one deployment (cached).

    Dispatches on the key's :attr:`~TraceKey.source`: ``None`` runs the
    synthetic pipeline (load scales with the deployed server count so
    per-server utilization stays on the production pattern); a replay
    source materializes its CSV window or session workload instead —
    hash-verified against the spec's pinned sha256 — and a burst
    overlay applies on top of whichever base was produced. Every path
    lands in the same process-wide LRU, so serial, parallel-worker,
    cached, and incremental executions all replay the identical stream.
    """
    cached = _request_traces.get(key)
    if cached is not None:
        _request_traces.move_to_end(key)
        return cached
    if key.source is None:
        requests = _synthetic_requests(key)
    else:
        base = key.source.base_requests(key.duration_s)
        if base is None:  # burst overlay on the synthetic pipeline
            base = _synthetic_requests(key)
        if key.source.burst is not None:
            base = apply_flash_crowd(base, key.source.burst, key.duration_s)
        requests = base
    _request_traces[key] = requests
    while len(_request_traces) > _MAX_TRACES:
        _request_traces.popitem(last=False)
    return requests


def cache_sizes() -> Dict[str, int]:
    """Current entry counts (observability for tests and tuning)."""
    return {
        "utilization_traces": len(_utilization_traces),
        "request_traces": len(_request_traces),
    }


def clear_caches() -> None:
    """Drop every cached trace (mainly for tests)."""
    _utilization_traces.clear()
    _request_traces.clear()
