"""Picklable run descriptors with stable content digests.

A :class:`RunSpec` is the unit of work of the sweep engine: the full
cluster configuration, the policy (by factory name + thresholds, not as
a live object), and the trace key. Specs are small frozen dataclasses —
cheap to pickle into worker processes — and hash to a deterministic
content digest that keys the run memo cache.

Policies are described declaratively so that (a) a spec pickles without
dragging simulator state along and (b) two sweeps asking for the same
policy configuration produce the same digest even when they construct
distinct policy objects.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.metrics import SimulationResult
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.errors import ConfigurationError
from repro.exec import traces
from repro.workloads.replay import TraceSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.policy_base import PowerPolicy
    from repro.core.policy import PolcaThresholds
    from repro.obs.recorder import TraceRecorder

#: Bump to invalidate every digest (and hence on-disk cache entry) when
#: simulator semantics change incompatibly. Version 2: the energy and
#: breaker-exposure integrals clamp at ``duration_s`` instead of
#: covering the post-duration drain of in-flight requests. Version 3:
#: ``ClusterConfig`` grew the power-delivery ``protection`` section
#: (breaker topology, trip curves, emergency shedding), which changes
#: the canonical config payload for every spec. Version 4: specs grew
#: the ``trace`` replay source, and the float-grid/smoothing-edge bug
#: sweep changed the synthetic trace pipeline's output.
DIGEST_VERSION = 4

#: Policy factory names the engine can build (``all_policies()`` keys).
POLICY_NAMES = (
    "POLCA", "1-Thresh-Low-Pri", "1-Thresh-All", "No-cap", "Unmanaged",
)


@dataclass(frozen=True)
class PolicySpec:
    """A policy described by factory name (plus POLCA thresholds).

    Attributes:
        name: One of :data:`POLICY_NAMES`.
        thresholds: POLCA threshold configuration; only valid (and always
            normalized to an explicit value, so digests deduplicate) for
            ``name="POLCA"``.
    """

    name: str = "POLCA"
    thresholds: Optional["PolcaThresholds"] = None

    def __post_init__(self) -> None:
        if self.name not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown policy {self.name!r}; expected one of "
                f"{', '.join(POLICY_NAMES)}"
            )
        if self.name == "POLCA":
            if self.thresholds is None:
                from repro.core.policy import POLCA_DEFAULTS

                object.__setattr__(self, "thresholds", POLCA_DEFAULTS)
        elif self.thresholds is not None:
            raise ConfigurationError(
                f"thresholds only apply to POLCA, not {self.name!r}"
            )

    def build(self) -> "PowerPolicy":
        """Instantiate a fresh policy object."""
        from repro.core.baselines import UnmanagedPolicy, all_policies
        from repro.core.policy import DualThresholdPolicy

        if self.name == "POLCA":
            return DualThresholdPolicy(self.thresholds)
        if self.name == "Unmanaged":
            # Not in all_policies(): the figure sweeps iterate that
            # registry and must stay the paper's four-policy set.
            return UnmanagedPolicy()
        return all_policies()[self.name]()


def policy_spec_for(policy: "PowerPolicy") -> Optional[PolicySpec]:
    """Recognize a live policy object as an engine-buildable spec.

    Returns ``None`` for custom policy classes or non-default baseline
    parameterizations — callers fall back to running those in-process.
    """
    from repro.core.baselines import (
        NoCapPolicy,
        SingleThresholdAllPolicy,
        SingleThresholdLowPriPolicy,
        UnmanagedPolicy,
    )
    from repro.core.policy import DualThresholdPolicy

    if type(policy) is DualThresholdPolicy:
        return PolicySpec("POLCA", policy.thresholds)
    if type(policy) is NoCapPolicy:
        return PolicySpec("No-cap")
    if type(policy) is UnmanagedPolicy:
        return PolicySpec("Unmanaged")
    if type(policy) is SingleThresholdLowPriPolicy:
        default = SingleThresholdLowPriPolicy()
        if (
            policy.threshold == default.threshold
            and policy.uncap_margin == default.uncap_margin
            and policy.lp_clock_mhz == default.lp_clock_mhz
        ):
            return PolicySpec("1-Thresh-Low-Pri")
    if type(policy) is SingleThresholdAllPolicy:
        default = SingleThresholdAllPolicy()
        if (
            policy.threshold == default.threshold
            and policy.uncap_margin == default.uncap_margin
            and policy.clock_mhz == default.clock_mhz
        ):
            return PolicySpec("1-Thresh-All")
    return None


def _canonical(value: Any) -> Any:
    """Reduce a value to JSON-serializable primitives, recursively.

    Dataclasses become ``{"__type__": name, **fields}`` so two different
    dataclass types with the same field values cannot collide; floats go
    through ``repr`` for an exact, platform-stable round-trip. Fields
    declaring ``metadata={"digest": False}`` are skipped — that is how
    replayed traces digest by content hash instead of by machine-local
    file path.
    """
    if is_dataclass(value) and not isinstance(value, type):
        out: Any = {"__type__": type(value).__name__}
        for f in fields(value):
            if f.metadata.get("digest") is False:
                continue
            out[f.name] = _canonical(getattr(value, f.name))
        return out
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise ConfigurationError(
        f"cannot canonicalize {type(value).__name__} for digesting"
    )


@dataclass(frozen=True)
class RunSpec:
    """One independent simulator run: config + policy + trace key.

    Attributes:
        config: The full cluster configuration (including any fault plan
            and reliability knobs).
        policy: The policy to run, declaratively.
        duration_s: Simulated duration.
        trace: Replay source for the request trace (``None`` = the
            default synthetic pipeline). Digested by content (file
            sha256 + slice), never by path.
    """

    config: ClusterConfig
    policy: PolicySpec
    duration_s: float
    trace: Optional[TraceSource] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")

    def trace_key(self) -> traces.TraceKey:
        """The request trace this run replays (derived, not stored)."""
        return traces.TraceKey(
            seed=self.config.seed,
            n_servers=self.config.n_servers,
            provisioned_per_server_w=self.config.provisioned_per_server_w,
            duration_s=self.duration_s,
            source=self.trace,
        )

    def digest(self) -> str:
        """Stable content hash keying the run memo cache."""
        payload = json.dumps(
            {"digest_version": DIGEST_VERSION, "spec": _canonical(self)},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def execute_spec(
    spec: RunSpec, recorder: Optional["TraceRecorder"] = None
) -> SimulationResult:
    """Run one spec to completion (the worker-process entry point).

    ``recorder`` threads an optional trace sink into the simulator —
    the engine's trace collector uses it to spool per-run events on the
    serial, pool-worker, and quarantine paths alike. Recording never
    perturbs the result.
    """
    policy = spec.policy.build()
    requests = traces.requests_for(spec.trace_key())
    simulator = ClusterSimulator(spec.config, policy, recorder=recorder)
    return simulator.run(requests, spec.duration_s)
