"""repro.exec — the parallel sweep-execution engine.

Every headline result of the paper (Figures 13-18) is a grid of
*independent* discrete-event simulator runs. This package turns those
grids into batches:

* :class:`~repro.exec.runspec.RunSpec` describes one run — cluster
  configuration, policy, and trace key — as a cheaply picklable value
  object with a stable content digest;
* :class:`~repro.exec.cache.RunCache` memoizes results by digest
  (in-memory, with an optional on-disk JSON layer), so the shared
  uncapped baseline and any duplicated grid point is simulated exactly
  once across the threshold search, the added-servers sweeps, the policy
  comparison, and the robustness studies;
* :class:`~repro.exec.engine.SweepEngine` fans cache misses out over a
  ``ProcessPoolExecutor`` (serial in-process fallback for ``workers=1``
  and for platforms without ``fork``), with deterministic result
  ordering — parallel output is bit-identical to serial because every
  run is independently seeded and executed by the same code path;
* :class:`~repro.exec.incremental.IncrementalExecutor` (enabled with
  ``EvaluationHarness(incremental=True)``) checkpoints the first run of
  each config/trace family and bit-exactly resumes later policy
  variants from their first divergence, so deep-prefix grid sweeps skip
  the shared simulation prefix instead of replaying it;
* :meth:`SweepEngine.run_sharded` partitions a fault-free cluster
  across N serving shards under one parent control plane
  (:class:`~repro.cluster.sharded.ShardedSimulator`) — bit-identical to
  serial at ``n_shards=1``, deterministic above;
* :mod:`~repro.exec.profile` wraps ``cProfile``/``perf_counter`` —
  including the simulator's per-event-kind kernel timers via
  :func:`~repro.exec.profile.profile_kernels` — so hot-path work starts
  from data.

Request traces are shared process-wide through a bounded cache keyed on
``(seed, n_servers, provisioned power, duration)`` — see
:mod:`repro.exec.traces`.
"""

from repro.exec.cache import RunCache
from repro.exec.codec import result_from_dict, result_to_dict
from repro.exec.engine import (
    ExecutionStats,
    SweepEngine,
    default_workers,
    fork_available,
    parallel_map,
)
from repro.exec.incremental import (
    IncrementalExecutor,
    IncrementalStats,
    StepRecord,
    TapePolicy,
    family_digest,
    first_divergence,
)
from repro.exec.profile import (
    HotSpot,
    KernelStat,
    ProfileReport,
    kernel_stats,
    profile_call,
    profile_kernels,
    timed,
)
from repro.exec.runspec import (
    PolicySpec,
    RunSpec,
    execute_spec,
    policy_spec_for,
)
from repro.exec.traces import TraceKey, requests_for, utilization_trace

__all__ = [
    "ExecutionStats",
    "HotSpot",
    "IncrementalExecutor",
    "IncrementalStats",
    "KernelStat",
    "PolicySpec",
    "ProfileReport",
    "RunCache",
    "RunSpec",
    "StepRecord",
    "SweepEngine",
    "TapePolicy",
    "TraceKey",
    "default_workers",
    "execute_spec",
    "family_digest",
    "first_divergence",
    "fork_available",
    "kernel_stats",
    "parallel_map",
    "policy_spec_for",
    "profile_call",
    "profile_kernels",
    "requests_for",
    "result_from_dict",
    "result_to_dict",
    "timed",
    "utilization_trace",
]
