"""repro.exec — the parallel sweep-execution engine.

Every headline result of the paper (Figures 13-18) is a grid of
*independent* discrete-event simulator runs. This package turns those
grids into batches:

* :class:`~repro.exec.runspec.RunSpec` describes one run — cluster
  configuration, policy, and trace key — as a cheaply picklable value
  object with a stable content digest;
* :class:`~repro.exec.cache.RunCache` memoizes results by digest
  (in-memory, with an optional on-disk JSON layer), so the shared
  uncapped baseline and any duplicated grid point is simulated exactly
  once across the threshold search, the added-servers sweeps, the policy
  comparison, and the robustness studies;
* :class:`~repro.exec.engine.SweepEngine` fans cache misses out over a
  ``ProcessPoolExecutor`` (serial in-process fallback for ``workers=1``
  and for platforms without ``fork``), with deterministic result
  ordering — parallel output is bit-identical to serial because every
  run is independently seeded and executed by the same code path;
* :mod:`~repro.exec.profile` wraps ``cProfile``/``perf_counter`` so
  hot-path work starts from data.

Request traces are shared process-wide through a bounded cache keyed on
``(seed, n_servers, provisioned power, duration)`` — see
:mod:`repro.exec.traces`.
"""

from repro.exec.cache import RunCache
from repro.exec.codec import result_from_dict, result_to_dict
from repro.exec.engine import (
    ExecutionStats,
    SweepEngine,
    default_workers,
    fork_available,
    parallel_map,
)
from repro.exec.profile import HotSpot, ProfileReport, profile_call, timed
from repro.exec.runspec import (
    PolicySpec,
    RunSpec,
    execute_spec,
    policy_spec_for,
)
from repro.exec.traces import TraceKey, requests_for, utilization_trace

__all__ = [
    "ExecutionStats",
    "HotSpot",
    "PolicySpec",
    "ProfileReport",
    "RunCache",
    "RunSpec",
    "SweepEngine",
    "TraceKey",
    "default_workers",
    "execute_spec",
    "fork_available",
    "parallel_map",
    "policy_spec_for",
    "profile_call",
    "requests_for",
    "result_from_dict",
    "result_to_dict",
    "timed",
    "utilization_trace",
]
