"""The parallel sweep executor.

:class:`SweepEngine` takes a batch of :class:`RunSpec`\\ s, answers what
it can from the memo cache, deduplicates the rest by content digest, and
fans the unique misses out over a ``ProcessPoolExecutor``. Results come
back in input order, so callers are oblivious to scheduling.

Parallel output is bit-identical to serial output by construction: every
run is an independently seeded simulation executed by the same
:func:`~repro.exec.runspec.execute_spec` code path, and result ordering
is fixed by the spec list, not by completion time. ``fork`` is used for
worker start-up (cheap, inherits warm caches); on platforms without it
the engine falls back to in-process serial execution.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.cluster.metrics import SimulationResult
from repro.errors import ConfigurationError
from repro.exec.cache import RunCache
from repro.exec.runspec import RunSpec, execute_spec
from repro.obs.collect import TraceCollector, TraceJob
from repro.obs.export import write_textfile
from repro.obs.ledger import (
    ExperimentLedger,
    rusage_delta,
    rusage_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import NULL_RECORDER, TraceRecorder

T = TypeVar("T")
R = TypeVar("R")

#: Wall-time histogram buckets for individual simulator runs (seconds).
RUN_WALL_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _maybe_fail_for_test(spec: RunSpec) -> None:
    """Deliberately kill or wedge this worker when a test asks for it.

    Inert unless the ``REPRO_EXEC_FAIL_SEED`` environment variable
    matches the spec's seed — the engine-robustness regression tests
    set it to simulate a worker dying (``REPRO_EXEC_FAIL_MODE=kill``,
    the default) or hanging (``=hang``) mid-sweep. With
    ``REPRO_EXEC_FAIL_ONCE=<sentinel path>`` the failure happens only
    while the sentinel file does not exist (it is created just before
    failing), so the first retry succeeds. Runs only inside pool
    workers: the quarantine path calls :func:`execute_spec` directly.
    """
    seed = os.environ.get("REPRO_EXEC_FAIL_SEED")
    if seed is None or int(seed) != spec.config.seed:
        return
    sentinel = os.environ.get("REPRO_EXEC_FAIL_ONCE")
    if sentinel:
        if os.path.exists(sentinel):
            return
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("failed\n")
    if os.environ.get("REPRO_EXEC_FAIL_MODE", "kill") == "hang":
        time.sleep(3600.0)
    os._exit(1)


def _execute_timed(
    spec: RunSpec,
    job: Optional[TraceJob] = None,
) -> Tuple[SimulationResult, float, int, Dict[str, float]]:
    """Worker entry point of the process pool.

    Returns the result plus the per-run wall time, the executing
    worker's pid, and the worker's ``getrusage`` footprint (CPU-time
    delta across the run, max-RSS high-water mark), so the parent can
    emit ``engine_run`` events and ledger entries without recorders
    having to be picklable into workers. ``job`` is the collector's
    spool recipe: the recorder chain is built (and its segment file
    opened) inside the worker, because file handles do not survive the
    fork boundary.
    """
    _maybe_fail_for_test(spec)
    usage_before = rusage_snapshot()
    start = time.perf_counter()
    result = _execute_spooled(spec, job)
    wall_s = time.perf_counter() - start
    usage = rusage_delta(usage_before, rusage_snapshot())
    return result, wall_s, os.getpid(), usage


def _execute_spooled(
    spec: RunSpec, job: Optional[TraceJob]
) -> SimulationResult:
    """Run one spec, spooling its trace when a collector job is given."""
    if job is None:
        return execute_spec(spec)
    recorder = job.open()
    try:
        return execute_spec(spec, recorder=recorder)
    finally:
        recorder.close()


def default_workers() -> int:
    """``os.cpu_count() - 1`` (at least 1): leave a core for the parent."""
    return max(1, (os.cpu_count() or 2) - 1)


def fork_available() -> bool:
    """Whether this platform supports ``fork`` worker start-up."""
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
) -> List[R]:
    """Order-preserving map over a process pool (serial fallback).

    Generic fan-out for embarrassingly parallel pure functions (the
    characterization sweeps use it). ``fn`` must be a picklable
    module-level callable. Falls back to an in-process ``map`` for
    ``workers=1``, single-item inputs, and platforms without ``fork``.
    """
    materialized = list(items)
    n_workers = default_workers() if workers is None else max(1, workers)
    n_workers = min(n_workers, len(materialized))
    if n_workers <= 1 or not fork_available():
        return [fn(item) for item in materialized]
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(
        max_workers=n_workers, mp_context=context
    ) as pool:
        return list(pool.map(fn, materialized))


@dataclass
class ExecutionStats:
    """What one :meth:`SweepEngine.run_specs` call actually did.

    Attributes:
        requested: Specs in the batch.
        unique: Distinct content digests among them.
        cache_hits: Answered from the memo cache (duplicates within the
            batch count here too — they are simulated once).
        simulated: Runs actually executed.
        retried: Pool resubmissions after a worker crash or run
            timeout.
        quarantined: Specs that exhausted their retries and fell back
            to serial in-parent execution.
        workers_used: Pool size (1 = in-process serial).
        wall_s: Wall-clock for the batch.
        incremental_resumed: Runs restored from a family checkpoint and
            replayed only past it (incremental mode).
        incremental_reused: Runs answered with another policy's result
            after a full-tape match (incremental mode).
        saved_sim_s: Simulated seconds skipped via checkpoint restores.
    """

    requested: int = 0
    unique: int = 0
    cache_hits: int = 0
    simulated: int = 0
    retried: int = 0
    quarantined: int = 0
    workers_used: int = 1
    wall_s: float = 0.0
    incremental_resumed: int = 0
    incremental_reused: int = 0
    saved_sim_s: float = 0.0

    @property
    def runs_per_second(self) -> float:
        """Simulated runs per wall-clock second (0 when nothing ran)."""
        if self.simulated == 0 or self.wall_s <= 0:
            return 0.0
        return self.simulated / self.wall_s


@dataclass
class SweepEngine:
    """Executes batches of runs with memoization and process fan-out.

    Attributes:
        workers: Pool size; ``None`` means ``os.cpu_count() - 1``; ``1``
            forces the serial in-process path.
        cache: The run memo cache (a private in-memory one by default —
            pass a shared instance to memoize across sweeps).
        recorder: Trace sink for engine-level events (per-run wall time,
            cache hit/miss, worker pid, digest, batch summaries, and a
            live ``engine_progress`` feed — runs done, cache hits, ETA
            — emitted as each run completes). The
            default :data:`~repro.obs.recorder.NULL_RECORDER` records
            nothing and adds no overhead. Engine events carry no ``t``
            key — they are wall-clock, not simulation-time. Recording
            happens in the parent process only; to trace *inside* a
            simulation, run :class:`~repro.cluster.simulator
            .ClusterSimulator` directly with a recorder.
        metrics: A registry that accumulates across every
            ``run_specs`` call this engine serves (only populated while
            ``recorder.enabled``), complementing the per-run
            ``SimulationResult.observability`` snapshots that
            :func:`~repro.obs.metrics.aggregate_snapshots` merges.
        run_timeout_s: Per-run wall-clock budget in the pool; a run
            exceeding it counts as a worker failure (its process is
            terminated and the pool rebuilt). ``None`` (default) waits
            forever — the pre-existing behavior.
        retries: Pool resubmissions granted to a failed run before it
            is quarantined to serial in-parent execution. Quarantine
            runs on the same :func:`~repro.exec.runspec.execute_spec`
            path, so a healthy-but-unlucky spec still yields its
            bit-identical result; a genuinely poisoned spec raises in
            the parent where the error is visible instead of killing
            workers silently.
        incremental: Execute misses through
            :class:`~repro.exec.incremental.IncrementalExecutor`:
            sweep points sharing a configuration+trace *family* restore
            the longest checkpoint before their first controller
            divergence and replay only the suffix (bit-identical to a
            full run). Incremental runs execute serially in-parent —
            family checkpoints live in this process's cache — so it
            pays off when prefix reuse beats process fan-out, i.e. on
            dense controller-parameter grids.
        checkpoint_epoch_s: Simulation-time spacing of the checkpoints
            recorded during each family's first run (incremental mode).
        ledger: Experiment ledger receiving one entry per unique spec
            each batch — digest/family/trace identity, policy + seed,
            wall time, worker pid, provenance flags (cache hit,
            incremental resume, retries, quarantine), worker rusage,
            headline result metrics, and an environment stamp. ``None``
            (the default) records nothing; like every recorder, the
            ledger observes only, so a ledgered batch is bit-identical
            to an unledgered one. Retried and quarantined runs appear
            exactly once (with their retry counts), cache hits appear
            with ``cache_hit: true`` and zero wall time.
        collector: Per-run *simulation* trace spool
            (:class:`~repro.obs.collect.TraceCollector`). Where
            ``recorder`` sees engine-level events in the parent, the
            collector threads a recorder into every simulated run —
            serial, incremental, pool-worker, quarantine, and sharded
            alike — writing one JSONL segment per run digest. Memo
            cache hits are honored only when the collector already
            holds that digest's segment; otherwise the run is
            re-simulated (bit-identical by determinism) so the trace
            artifact exists. ``None`` (the default) spools nothing.
    """

    workers: Optional[int] = None
    cache: RunCache = field(default_factory=RunCache)
    recorder: TraceRecorder = NULL_RECORDER
    metrics: MetricsRegistry = field(
        default_factory=MetricsRegistry, repr=False
    )
    run_timeout_s: Optional[float] = None
    retries: int = 1
    incremental: bool = False
    checkpoint_epoch_s: float = 600.0
    ledger: Optional[ExperimentLedger] = None
    collector: Optional[TraceCollector] = None
    last_stats: Optional[ExecutionStats] = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.workers is None:
            self.workers = default_workers()
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ConfigurationError("run_timeout_s must be positive")
        if self.retries < 0:
            raise ConfigurationError("retries cannot be negative")
        if self.incremental:
            from repro.exec.incremental import IncrementalExecutor

            self._incremental: Optional[IncrementalExecutor] = (
                IncrementalExecutor(self.cache, self.checkpoint_epoch_s)
            )
        else:
            if self.checkpoint_epoch_s <= 0:
                raise ConfigurationError(
                    "checkpoint_epoch_s must be positive"
                )
            self._incremental = None

    def run(self, spec: RunSpec) -> SimulationResult:
        """Execute (or recall) a single run."""
        return self.run_specs([spec])[0]

    def run_sharded(
        self,
        spec: RunSpec,
        n_shards: int = 1,
        parallel: bool = True,
    ) -> SimulationResult:
        """Execute one run with its *cluster* sharded across workers.

        Where :meth:`run_specs` parallelizes over grid points, this
        parallelizes inside a single site-scale simulation: the row is
        partitioned over ``n_shards`` serve-only shard processes that
        synchronize with the control plane at telemetry-tick epochs
        (see :class:`~repro.cluster.sharded.ShardedSimulator`).
        ``n_shards=1`` is bit-identical to :meth:`run` and shares its
        cache entry; larger counts are cached under a shard-qualified
        digest because the partitioned cluster routes independently
        per shard.

        Raises:
            ConfigurationError: If the spec's configuration injects
                faults or attaches a protection hierarchy (sharding
                requires the fault-free elisions).
        """
        digest = spec.digest()
        if n_shards > 1:
            digest = f"{digest}-shards{n_shards}"
        cached = self.cache.get(digest)
        if cached is not None and (
            self.collector is None or self.collector.has(digest)
        ):
            if self.ledger is not None:
                self.ledger.record_run(
                    spec, cached, cache_hit=True, shards=n_shards,
                )
            return cached
        from repro.cluster.sharded import ShardedSimulator
        from repro.exec import traces

        ledgering = self.ledger is not None
        usage_before = rusage_snapshot() if ledgering else None
        run_start = time.perf_counter()
        requests = traces.requests_for(spec.trace_key())
        recorder: Optional[TraceRecorder] = (
            self.collector.job(digest).open()
            if self.collector is not None else None
        )
        try:
            result = ShardedSimulator(
                spec.config,
                spec.policy.build(),
                n_shards=n_shards,
                parallel=parallel,
                recorder=recorder,
            ).run(requests, spec.duration_s)
        finally:
            if recorder is not None:
                recorder.close()
        self.cache.put(digest, result)
        if ledgering:
            self.ledger.record_run(
                spec, result,
                wall_s=time.perf_counter() - run_start,
                worker=os.getpid(),
                rusage=rusage_delta(usage_before, rusage_snapshot()),
                shards=n_shards,
            )
        return result

    def run_specs(self, specs: Sequence[RunSpec]) -> List[SimulationResult]:
        """Execute a batch; results match the order of ``specs``.

        Duplicated specs (same content digest) are simulated once; cached
        digests are not simulated at all.
        """
        start = time.perf_counter()
        recording = self.recorder.enabled
        ledgering = self.ledger is not None
        run_info: Dict[str, Dict[str, Any]] = {}
        digests = [spec.digest() for spec in specs]
        resolved: dict = {}
        pending: List[Tuple[str, RunSpec]] = []
        for digest, spec in zip(digests, specs):
            if digest in resolved or any(d == digest for d, _ in pending):
                continue
            cached = self.cache.get(digest)
            # A memo hit without a spooled segment is re-simulated
            # (bit-identical by determinism) so the trace artifact
            # exists alongside the result.
            if cached is not None and (
                self.collector is None or self.collector.has(digest)
            ):
                resolved[digest] = cached
                if recording:
                    self.recorder.emit({
                        "kind": "engine_cache_hit", "digest": digest,
                    })
                if ledgering:
                    run_info[digest] = {"cache_hit": True}
            else:
                pending.append((digest, spec))
        workers_used = 1
        retried = quarantined = 0
        batch_hits = len(specs) - len(pending)
        incremental = self._incremental
        inc_before = (
            (
                incremental.stats.resumed_runs,
                incremental.stats.reused_results,
                incremental.stats.saved_s,
            )
            if incremental is not None
            else (0, 0, 0.0)
        )
        if pending:
            n_workers = min(self.workers, len(pending))
            if (
                incremental is not None
                or n_workers <= 1
                or not fork_available()
            ):
                execute = (
                    incremental.execute
                    if incremental is not None
                    else execute_spec
                )
                for done, (digest, spec) in enumerate(pending, start=1):
                    if not (recording or ledgering):
                        resolved[digest] = self._execute_collected(
                            execute, digest, spec
                        )
                        continue
                    usage_before = (
                        rusage_snapshot() if ledgering else None
                    )
                    inc_run_before = (
                        (
                            incremental.stats.resumed_runs,
                            incremental.stats.reused_results,
                        )
                        if ledgering and incremental is not None
                        else None
                    )
                    run_start = time.perf_counter()
                    result = self._execute_collected(execute, digest, spec)
                    wall_s = time.perf_counter() - run_start
                    resolved[digest] = result
                    if recording:
                        self._record_run(digest, wall_s, os.getpid())
                        self._record_progress(
                            done, len(pending), batch_hits, start, 1
                        )
                    if ledgering:
                        info: Dict[str, Any] = {
                            "wall_s": wall_s,
                            "worker": os.getpid(),
                            "rusage": rusage_delta(
                                usage_before, rusage_snapshot()
                            ),
                        }
                        if inc_run_before is not None:
                            info["incremental_resumed"] = (
                                incremental.stats.resumed_runs
                                > inc_run_before[0]
                            )
                            info["incremental_reused"] = (
                                incremental.stats.reused_results
                                > inc_run_before[1]
                            )
                        run_info[digest] = info
            else:
                workers_used = n_workers
                retried, quarantined = self._run_pool(
                    pending, resolved, n_workers, batch_hits, start,
                    recording, run_info,
                )
            for digest, _ in pending:
                self.cache.put(digest, resolved[digest])
        stats = ExecutionStats(
            requested=len(specs),
            unique=len(set(digests)),
            cache_hits=len(specs) - len(pending),
            simulated=len(pending),
            retried=retried,
            quarantined=quarantined,
            workers_used=workers_used,
            wall_s=time.perf_counter() - start,
        )
        if incremental is not None:
            stats.incremental_resumed = (
                incremental.stats.resumed_runs - inc_before[0]
            )
            stats.incremental_reused = (
                incremental.stats.reused_results - inc_before[1]
            )
            stats.saved_sim_s = incremental.stats.saved_s - inc_before[2]
        self.last_stats = stats
        if recording:
            registry = self.metrics
            registry.counter("engine.batches").inc()
            registry.counter("engine.requested").inc(stats.requested)
            registry.counter("engine.cache_hits").inc(stats.cache_hits)
            self.recorder.emit({
                "kind": "engine_batch",
                "requested": stats.requested,
                "unique": stats.unique,
                "cache_hits": stats.cache_hits,
                "simulated": stats.simulated,
                "workers": stats.workers_used,
                "wall_s": stats.wall_s,
            })
        if ledgering:
            # One entry per unique digest, in first-occurrence order —
            # duplicates within the batch share their single entry, and
            # retried/quarantined runs appear exactly once (their retry
            # counts live in the provenance flags).
            emitted: set = set()
            for digest, spec in zip(digests, specs):
                if digest in emitted:
                    continue
                emitted.add(digest)
                self.ledger.record_run(
                    spec, resolved[digest], **run_info.get(digest, {})
                )
        return [resolved[digest] for digest in digests]

    def _run_pool(
        self,
        pending: Sequence[Tuple[str, RunSpec]],
        resolved: dict,
        n_workers: int,
        batch_hits: int,
        batch_start: float,
        recording: bool,
        run_info: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> Tuple[int, int]:
        """Fan ``pending`` out over a process pool, surviving workers.

        Results are collected in submission order, each wait bounded by
        ``run_timeout_s``. A timeout or a broken pool identifies the
        first uncollected spec as the offender: the wedged pool is torn
        down (hung workers are terminated — they never return on their
        own), the offender is retried at the head of a fresh pool up to
        ``retries`` times, then quarantined to in-parent serial
        execution. Specs behind the offender are resubmitted to the
        fresh pool; determinism makes re-execution safe, and collection
        order makes the accounting exact. Returns ``(retried,
        quarantined)`` counts.
        """
        context = multiprocessing.get_context("fork")
        ledgering = self.ledger is not None and run_info is not None
        remaining = list(pending)
        attempts: Dict[str, int] = {}
        total = len(pending)
        done_count = retried = quarantined = 0
        while remaining:
            pool = ProcessPoolExecutor(
                max_workers=min(n_workers, len(remaining)),
                mp_context=context,
            )
            futures = [
                pool.submit(
                    _execute_timed,
                    spec,
                    self.collector.job(digest)
                    if self.collector is not None else None,
                )
                for digest, spec in remaining
            ]
            failure: Optional[str] = None
            collected = 0
            for future in futures:
                try:
                    result, wall_s, worker, usage = future.result(
                        timeout=self.run_timeout_s
                    )
                except FuturesTimeoutError:
                    failure = "timeout"
                    break
                except BrokenProcessPool:
                    failure = "crash"
                    break
                digest, _ = remaining[collected]
                resolved[digest] = result
                collected += 1
                done_count += 1
                if recording:
                    self._record_run(digest, wall_s, worker)
                    self._record_progress(
                        done_count, total, batch_hits, batch_start,
                        n_workers,
                    )
                if ledgering:
                    run_info[digest] = {
                        "wall_s": wall_s,
                        "worker": worker,
                        "rusage": usage,
                        "retries": attempts.get(digest, 0),
                    }
            if failure is None:
                pool.shutdown(wait=True)
                return retried, quarantined
            # Tear the pool down hard: cancel queued futures and
            # terminate the worker processes (a hung worker never
            # exits by itself; a crashed pool is unusable anyway).
            for future in futures:
                future.cancel()
            for process in (pool._processes or {}).values():
                process.terminate()
            pool.shutdown(wait=False)
            digest, spec = remaining[collected]
            attempts[digest] = attempts.get(digest, 0) + 1
            # In-flight results behind the offender died with the pool;
            # resubmitting them is safe because runs are deterministic.
            survivors = remaining[collected + 1:]
            if attempts[digest] <= self.retries:
                action = "retry"
                retried += 1
                remaining = [(digest, spec)] + survivors
            else:
                action = "quarantine"
                quarantined += 1
                usage_before = rusage_snapshot() if ledgering else None
                run_start = time.perf_counter()
                result = _execute_spooled(
                    spec,
                    self.collector.job(digest)
                    if self.collector is not None else None,
                )
                wall_s = time.perf_counter() - run_start
                resolved[digest] = result
                done_count += 1
                if recording:
                    self._record_run(digest, wall_s, os.getpid())
                    self._record_progress(
                        done_count, total, batch_hits, batch_start,
                        n_workers,
                    )
                if ledgering:
                    run_info[digest] = {
                        "wall_s": wall_s,
                        "worker": os.getpid(),
                        "rusage": rusage_delta(
                            usage_before, rusage_snapshot()
                        ),
                        "retries": attempts[digest] - 1,
                        "quarantined": True,
                    }
                remaining = survivors
            if recording:
                self.metrics.counter("engine.worker_retries").inc()
                self.recorder.emit({
                    "kind": "engine_worker_retry",
                    "digest": digest,
                    "attempts": attempts[digest],
                    "reason": failure,
                    "action": action,
                })
        return retried, quarantined

    def _execute_collected(
        self,
        execute: Callable[..., SimulationResult],
        digest: str,
        spec: RunSpec,
    ) -> SimulationResult:
        """Serial-path execution, spooling the trace when collecting.

        ``execute`` is either :func:`~repro.exec.runspec.execute_spec`
        or the incremental executor's ``execute`` — both accept the
        same optional ``recorder`` and guarantee the recorded stream
        matches a cold run's.
        """
        if self.collector is None:
            return execute(spec)
        recorder = self.collector.job(digest).open()
        try:
            return execute(spec, recorder=recorder)
        finally:
            recorder.close()

    def _record_run(self, digest: str, wall_s: float, worker: int) -> None:
        """Ledger one executed spec into the trace and the registry."""
        self.metrics.counter("engine.simulated").inc()
        self.metrics.histogram(
            "engine.run_wall_s", RUN_WALL_BUCKETS
        ).observe(wall_s)
        self.recorder.emit({
            "kind": "engine_run",
            "digest": digest,
            "wall_s": wall_s,
            "worker": worker,
        })

    def _record_progress(
        self,
        done: int,
        total: int,
        cache_hits: int,
        batch_start: float,
        workers: int,
    ) -> None:
        """Emit a live ``engine_progress`` event after each completed run.

        The ETA extrapolates the batch's observed throughput
        (completed runs over elapsed wall time — worker parallelism is
        therefore already priced in) to the remaining runs. Long sweeps
        stream these while still executing; a dashboard (or plain
        ``tail -f`` on a JSONL sink) shows runs done, cache hits, and
        time to completion without waiting for the batch to return.
        """
        elapsed = time.perf_counter() - batch_start
        remaining = total - done
        eta_s = (elapsed / done) * remaining if done else float("inf")
        self.metrics.gauge("engine.progress_done").set(done)
        self.recorder.emit({
            "kind": "engine_progress",
            "done": done,
            "total": total,
            "cache_hits": cache_hits,
            "elapsed_s": elapsed,
            "eta_s": eta_s,
            "workers": workers,
        })

    def export_metrics(
        self,
        path: str,
        labels: Optional[dict] = None,
    ) -> str:
        """Write this engine's metrics as an OpenMetrics textfile.

        Renders the accumulated registry (batches, cache hits, per-run
        wall-time histogram, progress) through
        :func:`repro.obs.export.write_textfile`; returns the rendered
        text. The registry only accumulates while the engine's recorder
        is enabled, so pair this with any recorder (a
        :class:`~repro.obs.recorder.MemoryRecorder` suffices) for a
        populated export at the end of a long sweep.
        """
        return write_textfile(
            path, self.metrics.snapshot(), prefix="repro_engine",
            labels=labels,
        )
