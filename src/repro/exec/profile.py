"""Lightweight profiling helpers for the simulator hot path.

:func:`profile_call` wraps a callable in :mod:`cProfile` and distills
the result into a small, printable :class:`ProfileReport`; :func:`timed`
is a bare ``perf_counter`` context manager for quick wall-clock checks;
:func:`profile_kernels` runs one spec with the simulator's per-event-kind
kernel timers enabled and returns the counters as :class:`KernelStat`
rows (the same data lands in ``result.observability["sim_core"]``, so
traces carry it too). Used by ``examples/profile_simulator.py`` and
handy whenever a sweep feels slower than it should.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Tuple


@dataclass(frozen=True)
class HotSpot:
    """One function's share of a profiled call.

    Attributes:
        function: ``file:line(name)`` as formatted by :mod:`pstats`.
        calls: Primitive call count.
        tottime_s: Time spent in the function itself.
        cumtime_s: Time including everything it called.
    """

    function: str
    calls: int
    tottime_s: float
    cumtime_s: float


@dataclass(frozen=True)
class ProfileReport:
    """The distilled outcome of one profiled call.

    Attributes:
        wall_s: End-to-end wall-clock of the call.
        top: Hottest functions, by total (self) time.
        text: The full ``pstats`` table for the same entries.
    """

    wall_s: float
    top: Tuple[HotSpot, ...]
    text: str

    def __str__(self) -> str:
        return self.text


def profile_call(
    fn: Callable[..., Any], *args: Any, top: int = 15, **kwargs: Any
) -> Tuple[Any, ProfileReport]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns:
        ``(result, report)`` — the callable's return value and the
        distilled profile, hottest ``top`` functions by self time.
    """
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    wall_s = time.perf_counter() - start

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(pstats.SortKey.TIME).print_stats(top)

    hotspots: List[HotSpot] = []
    for func, (primitive_calls, _total_calls, tottime, cumtime, _callers) in (
        sorted(
            stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda item: item[1][2],
            reverse=True,
        )[:top]
    ):
        filename, line, name = func
        hotspots.append(
            HotSpot(
                function=f"{filename}:{line}({name})",
                calls=primitive_calls,
                tottime_s=tottime,
                cumtime_s=cumtime,
            )
        )
    report = ProfileReport(
        wall_s=wall_s, top=tuple(hotspots), text=buffer.getvalue()
    )
    return result, report


@dataclass(frozen=True)
class KernelStat:
    """One event kind's share of the simulator event loop.

    Attributes:
        kind: Event kind (``tick``, ``arrival``, ``phase``, ``cap``,
            ``brake_on``, ...).
        calls: Number of events of this kind processed.
        seconds: Total wall-clock spent in their handlers.
    """

    kind: str
    calls: int
    seconds: float

    @property
    def mean_us(self) -> float:
        """Mean handler latency in microseconds."""
        if self.calls == 0:
            return 0.0
        return self.seconds / self.calls * 1e6


def kernel_stats(result: Any) -> Tuple[KernelStat, ...]:
    """Kernel-timer rows of a run, hottest first.

    Reads ``result.observability["sim_core"]["kernel_timers"]`` — the
    section a :class:`~repro.cluster.simulator.ClusterSimulator` built
    with ``kernel_timers=True`` records (it survives the codec round
    trip, so cached and trace-exported results keep it). Returns an
    empty tuple for untimed runs.
    """
    observability = result.observability or {}
    timers = (observability.get("sim_core") or {}).get("kernel_timers")
    if not timers:
        return ()
    return tuple(
        KernelStat(
            kind=kind,
            calls=int(cell["calls"]),
            seconds=float(cell["seconds"]),
        )
        for kind, cell in timers.items()
    )


def profile_kernels(spec: Any) -> Tuple[Any, Tuple[KernelStat, ...]]:
    """Execute one :class:`~repro.exec.runspec.RunSpec` with kernel
    timers enabled.

    Returns:
        ``(result, stats)`` — the run's :class:`~repro.cluster.metrics
        .SimulationResult` (bit-identical to an untimed run except for
        the extra ``sim_core`` observability section) and its
        :func:`kernel_stats`.
    """
    # Imported here: repro.exec.__init__ loads this module, and the
    # spec-execution machinery drags in the whole cluster package.
    from repro.cluster.simulator import ClusterSimulator
    from repro.exec import traces

    requests = traces.requests_for(spec.trace_key())
    result = ClusterSimulator(
        spec.config, spec.policy.build(), kernel_timers=True
    ).run(requests, spec.duration_s)
    return result, kernel_stats(result)


@contextmanager
def timed(label: str = "elapsed") -> Iterator[Callable[[], float]]:
    """Wall-clock a block; yields a callable returning seconds so far.

    >>> with timed() as elapsed:
    ...     do_work()
    >>> elapsed()  # seconds, frozen at block exit
    """
    start = time.perf_counter()
    end: List[float] = []

    def elapsed() -> float:
        return (end[0] if end else time.perf_counter()) - start

    try:
        yield elapsed
    finally:
        end.append(time.perf_counter())
