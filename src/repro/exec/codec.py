"""JSON (de)serialization of :class:`SimulationResult`.

Backs the on-disk layer of the run memo cache. Floats survive the round
trip exactly (``json`` emits shortest-round-trip representations), so a
result loaded from disk is value-identical to the freshly simulated one
— which keeps cached sweeps bit-identical to uncached ones.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Dict

import numpy as np

from repro.analysis.timeseries import TimeSeries
from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.errors import ConfigurationError
from repro.faults.report import RobustnessReport
from repro.powerfail.protection import PowerFailReport
from repro.workloads.spec import Priority

#: Bump when the serialized layout changes; mismatched entries are
#: treated as cache misses rather than decoded wrongly. Version 2 adds
#: the ``observability`` metrics snapshot. Version 3 extends
#: ``observability`` with the live layer's sections — ``incidents`` /
#: ``alerts`` (see :mod:`repro.obs.alerts`) and ``stream``
#: (:class:`~repro.obs.stream.StreamMonitor` probe values) — and makes
#: gauges nullable (explicit unset state). Version 4 adds the causal
#: layer's ``spans`` / ``attribution`` sections
#: (:mod:`repro.obs.spans`, :mod:`repro.obs.attribution`). Version 5
#: adds the ``powerfail`` section — the power-delivery protection
#: ledger of :mod:`repro.powerfail` (trips, shedding, staged
#: re-energization, exact energy conservation). Version 6 adds the
#: ``sim_core`` observability section (per-event-kind kernel timers of
#: the struct-of-arrays event loop, recorded when
#: ``ClusterSimulator(kernel_timers=True)``).
SCHEMA_VERSION = 6

#: Schema versions :func:`result_from_dict` can decode. Versions 2-4
#: differ by which ``observability`` sections exist and by the absent
#: ``powerfail`` section (decoded as ``None`` — exactly what those
#: runs produced, since the protection layer did not exist); version 5
#: lacks only the optional ``sim_core`` section. Old cache entries and
#: the checked-in v5 golden snapshots stay loadable.
COMPATIBLE_SCHEMAS = frozenset({2, 3, 4, 5, SCHEMA_VERSION})


def _metrics_to_dict(metrics: PriorityMetrics) -> Dict[str, Any]:
    return {
        "latencies": list(metrics.latencies),
        "served": metrics.served,
        "dropped": metrics.dropped,
    }


def _metrics_from_dict(data: Dict[str, Any]) -> PriorityMetrics:
    return PriorityMetrics(
        latencies=[float(v) for v in data["latencies"]],
        served=int(data["served"]),
        dropped=int(data["dropped"]),
    )


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Encode a simulation result as JSON-serializable primitives."""
    robustness = None
    if result.robustness is not None:
        robustness = {
            f.name: getattr(result.robustness, f.name)
            for f in fields(result.robustness)
        }
    powerfail = None
    if result.powerfail is not None:
        powerfail = {
            f.name: getattr(result.powerfail, f.name)
            for f in fields(result.powerfail)
        }
    return {
        "schema": SCHEMA_VERSION,
        "per_priority": {
            priority.value: _metrics_to_dict(metrics)
            for priority, metrics in result.per_priority.items()
        },
        "power_series": {
            "start": result.power_series.start,
            "interval": result.power_series.interval,
            "values": result.power_series.values.tolist(),
        },
        "provisioned_power_w": result.provisioned_power_w,
        "power_brake_events": result.power_brake_events,
        "capping_actions": result.capping_actions,
        "duration_s": result.duration_s,
        "per_workload": {
            name: _metrics_to_dict(metrics)
            for name, metrics in result.per_workload.items()
        },
        "total_energy_j": result.total_energy_j,
        "robustness": robustness,
        "observability": result.observability,
        "powerfail": powerfail,
    }


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Decode a result encoded by :func:`result_to_dict`.

    Raises:
        ConfigurationError: On a schema-version mismatch.
    """
    if data.get("schema") not in COMPATIBLE_SCHEMAS:
        raise ConfigurationError(
            f"cached result schema {data.get('schema')!r} is not one of "
            f"{sorted(COMPATIBLE_SCHEMAS)}"
        )
    series = data["power_series"]
    robustness = None
    if data.get("robustness") is not None:
        robustness = RobustnessReport(**data["robustness"])
    powerfail = None
    if data.get("powerfail") is not None:
        powerfail = PowerFailReport(**data["powerfail"])
    return SimulationResult(
        per_priority={
            Priority(value): _metrics_from_dict(metrics)
            for value, metrics in data["per_priority"].items()
        },
        power_series=TimeSeries(
            start=float(series["start"]),
            interval=float(series["interval"]),
            values=np.asarray(series["values"], dtype=np.float64),
        ),
        provisioned_power_w=float(data["provisioned_power_w"]),
        power_brake_events=int(data["power_brake_events"]),
        capping_actions=int(data["capping_actions"]),
        duration_s=float(data["duration_s"]),
        per_workload={
            name: _metrics_from_dict(metrics)
            for name, metrics in data["per_workload"].items()
        },
        total_energy_j=float(data["total_energy_j"]),
        robustness=robustness,
        observability=data.get("observability"),
        powerfail=powerfail,
    )
