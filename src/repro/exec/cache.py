"""The content-hash-keyed run memo cache.

Keys are :meth:`RunSpec.digest` values, so any two sweeps that describe
the same run — the shared uncapped baseline, a duplicated grid point, a
re-executed benchmark — hit the same entry regardless of who asks.
The in-memory layer is always on; pass ``cache_dir`` to add an on-disk
layer that survives processes (invalidate it by deleting the directory;
digests also embed a schema version, so stale entries after an
incompatible change are ignored, not mis-read).

The disk layer holds two kinds of entries: JSON results (one
``<digest>.json`` per run) and opaque binary blobs (``<digest>.bin`` —
pickled simulation checkpoints from :mod:`repro.exec.incremental`).
Checkpoints make unbounded growth a real problem, so the disk layer is
bounded: ``max_disk_bytes`` caps the total footprint with
least-recently-used eviction (access order is tracked per process and
seeded from file mtimes on startup), and the evict/byte counters are
part of :attr:`stats`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.cluster.metrics import SimulationResult
from repro.errors import ConfigurationError
from repro.exec.codec import result_from_dict, result_to_dict


class RunCache:
    """Two-layer (memory + optional bounded disk) run memo cache.

    Attributes:
        cache_dir: On-disk layer location, or ``None`` for memory-only.
        max_disk_bytes: Disk-layer byte budget (``None`` = unbounded).
            Writing an entry that would exceed it evicts
        least-recently-used entries first; an entry larger than the
            whole budget is simply not written to disk.
        hits: Lookups answered from memory.
        disk_hits: Lookups answered from disk (then promoted to memory).
        misses: Lookups that found nothing.
        stores: Results written into the cache.
        evictions: Disk entries removed to respect ``max_disk_bytes``.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        max_disk_bytes: Optional[int] = None,
    ) -> None:
        if max_disk_bytes is not None and max_disk_bytes <= 0:
            raise ConfigurationError("max_disk_bytes must be positive")
        self._memory: Dict[str, SimulationResult] = {}
        self._blobs: Dict[str, bytes] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_disk_bytes = max_disk_bytes
        # LRU bookkeeping for the disk layer: path -> size, in
        # least-recently-used-first order (dict preserves insertion
        # order; touches re-insert at the end).
        self._disk_lru: Dict[Path, int] = {}
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            # Seed the LRU with whatever a previous process left behind,
            # oldest-modified first, so a fresh process still evicts the
            # stalest entries.
            entries = []
            for path in self.cache_dir.iterdir():
                if path.suffix in (".json", ".bin"):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, path, stat.st_size))
            for _mtime, path, size in sorted(entries, key=lambda e: e[0]):
                self._disk_lru[path] = size

    def _path(self, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{digest}.json"

    def _blob_path(self, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{digest}.bin"

    # ------------------------------------------------------------------
    # Disk-layer LRU accounting
    # ------------------------------------------------------------------
    @property
    def disk_bytes(self) -> int:
        """Current tracked disk-layer footprint in bytes."""
        return sum(self._disk_lru.values())

    def _touch(self, path: Path, size: int) -> None:
        self._disk_lru.pop(path, None)
        self._disk_lru[path] = size

    def _touch_if_tracked(self, path: Path) -> None:
        """Refresh recency for a memory-layer hit backed by a disk file."""
        size = self._disk_lru.get(path)
        if size is not None:
            self._touch(path, size)

    def _forget(self, path: Path) -> None:
        self._disk_lru.pop(path, None)

    def _write_bounded(self, path: Path, data: bytes) -> None:
        """Atomically write one disk entry, evicting LRU to fit."""
        budget = self.max_disk_bytes
        if budget is not None:
            if len(data) > budget:
                # Larger than the whole budget: keep it in memory only.
                self._forget(path)
                path.unlink(missing_ok=True)
                return
            self._forget(path)  # overwrite does not evict itself
            while self._disk_lru and self.disk_bytes + len(data) > budget:
                victim, _size = next(iter(self._disk_lru.items()))
                self._disk_lru.pop(victim)
                victim.unlink(missing_ok=True)
                self.evictions += 1
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        self._touch(path, len(data))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[SimulationResult]:
        """Look a digest up; ``None`` on a miss."""
        result = self._memory.get(digest)
        if result is not None:
            self.hits += 1
            if self.cache_dir is not None:
                self._touch_if_tracked(self._path(digest))
            return result
        if self.cache_dir is not None:
            path = self._path(digest)
            if path.exists():
                try:
                    data = json.loads(path.read_text())
                    result = result_from_dict(data)
                except (ValueError, KeyError, TypeError):
                    result = None  # stale/corrupt entry: treat as a miss
                if result is not None:
                    self._memory[digest] = result
                    self._touch(path, path.stat().st_size)
                    self.disk_hits += 1
                    return result
        self.misses += 1
        return None

    def put(self, digest: str, result: SimulationResult) -> None:
        """Store a result under its digest (memory, then disk if on)."""
        self._memory[digest] = result
        self.stores += 1
        if self.cache_dir is not None:
            self._write_bounded(
                self._path(digest),
                json.dumps(result_to_dict(result)).encode("utf-8"),
            )

    # ------------------------------------------------------------------
    # Blobs (opaque bytes: checkpoint snapshots, tapes)
    # ------------------------------------------------------------------
    def get_blob(self, digest: str) -> Optional[bytes]:
        """Look an opaque blob up; ``None`` on a miss."""
        blob = self._blobs.get(digest)
        if blob is not None:
            self.hits += 1
            if self.cache_dir is not None:
                self._touch_if_tracked(self._blob_path(digest))
            return blob
        if self.cache_dir is not None:
            path = self._blob_path(digest)
            if path.exists():
                try:
                    blob = path.read_bytes()
                except OSError:
                    blob = None
                if blob is not None:
                    self._blobs[digest] = blob
                    self._touch(path, len(blob))
                    self.disk_hits += 1
                    return blob
        self.misses += 1
        return None

    def put_blob(self, digest: str, blob: bytes) -> None:
        """Store opaque bytes under a digest (memory, then disk if on)."""
        self._blobs[digest] = blob
        self.stores += 1
        if self.cache_dir is not None:
            self._write_bounded(self._blob_path(digest), blob)

    # ------------------------------------------------------------------
    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer (and the disk layer when ``disk=True``)."""
        self._memory.clear()
        self._blobs.clear()
        if disk and self.cache_dir is not None:
            for path in self.cache_dir.glob("*.json"):
                path.unlink()
                self._forget(path)
            for path in self.cache_dir.glob("*.bin"):
                path.unlink()
                self._forget(path)

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, digest: str) -> bool:
        return digest in self._memory

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/store/evict counters as a plain dict."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "entries": len(self._memory),
            "blobs": len(self._blobs),
            "disk_bytes": self.disk_bytes,
        }
