"""The content-hash-keyed run memo cache.

Keys are :meth:`RunSpec.digest` values, so any two sweeps that describe
the same run — the shared uncapped baseline, a duplicated grid point, a
re-executed benchmark — hit the same entry regardless of who asks.
The in-memory layer is always on; pass ``cache_dir`` to add a
JSON-per-entry on-disk layer that survives processes (invalidate it by
deleting the directory; digests also embed a schema version, so stale
entries after an incompatible change are ignored, not mis-read).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.cluster.metrics import SimulationResult
from repro.exec.codec import result_from_dict, result_to_dict


class RunCache:
    """Two-layer (memory + optional disk) memo cache for run results.

    Attributes:
        cache_dir: On-disk layer location, or ``None`` for memory-only.
        hits: Lookups answered from memory.
        disk_hits: Lookups answered from disk (then promoted to memory).
        misses: Lookups that found nothing.
        stores: Results written into the cache.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self._memory: Dict[str, SimulationResult] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{digest}.json"

    def get(self, digest: str) -> Optional[SimulationResult]:
        """Look a digest up; ``None`` on a miss."""
        result = self._memory.get(digest)
        if result is not None:
            self.hits += 1
            return result
        if self.cache_dir is not None:
            path = self._path(digest)
            if path.exists():
                try:
                    data = json.loads(path.read_text())
                    result = result_from_dict(data)
                except (ValueError, KeyError, TypeError):
                    result = None  # stale/corrupt entry: treat as a miss
                if result is not None:
                    self._memory[digest] = result
                    self.disk_hits += 1
                    return result
        self.misses += 1
        return None

    def put(self, digest: str, result: SimulationResult) -> None:
        """Store a result under its digest (memory, then disk if on)."""
        self._memory[digest] = result
        self.stores += 1
        if self.cache_dir is not None:
            path = self._path(digest)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(result_to_dict(result)))
            os.replace(tmp, path)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer (and the disk layer when ``disk=True``)."""
        self._memory.clear()
        if disk and self.cache_dir is not None:
            for path in self.cache_dir.glob("*.json"):
                path.unlink()

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, digest: str) -> bool:
        return digest in self._memory

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters as a plain dict."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self._memory),
        }
