"""Out-of-band GPU power brake.

"Power brake is a faster OOB lever that brings all GPUs down to almost a
halt within 5 seconds, while reclaiming substantial power" (Section 3.2).
Under POLCA, the brake is the last-resort safety net whose activation count
is itself a reported metric (Figure 18). The brake forces the SM clock to
288 MHz (Table 5) after an engage latency, and holds it until released.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.gpu.specs import GpuSpec

#: OOB power-brake engage latency from Table 2 ("Power brake latency: 5s").
DEFAULT_BRAKE_LATENCY_S = 5.0


class BrakeState(enum.Enum):
    """Lifecycle of the power brake."""

    RELEASED = "released"
    ENGAGING = "engaging"
    ENGAGED = "engaged"


@dataclass
class PowerBrake:
    """Latency-aware power-brake state machine for one GPU (or one server).

    Attributes:
        spec: GPU whose brake clock applies.
        latency_s: Seconds between the engage command and the clock drop.
    """

    spec: GpuSpec
    latency_s: float = DEFAULT_BRAKE_LATENCY_S
    _state: BrakeState = field(init=False, default=BrakeState.RELEASED)
    _engage_at: Optional[float] = field(init=False, default=None)
    engage_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError("brake latency cannot be negative")

    def engage(self, now: float) -> None:
        """Command the brake at time ``now``; it takes effect after latency.

        Engaging an already engaging/engaged brake is a no-op — the brake
        count (Figure 18's metric) counts distinct engage events only.
        """
        if self._state is not BrakeState.RELEASED:
            return
        self._state = BrakeState.ENGAGING
        self._engage_at = now + self.latency_s
        self.engage_count += 1

    def release(self) -> None:
        """Release the brake immediately."""
        self._state = BrakeState.RELEASED
        self._engage_at = None

    def state(self, now: float) -> BrakeState:
        """Return the brake state at time ``now``, advancing ENGAGING."""
        if self._state is BrakeState.ENGAGING:
            assert self._engage_at is not None
            if now >= self._engage_at:
                self._state = BrakeState.ENGAGED
        return self._state

    def is_engaged(self, now: float) -> bool:
        """True once the brake has physically taken effect."""
        return self.state(now) is BrakeState.ENGAGED

    def clock_ceiling_mhz(self, now: float) -> float:
        """SM clock ceiling the brake imposes at time ``now``."""
        if self.is_engaged(now):
            return self.spec.brake_clock_mhz
        return self.spec.max_sm_clock_mhz
