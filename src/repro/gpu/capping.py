"""Reactive power capping, as implemented by GPU firmware.

Power capping "limits GPU power consumption to a software-specified value by
reactively throttling frequencies" (Section 3.2). Because the control loop
only acts *after* observing an over-cap sample, fast prompt-phase spikes can
briefly overshoot the cap (Figure 9b shows peaks above the 325 W line), and
power troughs are untouched (Insight 3). This module models that loop as a
sampled proportional controller over the DVFS curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.gpu.power import GpuPowerModel


@dataclass
class ReactivePowerCap:
    """Sampled reactive power-cap controller for one GPU.

    The controller observes instantaneous power every ``sample_interval``
    seconds. When the observation exceeds the cap it steps the throttle
    clock toward the steady-state clock that meets the cap; when power falls
    well below the cap it relaxes the throttle back toward the maximum
    clock. The single-step convergence toward the target (rather than an
    instantaneous jump) is what lets short spikes overshoot.

    Attributes:
        model: The DVFS power model to invert.
        cap_w: The configured cap in watts (defaults to TDP).
        sample_interval: Firmware control-loop period in seconds. NVIDIA's
            in-band loop runs at tens of milliseconds; 50 ms by default.
        convergence: Fraction of the gap to the target clock closed per
            control step, in ``(0, 1]``.
        release_margin_w: Power must fall this far below the cap before the
            throttle is relaxed, providing hysteresis.
    """

    model: GpuPowerModel
    cap_w: float = 0.0
    sample_interval: float = 0.05
    convergence: float = 0.5
    release_margin_w: float = 10.0
    _throttle_clock_mhz: float = field(init=False, default=0.0)
    _next_sample_time: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.cap_w == 0.0:
            self.cap_w = self.model.spec.tdp_w
        self.model.spec.validate_power_cap(self.cap_w)
        if not 0.0 < self.convergence <= 1.0:
            raise ConfigurationError(
                f"convergence {self.convergence} outside (0, 1]"
            )
        if self.sample_interval <= 0:
            raise ConfigurationError("sample_interval must be positive")
        self._throttle_clock_mhz = self.model.spec.max_sm_clock_mhz

    @property
    def throttle_clock_mhz(self) -> float:
        """The clock ceiling currently imposed by the cap controller."""
        return self._throttle_clock_mhz

    def reset(self) -> None:
        """Clear controller state (throttle fully released)."""
        self._throttle_clock_mhz = self.model.spec.max_sm_clock_mhz
        self._next_sample_time = 0.0

    def observe(self, now: float, activity: float) -> float:
        """Advance the control loop to time ``now`` and return power drawn.

        Args:
            now: Simulation time in seconds; must be non-decreasing across
                calls (the controller keeps its own next-sample schedule).
            activity: Current workload activity in ``[0, 1]``.

        Returns:
            The instantaneous power in watts at the *current* throttle
            clock — i.e. before any correction this sample triggers, which
            is what produces the realistic overshoot.
        """
        power_now = self.model.power(activity, self._throttle_clock_mhz)
        if now < self._next_sample_time:
            return power_now
        self._next_sample_time = now + self.sample_interval
        if power_now > self.cap_w:
            target = self.model.throttle_clock_for_cap(activity, self.cap_w)
            gap = self._throttle_clock_mhz - target
            self._throttle_clock_mhz -= self.convergence * gap
        elif power_now < self.cap_w - self.release_margin_w:
            spec = self.model.spec
            gap = spec.max_sm_clock_mhz - self._throttle_clock_mhz
            self._throttle_clock_mhz += self.convergence * gap
        return power_now

    def steady_state_power(self, activity: float) -> float:
        """Power after the loop has fully converged for a sustained phase."""
        clock = self.model.throttle_clock_for_cap(activity, self.cap_w)
        return self.model.power(activity, clock)
