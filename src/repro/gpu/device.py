"""A simulated GPU combining the DVFS model with every control knob.

:class:`SimulatedGpu` is the device abstraction the rest of the library
talks to. It layers, in priority order, the power brake (OOB, 288 MHz), a
frequency lock (in-band or OOB), and a reactive power cap on top of the
DVFS power curve, and exposes the performance scale factor that the
roofline latency model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.gpu.brake import PowerBrake
from repro.gpu.capping import ReactivePowerCap
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import GpuSpec


@dataclass
class SimulatedGpu:
    """One GPU with frequency locking, power capping, and a power brake.

    Attributes:
        spec: Static device description.
    """

    spec: GpuSpec
    power_model: GpuPowerModel = field(init=False)
    brake: PowerBrake = field(init=False)
    _frequency_lock_mhz: Optional[float] = field(init=False, default=None)
    _power_cap: Optional[ReactivePowerCap] = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.power_model = GpuPowerModel(self.spec)
        self.brake = PowerBrake(self.spec)

    # ------------------------------------------------------------------
    # Knobs
    # ------------------------------------------------------------------
    def lock_frequency(self, sm_clock_mhz: float) -> None:
        """Lock the SM clock ("frequency locking", Section 3.2).

        Raises:
            FrequencyError: If the clock is outside the lockable range.
        """
        self._frequency_lock_mhz = self.spec.validate_clock(sm_clock_mhz)

    def unlock_frequency(self) -> None:
        """Remove any frequency lock; the GPU may boost to the max clock."""
        self._frequency_lock_mhz = None

    @property
    def frequency_lock_mhz(self) -> Optional[float]:
        """Currently locked SM clock, or ``None`` when unlocked."""
        return self._frequency_lock_mhz

    def set_power_cap(self, cap_w: float) -> None:
        """Enable the reactive power cap at ``cap_w`` watts.

        Raises:
            PowerCapError: If the cap is outside the configurable range.
        """
        self.spec.validate_power_cap(cap_w)
        self._power_cap = ReactivePowerCap(self.power_model, cap_w=cap_w)

    def clear_power_cap(self) -> None:
        """Return the power cap to the default (TDP, effectively off)."""
        self._power_cap = None

    @property
    def power_cap_w(self) -> Optional[float]:
        """Configured power cap in watts, or ``None`` at the TDP default."""
        if self._power_cap is None:
            return None
        return self._power_cap.cap_w

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def effective_clock_mhz(self, now: float, activity: float = 1.0) -> float:
        """SM clock after applying brake, lock, and cap (most restrictive).

        The brake dominates everything; otherwise the clock is the minimum
        of the frequency lock and the power-cap throttle state.
        """
        ceiling = self.brake.clock_ceiling_mhz(now)
        if ceiling == self.spec.brake_clock_mhz:
            return ceiling
        clock = self.spec.max_sm_clock_mhz
        if self._frequency_lock_mhz is not None:
            clock = min(clock, self._frequency_lock_mhz)
        if self._power_cap is not None:
            steady = self.power_model.throttle_clock_for_cap(
                activity, self._power_cap.cap_w
            )
            clock = min(clock, steady)
        return clock

    def power(self, now: float, activity: float) -> float:
        """Instantaneous power in watts for the given workload activity.

        When a power cap is active this advances the reactive controller,
        so consecutive calls with increasing ``now`` trace the realistic
        overshoot-then-converge trajectory of Figure 9b. Frequency locks
        and the brake apply proactively.
        """
        if not 0.0 <= activity <= 1.0:
            raise ConfigurationError(f"activity {activity} outside [0, 1]")
        if self.brake.is_engaged(now):
            return self.power_model.power(activity, self.spec.brake_clock_mhz)
        if self._frequency_lock_mhz is not None:
            locked = self.power_model.power(activity, self._frequency_lock_mhz)
            if self._power_cap is not None:
                return min(locked, self._power_cap.observe(now, activity))
            return locked
        if self._power_cap is not None:
            return self._power_cap.observe(now, activity)
        return self.power_model.power(activity, self.spec.max_sm_clock_mhz)

    def performance_scale(
        self, compute_fraction: float, now: float = 0.0, activity: float = 1.0
    ) -> float:
        """Throughput multiplier in ``(0, 1]`` at the current clock.

        A phase that is ``compute_fraction`` compute-bound and
        ``1 - compute_fraction`` bandwidth-bound slows down as::

            scale = 1 / ((1 - c) + c * f_max / f)

        i.e. the compute portion stretches inversely with clock while the
        bandwidth portion is clock-insensitive. This is the mechanism
        behind the paper's superlinear power-vs-performance trade-off
        (Insight 7): token phases (small ``c``) barely slow down while the
        prompt-phase peak power falls with the clock.

        Raises:
            ConfigurationError: If ``compute_fraction`` is outside [0, 1].
        """
        if not 0.0 <= compute_fraction <= 1.0:
            raise ConfigurationError(
                f"compute_fraction {compute_fraction} outside [0, 1]"
            )
        clock = self.effective_clock_mhz(now, activity)
        ratio = self.spec.max_sm_clock_mhz / clock
        return 1.0 / ((1.0 - compute_fraction) + compute_fraction * ratio)
