"""Simulated GPU substrate: device specs, DVFS power model, knobs, counters.

The paper characterizes NVIDIA A100 GPUs under frequency locking, power
capping, and power brakes (Sections 3-4). This package replaces the physical
device with an analytical model that preserves the behaviours those
experiments depend on:

* a DVFS power curve ``P = P_idle + activity * P_dyn * (f / f_max)^alpha``
  whose dynamic range spans idle (~20% of TDP) to transient peaks *above*
  TDP (Insights 1 and 4);
* *reactive* power capping that throttles only after observing an
  over-threshold sample, letting short prompt-phase spikes overshoot the
  cap (Figure 9b);
* frequency locking that bounds power proactively at a performance cost
  proportional to the workload's compute-boundedness (Figure 10);
* a power brake that forces the SM clock to 288 MHz within seconds
  (Table 5); and
* synthetic performance counters with the prompt/token correlation
  structure of Figure 7.
"""

from repro.gpu.specs import (
    A100_40GB,
    A100_80GB,
    H100_80GB,
    GpuSpec,
    gpu_spec,
)
from repro.gpu.power import GpuPowerModel
from repro.gpu.capping import ReactivePowerCap
from repro.gpu.brake import BrakeState, PowerBrake
from repro.gpu.counters import CounterSynthesizer, GpuCounterTrace
from repro.gpu.device import SimulatedGpu

__all__ = [
    "A100_40GB",
    "A100_80GB",
    "H100_80GB",
    "BrakeState",
    "CounterSynthesizer",
    "GpuCounterTrace",
    "GpuPowerModel",
    "GpuSpec",
    "PowerBrake",
    "ReactivePowerCap",
    "SimulatedGpu",
    "gpu_spec",
]
