"""Datacenter GPU specifications used by the power and performance models.

The numbers come from public NVIDIA datasheets and from values quoted in the
paper itself: the A100's 400 W TDP, 1410 MHz maximum SM clock, 1275 MHz base
clock ("the base frequency of A100", Section 6.5), the 288 MHz power-brake
clock (Table 5), and the 300-400 W configurable power-cap range and
1.1-1.4 GHz frequency-lock range used in the characterization (Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import FrequencyError, ModelNotFoundError, PowerCapError
from repro.units import gigabytes, gigabytes_per_second, teraflops


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a datacenter GPU model.

    Attributes:
        name: Marketing name, e.g. ``"A100-80GB"``.
        tdp_w: Thermal design power in watts; the default power cap.
        idle_w: Power drawn with no work scheduled. The paper observes
            training troughs at ~20% of TDP for Flan-T5, which corresponds
            to GPU idle power.
        transient_peak_w: Maximum instantaneous power. The paper observes
            peaks *above* TDP (Insights 1 and 4); power capping is reactive
            so short excursions beyond even the cap are possible.
        max_sm_clock_mhz: Maximum (boost) SM clock.
        base_sm_clock_mhz: Base SM clock; POLCA's T1 capping target.
        min_sm_clock_mhz: Lowest lockable SM clock.
        brake_clock_mhz: SM clock forced by the OOB power brake.
        min_power_cap_w / max_power_cap_w: Software power-cap range.
        memory_bytes: HBM capacity in bytes.
        memory_bandwidth: HBM bandwidth in bytes/second.
        peak_flops: Peak dense throughput in FLOP/s per datatype name
            (``"fp32"``, ``"fp16"``, ``"int8"``), at the maximum SM clock.
        dvfs_alpha: Exponent of the dynamic-power-vs-frequency curve,
            ``P_dyn ∝ (f / f_max)^alpha``. Values slightly above 1 reflect
            that voltage scaling is limited in the upper DVFS range, which
            matches the near-linear peak-power reduction the paper measures
            between 1.1 and 1.4 GHz (Figure 10).
    """

    name: str
    tdp_w: float
    idle_w: float
    transient_peak_w: float
    max_sm_clock_mhz: float
    base_sm_clock_mhz: float
    min_sm_clock_mhz: float
    brake_clock_mhz: float
    min_power_cap_w: float
    max_power_cap_w: float
    memory_bytes: float
    memory_bandwidth: float
    peak_flops: Dict[str, float] = field(default_factory=dict)
    dvfs_alpha: float = 1.35

    def __post_init__(self) -> None:
        if not 0 < self.idle_w < self.tdp_w <= self.transient_peak_w:
            raise PowerCapError(
                f"{self.name}: require 0 < idle < TDP <= transient peak, got "
                f"idle={self.idle_w}, tdp={self.tdp_w}, "
                f"peak={self.transient_peak_w}"
            )
        ladder_ok = (
            0 < self.min_sm_clock_mhz
            <= self.base_sm_clock_mhz
            <= self.max_sm_clock_mhz
        )
        if not ladder_ok or not 0 < self.brake_clock_mhz < self.base_sm_clock_mhz:
            raise FrequencyError(f"{self.name}: inconsistent clock ladder")
        if not 0 < self.min_power_cap_w <= self.max_power_cap_w:
            raise PowerCapError(f"{self.name}: inconsistent power-cap range")

    @property
    def lockable_clock_range_mhz(self) -> Tuple[float, float]:
        """Inclusive (min, max) range for frequency locking."""
        return (self.min_sm_clock_mhz, self.max_sm_clock_mhz)

    def validate_clock(self, sm_clock_mhz: float) -> float:
        """Return ``sm_clock_mhz`` if lockable (or the brake clock).

        Raises:
            FrequencyError: If the clock is outside the supported set.
        """
        if sm_clock_mhz == self.brake_clock_mhz:
            return sm_clock_mhz
        lo, hi = self.lockable_clock_range_mhz
        if not lo <= sm_clock_mhz <= hi:
            raise FrequencyError(
                f"{self.name}: clock {sm_clock_mhz} MHz outside [{lo}, {hi}]"
            )
        return sm_clock_mhz

    def validate_power_cap(self, cap_w: float) -> float:
        """Return ``cap_w`` if it lies in the configurable cap range.

        Raises:
            PowerCapError: If the cap is outside the supported range.
        """
        if not self.min_power_cap_w <= cap_w <= self.max_power_cap_w:
            raise PowerCapError(
                f"{self.name}: power cap {cap_w} W outside "
                f"[{self.min_power_cap_w}, {self.max_power_cap_w}]"
            )
        return cap_w


#: NVIDIA A100-40GB SXM (training machine in the paper, Section 3.4).
A100_40GB = GpuSpec(
    name="A100-40GB",
    tdp_w=400.0,
    idle_w=80.0,
    transient_peak_w=460.0,
    max_sm_clock_mhz=1410.0,
    base_sm_clock_mhz=1275.0,
    min_sm_clock_mhz=210.0,
    brake_clock_mhz=288.0,
    min_power_cap_w=100.0,
    max_power_cap_w=400.0,
    memory_bytes=gigabytes(40),
    memory_bandwidth=gigabytes_per_second(1555),
    peak_flops={
        "fp32": teraflops(19.5),
        "fp16": teraflops(312.0),
        "int8": teraflops(624.0),
    },
)

#: NVIDIA A100-80GB SXM (inference machine in the paper, Section 3.4).
A100_80GB = GpuSpec(
    name="A100-80GB",
    tdp_w=400.0,
    idle_w=80.0,
    transient_peak_w=465.0,
    max_sm_clock_mhz=1410.0,
    base_sm_clock_mhz=1275.0,
    min_sm_clock_mhz=210.0,
    brake_clock_mhz=288.0,
    min_power_cap_w=100.0,
    max_power_cap_w=400.0,
    memory_bytes=gigabytes(80),
    memory_bandwidth=gigabytes_per_second(2039),
    peak_flops={
        "fp32": teraflops(19.5),
        "fp16": teraflops(312.0),
        "int8": teraflops(624.0),
    },
)

#: NVIDIA H100-80GB SXM, mentioned by the paper's discussion (Section 6.7)
#: as the next-generation part (DGX-H100, FP8 engine). Included to support
#: the "Beyond LLMs / newer GPUs" extension experiments.
H100_80GB = GpuSpec(
    name="H100-80GB",
    tdp_w=700.0,
    idle_w=110.0,
    transient_peak_w=790.0,
    max_sm_clock_mhz=1980.0,
    base_sm_clock_mhz=1590.0,
    min_sm_clock_mhz=210.0,
    brake_clock_mhz=345.0,
    min_power_cap_w=200.0,
    max_power_cap_w=700.0,
    memory_bytes=gigabytes(80),
    memory_bandwidth=gigabytes_per_second(3350),
    peak_flops={
        "fp32": teraflops(67.0),
        "fp16": teraflops(990.0),
        "int8": teraflops(1980.0),
        "fp8": teraflops(1980.0),
    },
)

_SPECS: Dict[str, GpuSpec] = {
    spec.name: spec for spec in (A100_40GB, A100_80GB, H100_80GB)
}


def gpu_spec(name: str) -> GpuSpec:
    """Look up a GPU spec by name.

    Raises:
        ModelNotFoundError: If the name is unknown.
    """
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise ModelNotFoundError(f"unknown GPU {name!r}; known: {known}") from None
