"""Synthetic GPU performance counters with Figure 7's correlation structure.

Figure 7 of the paper computes pairwise Pearson correlations among seven
DCGM counters — power, GPU utilization, memory utilization, SM activity,
tensor-core activity, PCIe TX, and PCIe RX — separately for the prompt and
token phases of BLOOM inference. Its qualitative findings:

* **Prompt phase**: power is highly correlated with SM activity and
  tensor-core activity (the phase is compute-bound on the tensor cores)
  and *inversely* correlated with memory utilization; PCIe traffic is only
  weakly related to anything.
* **Token phase**: counters are generally uncorrelated with each other and
  power is lower; each counter hovers around a stable level with
  independent jitter (the phase is bandwidth-bound and steady).

We synthesize counter traces from a per-phase latent "compute intensity"
process, with phase-dependent loading factors chosen to reproduce exactly
that structure. The synthesizer also models the counter-lag artefact the
paper describes in Section 3.4 (interval-updated counters trail
instantaneous ones), plus the alignment step that removes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError

#: Counter names in the order Figure 7 displays them.
COUNTER_NAMES = (
    "power",
    "gpu_utilization",
    "memory_utilization",
    "sm_activity",
    "tensor_core_activity",
    "pcie_transmit",
    "pcie_receive",
)


@dataclass(frozen=True)
class GpuCounterTrace:
    """A set of synchronized counter traces for one inference phase.

    Attributes:
        phase: ``"prompt"`` or ``"token"``.
        interval: Sampling period in seconds (DCGM default: 100 ms).
        counters: Mapping of counter name to its sample array; all arrays
            share one length.
    """

    phase: str
    interval: float
    counters: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {name: arr.size for name, arr in self.counters.items()}
        if len(set(lengths.values())) > 1:
            raise ConfigurationError(f"counter length mismatch: {lengths}")

    def __len__(self) -> int:
        first = next(iter(self.counters.values()))
        return int(first.size)

    def lagged(self, counter: str, lag_samples: int) -> "GpuCounterTrace":
        """Return a copy with one counter delayed by ``lag_samples``.

        Models the interval-updated counters (SM activity, tensor core
        utilization) trailing instantaneous ones (power); Section 3.4.
        """
        if counter not in self.counters:
            raise ConfigurationError(f"unknown counter {counter!r}")
        if lag_samples < 0:
            raise ConfigurationError("lag must be non-negative")
        shifted = dict(self.counters)
        arr = shifted[counter]
        lagged = np.concatenate([np.full(lag_samples, arr[0]), arr])[: arr.size]
        shifted[counter] = lagged
        return GpuCounterTrace(self.phase, self.interval, shifted)

    def aligned(
        self, counter: str, reference: str = "power", max_lag: int = 10
    ) -> "GpuCounterTrace":
        """Undo a reporting lag by re-aligning ``counter`` to ``reference``.

        Implements the paper's "use counter value peaks to identify such lag
        and align them appropriately" (Section 3.4). The lag is estimated
        as the shift (within ``±max_lag`` samples) that maximizes the
        cross-correlation of the two counters' peaks, then undone.
        """
        if counter not in self.counters or reference not in self.counters:
            raise ConfigurationError("unknown counter for alignment")
        target = self.counters[counter] - self.counters[counter].mean()
        anchor = self.counters[reference] - self.counters[reference].mean()
        best_lag, best_score = 0, -np.inf
        n = target.size
        for candidate in range(-max_lag, max_lag + 1):
            if candidate >= 0:
                a, b = target[candidate:], anchor[: n - candidate]
            else:
                a, b = target[:candidate], anchor[-candidate:]
            if a.size < 2:
                continue
            score = float(np.dot(a, b))
            if score > best_score:
                best_score, best_lag = score, candidate
        lag = best_lag
        arr = self.counters[counter]
        if lag > 0:
            realigned = np.concatenate([arr[lag:], np.full(lag, arr[-1])])
        elif lag < 0:
            realigned = np.concatenate([np.full(-lag, arr[0]), arr[:lag]])
        else:
            realigned = arr.copy()
        shifted = dict(self.counters)
        shifted[counter] = realigned
        return GpuCounterTrace(self.phase, self.interval, shifted)


@dataclass
class CounterSynthesizer:
    """Generates phase-specific counter traces for correlation studies.

    Attributes:
        interval: DCGM sampling period in seconds.
        seed: RNG seed for reproducibility.
    """

    interval: float = 0.1
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("interval must be positive")
        self._rng = np.random.default_rng(self.seed)

    def prompt_phase(self, samples: int = 400) -> GpuCounterTrace:
        """Synthesize prompt-phase counters (compute-bound, correlated).

        A shared latent intensity drives power, GPU utilization, SM
        activity, and tensor-core activity; memory utilization loads
        *negatively* on the same latent (HBM sits relatively idle while
        tensor cores saturate); PCIe counters are independent noise.
        """
        self._check_samples(samples)
        rng = self._rng
        # Latent compute intensity: layer-by-layer ramps with bursts.
        t = np.arange(samples)
        latent = (
            0.75
            + 0.15 * np.sin(2 * np.pi * t / 40.0)
            + 0.10 * rng.standard_normal(samples)
        )
        noise = lambda scale: scale * rng.standard_normal(samples)  # noqa: E731
        counters = {
            "power": 330.0 + 120.0 * latent + noise(6.0),
            "gpu_utilization": np.clip(55.0 + 45.0 * latent + noise(4.0), 0, 100),
            "memory_utilization": np.clip(60.0 - 30.0 * latent + noise(4.0), 0, 100),
            "sm_activity": np.clip(30.0 + 65.0 * latent + noise(3.0), 0, 100),
            "tensor_core_activity": np.clip(20.0 + 70.0 * latent + noise(3.0), 0, 100),
            "pcie_transmit": np.abs(2.0 + noise(1.0)),
            "pcie_receive": np.abs(2.0 + noise(1.0)),
        }
        return GpuCounterTrace("prompt", self.interval, counters)

    def token_phase(self, samples: int = 400) -> GpuCounterTrace:
        """Synthesize token-phase counters (bandwidth-bound, uncorrelated).

        Every counter fluctuates independently around a stable level, and
        power sits well below the prompt-phase range — matching Figure 7's
        near-zero off-diagonal token-phase correlations and Insight 4.
        """
        self._check_samples(samples)
        rng = self._rng
        noise = lambda scale: scale * rng.standard_normal(samples)  # noqa: E731
        counters = {
            "power": 280.0 + noise(5.0),
            "gpu_utilization": np.clip(88.0 + noise(3.0), 0, 100),
            "memory_utilization": np.clip(72.0 + noise(3.0), 0, 100),
            "sm_activity": np.clip(45.0 + noise(3.0), 0, 100),
            "tensor_core_activity": np.clip(18.0 + noise(3.0), 0, 100),
            "pcie_transmit": np.abs(1.5 + noise(0.8)),
            "pcie_receive": np.abs(1.5 + noise(0.8)),
        }
        return GpuCounterTrace("token", self.interval, counters)

    @staticmethod
    def _check_samples(samples: int) -> None:
        if samples < 2:
            raise ConfigurationError("need at least two samples")
