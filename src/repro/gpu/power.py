"""Analytical DVFS power model for a single GPU.

The model is deliberately simple — a single activity factor times a
frequency-dependent dynamic-power term on top of idle power:

    P(activity, f) = P_idle + activity * (P_peak - P_idle) * (f / f_max)^alpha

where ``activity`` in ``[0, 1]`` expresses how hard the workload drives the
chip (1.0 = the most power-intensive phase observed, i.e. a long prompt
computation that transiently exceeds TDP), ``f`` is the SM clock, and
``alpha`` is mildly superlinear. This is sufficient to reproduce every
power-side effect the paper measures:

* prompt phases reach/exceed TDP while token phases sit at 60-75% of TDP
  (Figures 6 and 8) because their activities differ;
* frequency locking reduces peak power roughly linearly over the
  1.1-1.4 GHz window (Figure 10), because ``alpha`` is close to 1 in that
  limited-voltage-scaling range;
* power capping computes the steady-state throttle clock by inverting the
  same curve (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.specs import GpuSpec


@dataclass(frozen=True)
class GpuPowerModel:
    """Power as a function of workload activity and SM clock.

    Attributes:
        spec: The GPU being modelled.
    """

    spec: GpuSpec

    def power(self, activity: float, sm_clock_mhz: float) -> float:
        """Instantaneous power in watts.

        Args:
            activity: Workload intensity in ``[0, 1]``; 0 is idle and 1 is
                the most intense phase (prompt processing of a large batch),
                which draws the spec's transient peak at the maximum clock.
            sm_clock_mhz: Current SM clock in MHz.

        Raises:
            ConfigurationError: If ``activity`` is outside ``[0, 1]``.
        """
        if not 0.0 <= activity <= 1.0:
            raise ConfigurationError(f"activity {activity} outside [0, 1]")
        frequency_ratio = sm_clock_mhz / self.spec.max_sm_clock_mhz
        dynamic_range = self.spec.transient_peak_w - self.spec.idle_w
        scale = frequency_ratio ** self.spec.dvfs_alpha
        return self.spec.idle_w + activity * dynamic_range * scale

    def activity_for_power(self, power_w: float, sm_clock_mhz: float) -> float:
        """Invert :meth:`power` for a fixed clock.

        Returns the activity that would draw ``power_w`` at ``sm_clock_mhz``.
        Used when fitting phase activities to target power levels during
        model calibration.

        Raises:
            ConfigurationError: If the power is unreachable at this clock.
        """
        frequency_ratio = sm_clock_mhz / self.spec.max_sm_clock_mhz
        dynamic_range = self.spec.transient_peak_w - self.spec.idle_w
        scale = frequency_ratio ** self.spec.dvfs_alpha
        if scale <= 0:
            raise ConfigurationError("clock must be positive")
        activity = (power_w - self.spec.idle_w) / (dynamic_range * scale)
        tolerance = 1e-9
        if not -tolerance <= activity <= 1.0 + tolerance:
            raise ConfigurationError(
                f"power {power_w} W unreachable at {sm_clock_mhz} MHz "
                f"(implied activity {activity:.3f})"
            )
        return min(1.0, max(0.0, activity))

    def throttle_clock_for_cap(self, activity: float, cap_w: float) -> float:
        """Steady-state SM clock a reactive power cap converges to.

        If the uncapped power at the maximum clock is below ``cap_w`` the
        maximum clock is returned; otherwise the curve is inverted to the
        clock at which power exactly equals the cap, floored at the minimum
        lockable clock (caps below the idle-power floor cannot be honored
        by frequency throttling alone).
        """
        if self.power(activity, self.spec.max_sm_clock_mhz) <= cap_w:
            return self.spec.max_sm_clock_mhz
        dynamic_range = self.spec.transient_peak_w - self.spec.idle_w
        numerator = cap_w - self.spec.idle_w
        if numerator <= 0 or activity <= 0:
            return self.spec.min_sm_clock_mhz
        scale = numerator / (activity * dynamic_range)
        ratio = scale ** (1.0 / self.spec.dvfs_alpha)
        clock = ratio * self.spec.max_sm_clock_mhz
        return max(self.spec.min_sm_clock_mhz,
                   min(clock, self.spec.max_sm_clock_mhz))

    def peak_power_reduction(self, activity: float, sm_clock_mhz: float) -> float:
        """Fractional peak-power reduction from locking to ``sm_clock_mhz``.

        This is the x-axis of Figure 10: the relative drop in peak power
        versus running uncapped at the maximum clock, for a phase of the
        given activity.
        """
        uncapped = self.power(activity, self.spec.max_sm_clock_mhz)
        locked = self.power(activity, sm_clock_mhz)
        return (uncapped - locked) / uncapped
