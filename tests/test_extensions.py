"""The Section 5 design-implication extensions: phase-aware capping,
training-swing smoothing, and server derating."""

import pytest

from repro.core.phase_aware import compare_with_full_lock, phase_aware_outcome
from repro.datacenter.derating import plan_derating
from repro.errors import ConfigurationError, FrequencyError
from repro.models.registry import get_model
from repro.training.smoothing import overlapped_profile, smoothing_sweep


class TestPhaseAware:
    def test_saves_energy_for_small_latency(self):
        """Section 5.2: lower token-phase frequencies reduce power without
        substantially impacting performance."""
        outcome = phase_aware_outcome("BLOOM-176B", 1110.0)
        assert outcome.energy_saving > 0.08
        assert outcome.latency_increase < 0.06
        assert outcome.efficiency_gain > 1.5

    def test_peak_power_unchanged(self):
        outcome = phase_aware_outcome("BLOOM-176B", 1110.0)
        assert outcome.peak_power_unchanged

    def test_deeper_clock_saves_more_costs_more(self):
        shallow = phase_aware_outcome("BLOOM-176B", 1275.0)
        deep = phase_aware_outcome("BLOOM-176B", 1110.0)
        assert deep.energy_saving > shallow.energy_saving
        assert deep.latency_increase > shallow.latency_increase

    def test_comparison_with_full_lock(self):
        """Phase-aware: less latency, no peak reduction; full lock: more
        latency, real peak reduction — the design trade-off."""
        comparison = compare_with_full_lock("BLOOM-176B", 1110.0)
        assert comparison["phase_aware_latency_increase"] < \
            comparison["full_lock_latency_increase"]
        assert comparison["phase_aware_peak_reduction"] == 0.0
        assert comparison["full_lock_peak_reduction"] > 0.15

    def test_invalid_clock_rejected(self):
        with pytest.raises(FrequencyError):
            phase_aware_outcome("BLOOM-176B", 5000.0)

    def test_works_across_the_zoo(self):
        for name in ("Flan-T5-XXL", "GPT-NeoX-20B", "Llama2-70B"):
            outcome = phase_aware_outcome(name, 1110.0)
            assert 0.0 < outcome.energy_saving < 0.5


class TestSmoothing:
    def test_zero_overlap_is_identity(self):
        profile = get_model("GPT-NeoX-20B").training
        assert overlapped_profile(profile, 0.0) is profile

    def test_overlap_raises_trough_and_shortens_iteration(self):
        profile = get_model("GPT-NeoX-20B").training
        smoothed = overlapped_profile(profile, 0.5)
        assert smoothed.trough_activity > profile.trough_activity
        assert smoothed.iteration_seconds < profile.iteration_seconds

    def test_fractions_still_sum_to_one(self):
        profile = get_model("Flan-T5-XXL").training
        for overlap in (0.25, 0.5, 0.75):
            smoothed = overlapped_profile(profile, overlap)
            total = (smoothed.forward_fraction + smoothed.backward_fraction
                     + smoothed.sync_fraction)
            assert total == pytest.approx(1.0)

    def test_invalid_overlap_rejected(self):
        profile = get_model("GPT-NeoX-20B").training
        with pytest.raises(ConfigurationError):
            overlapped_profile(profile, 1.0)
        with pytest.raises(ConfigurationError):
            overlapped_profile(profile, -0.1)

    def test_sweep_shrinks_swings_monotonically(self):
        """Section 5.1: overlapping compute and communication smooths the
        cluster-scale power swings."""
        outcomes = smoothing_sweep(
            get_model("GPT-NeoX-20B"), overlaps=(0.0, 0.5, 0.75),
            n_servers=16, duration_s=60.0,
        )
        swings = [o.stats.max_swing_2s for o in outcomes]
        assert swings[0] > swings[1] > swings[2]
        speedups = [o.iteration_speedup for o in outcomes]
        assert speedups == sorted(speedups)

    def test_inference_model_rejected(self):
        with pytest.raises(ConfigurationError):
            smoothing_sweep(get_model("BLOOM-176B"))


class TestDerating:
    def test_paper_numbers(self):
        """Section 5: 6500 W rating, peak under 5700 W, ~800 W headroom —
        derating frees meaningful capacity in an existing row."""
        plan = plan_derating()
        assert plan.rated_power_w == 6500.0
        assert plan.observed_peak_w < 5700.0
        assert plan.headroom_per_server_w >= 800.0
        assert plan.added_servers > 0

    def test_capacity_gain_fraction(self):
        plan = plan_derating(base_servers=40)
        assert plan.added_fraction == pytest.approx(
            plan.added_servers / 40
        )
        # Derating alone (before statistical oversubscription) already
        # adds double-digit percent capacity.
        assert plan.added_fraction > 0.10

    def test_margin_reduces_gain(self):
        tight = plan_derating(safety_margin_w=0.0)
        loose = plan_derating(safety_margin_w=500.0)
        assert tight.derated_servers >= loose.derated_servers

    def test_peak_above_rating_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_derating(observed_peak_w=6600.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_derating(base_servers=0)
        with pytest.raises(ConfigurationError):
            plan_derating(safety_margin_w=-1.0)

    def test_custom_observed_peak(self):
        plan = plan_derating(observed_peak_w=5700.0, safety_margin_w=100.0)
        assert plan.derated_power_w == 5800.0
