"""The evaluation harness and sweep drivers (Figures 13-18 machinery)."""

import pytest

from repro.core.policy import PolcaThresholds
from repro.core.sweeps import EvaluationHarness, added_servers_sweep, compare_policies
from repro.errors import ConfigurationError
from repro.units import hours
from repro.workloads.spec import Priority


@pytest.fixture(scope="module")
def small_harness():
    return EvaluationHarness(duration_s=hours(4), seed=3)


class TestHarnessPlumbing:
    def test_trace_cached(self, small_harness):
        assert small_harness.utilization_trace() is \
            small_harness.utilization_trace()

    def test_requests_scale_with_added_servers(self, small_harness):
        base = small_harness.requests_for(0.0)
        more = small_harness.requests_for(0.30)
        assert len(more) == pytest.approx(1.3 * len(base), rel=0.1)

    def test_requests_cached_per_server_count(self, small_harness):
        assert small_harness.requests_for(0.30) is \
            small_harness.requests_for(0.30)

    def test_baseline_cached(self, small_harness):
        assert small_harness.baseline() is small_harness.baseline()

    def test_config_carries_overrides(self, small_harness):
        config = small_harness.config(0.2, power_scale=1.05,
                                      low_priority_fraction=0.25)
        assert config.added_fraction == 0.2
        assert config.power_scale == 1.05
        assert config.low_priority_fraction == 0.25


class TestAddedServersSweep:
    def test_sweep_produces_points_in_order(self, small_harness):
        points = added_servers_sweep(
            small_harness, PolcaThresholds(), [0.0, 0.2]
        )
        assert [p.added_fraction for p in points] == [0.0, 0.2]
        for point in points:
            assert set(point.normalized_p50) == set(Priority)
            assert point.normalized_p50[Priority.HIGH] > 0

    def test_zero_added_is_near_baseline(self, small_harness):
        point = added_servers_sweep(
            small_harness, PolcaThresholds(), [0.0]
        )[0]
        assert point.normalized_p50[Priority.HIGH] == pytest.approx(
            1.0, abs=0.03
        )
        assert point.power_brake_events == 0

    def test_empty_sweep_rejected(self, small_harness):
        with pytest.raises(ConfigurationError):
            added_servers_sweep(small_harness, PolcaThresholds(), [])


class TestComparePolicies:
    def test_all_policies_and_scales_covered(self, small_harness):
        comparisons = compare_policies(
            small_harness, added_fraction=0.2, power_scales=(1.0, 1.05)
        )
        names = {c.policy_name for c in comparisons}
        assert names == {
            "POLCA", "1-Thresh-Low-Pri", "1-Thresh-All", "No-cap",
            "POLCA+5%", "1-Thresh-Low-Pri+5%", "1-Thresh-All+5%",
            "No-cap+5%",
        }

    def test_single_scale(self, small_harness):
        comparisons = compare_policies(
            small_harness, added_fraction=0.1, power_scales=(1.0,)
        )
        assert len(comparisons) == 4
        for comparison in comparisons:
            assert comparison.power_brake_events >= 0
            assert set(comparison.normalized_max) == set(Priority)

    def test_fractional_scale_labels_exact(self, small_harness):
        """+2.5% must not be mislabeled as +2% (or +3%) by rounding."""
        comparisons = compare_policies(
            small_harness, added_fraction=0.1, power_scales=(1.025, 0.95)
        )
        names = {c.policy_name for c in comparisons}
        assert "POLCA+2.5%" in names
        assert "POLCA-5%" in names
