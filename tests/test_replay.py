"""Trace replay: Azure CSV parsing, classification, sessions, bursts."""

import hashlib
import shutil

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.units import hours
from repro.workloads.replay import (
    AZURE_COLUMNS,
    AzureRecord,
    AzureTraceReader,
    BurstWindow,
    CsvReplaySpec,
    FlashCrowdSpec,
    SessionProfile,
    TraceSource,
    apply_flash_crowd,
    classify_tokens,
    file_sha256,
    generate_sessions,
    read_azure_trace,
    requests_from_records,
    slice_window,
    stable_priority,
    stable_uniform,
    write_azure_csv,
)
from repro.workloads.spec import CHAT, Priority, SEARCH, SUMMARIZE, TABLE6_MIX

FIXTURE = "tests/data/azure_llm_sample.csv"

HEADER = ",".join(AZURE_COLUMNS)

GOOD_LINES = [
    HEADER,
    "2023-11-16 18:15:00.00,100,50",
    "2023-11-16 18:15:01.50,2048,300",
    "2023-11-16 18:16:00.00,600,1500",
]


class TestAzureParsing:
    def test_arrivals_relative_to_first_record(self):
        records = read_azure_trace(GOOD_LINES)
        assert [r.arrival_s for r in records] == [0.0, 1.5, 60.0]
        assert records[1].context_tokens == 2048
        assert records[1].generated_tokens == 300

    def test_header_optional(self):
        with_header = read_azure_trace(GOOD_LINES)
        without = read_azure_trace(GOOD_LINES[1:])
        assert with_header == without

    def test_timestamp_without_fraction_accepted(self):
        records = read_azure_trace([
            "2023-11-16 18:15:00,10,20",
            "2023-11-16 18:15:30,30,40",
        ])
        assert records[1].arrival_s == 30.0

    def test_bare_numeric_timestamps_accepted(self):
        records = read_azure_trace(["0.0,10,20", "12.5,30,40"])
        assert records[1].arrival_s == 12.5

    def test_streaming_iteration(self):
        reader = AzureTraceReader(iter(GOOD_LINES))
        first = next(iter(reader))
        assert first.arrival_s == 0.0

    def test_reader_counts_parsed(self):
        reader = AzureTraceReader(GOOD_LINES)
        list(reader)
        assert reader.parsed == 3
        assert reader.skipped == 0

    @pytest.mark.parametrize("bad", [
        "2023-11-16 18:15:02.00,1,2,3",       # extra column
        "not-a-timestamp,1,2",                 # bad timestamp
        "2023-11-16 18:15:02.00,one,2",        # non-integer tokens
        "2023-11-16 18:15:02.00,-1,2",         # negative tokens
        "2023-11-16 18:14:00.00,1,2",          # goes backwards
    ])
    def test_strict_mode_raises_with_line_number(self, bad):
        lines = GOOD_LINES + [bad]
        with pytest.raises(TraceError, match="line 5"):
            read_azure_trace(lines, strict=True)

    def test_lenient_mode_skips_and_counts(self):
        lines = GOOD_LINES + [
            "2023-11-16 18:17:00.00,1,2,3",
            "garbage,1,2",
            "2023-11-16 18:18:00.00,7,8",
        ]
        reader = AzureTraceReader(lines, strict=False)
        records = list(reader)
        assert reader.parsed == 4
        assert reader.skipped == 2
        assert records[-1].arrival_s == 180.0

    def test_strict_rejects_mangled_header(self):
        with pytest.raises(TraceError, match="line 1"):
            read_azure_trace(["TIMESTAMP,Context,Generated"] +
                             GOOD_LINES[1:])

    def test_empty_input_yields_nothing(self):
        assert read_azure_trace([HEADER]) == []


class TestWindowSlicing:
    def test_slice_rebases_to_window_start(self):
        records = read_azure_trace(
            GOOD_LINES, window_start_s=1.0, window_end_s=61.0
        )
        assert [r.arrival_s for r in records] == [0.5, 59.0]

    def test_slice_end_exclusive(self):
        records = read_azure_trace(GOOD_LINES, window_end_s=60.0)
        assert len(records) == 2

    def test_inverted_window_rejected(self):
        with pytest.raises(TraceError):
            slice_window([], 10.0, 5.0)

    def test_negative_start_rejected(self):
        with pytest.raises(TraceError):
            slice_window([], -1.0)


class TestRoundTrip:
    def test_write_read_round_trip_exact(self, tmp_path):
        path = tmp_path / "trace.csv"
        records = read_azure_trace(FIXTURE)
        requests = requests_from_records(records)
        write_azure_csv(path, requests)
        back = requests_from_records(read_azure_trace(path))
        assert len(back) == len(requests)
        for a, b in zip(requests, back):
            assert a.arrival_time == pytest.approx(b.arrival_time, abs=0.011)
            assert a.input_tokens == b.input_tokens
            assert a.output_tokens == b.output_tokens
            assert a.workload == b.workload

    def test_file_sha256_matches_hashlib(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_bytes(b"TIMESTAMP,ContextTokens,GeneratedTokens\n")
        assert file_sha256(path) == hashlib.sha256(
            path.read_bytes()
        ).hexdigest()


class TestClassification:
    def test_shapes_land_in_their_boxes(self):
        assert classify_tokens(4096, 300).name == "Summarize"
        assert classify_tokens(1024, 1500).name == "Search"
        assert classify_tokens(3000, 1000).name == "Chat"

    def test_ties_break_toward_mix_order(self):
        # (183, 312) fits no box; Summarize and Chat tie on the exact
        # rational distance, and Summarize comes first in the mix.
        assert classify_tokens(183, 312, TABLE6_MIX).name == "Summarize"

    def test_empty_mix_rejected(self):
        with pytest.raises(TraceError):
            classify_tokens(10, 10, mix=())

    def test_zero_tokens_clamp_to_one(self):
        requests = requests_from_records(
            [AzureRecord(arrival_s=0.0, context_tokens=0,
                         generated_tokens=0)]
        )
        assert requests[0].input_tokens == 1
        assert requests[0].output_tokens == 1

    def test_time_scale_stretches_arrivals(self):
        records = [AzureRecord(10.0, 100, 100)]
        fast = requests_from_records(records, time_scale=0.5)
        assert fast[0].arrival_time == 5.0
        with pytest.raises(TraceError):
            requests_from_records(records, time_scale=0.0)

    def test_priority_shortcuts_are_exact(self):
        for i in range(20):
            assert stable_priority(SUMMARIZE, i, 100, 100) == Priority.LOW
            assert stable_priority(SEARCH, i, 100, 100) == Priority.HIGH

    def test_priority_split_near_probability(self):
        highs = sum(
            stable_priority(CHAT, i, 100, 100) == Priority.HIGH
            for i in range(2000)
        )
        assert 900 < highs < 1100  # p = 0.5

    def test_stable_uniform_is_pure(self):
        assert stable_uniform("a", 1) == stable_uniform("a", 1)
        assert stable_uniform("a", 1) != stable_uniform("a", 2)
        assert 0.0 <= stable_uniform("a", 1) < 1.0


class TestSessions:
    def test_deterministic_per_profile(self):
        profile = SessionProfile(n_sessions=30, seed=4)
        a = generate_sessions(profile, hours(1))
        b = generate_sessions(profile, hours(1))
        assert a == b

    def test_arrivals_inside_window_and_sorted(self):
        requests = generate_sessions(
            SessionProfile(n_sessions=50, seed=1), hours(1)
        )
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < hours(1) for t in arrivals)

    def test_prefix_reuse_shrinks_prompts(self):
        base = dict(n_sessions=40, mean_turns=6.0, seed=2)
        cached = generate_sessions(
            SessionProfile(prefix_reuse=0.95, **base), hours(4)
        )
        uncached = generate_sessions(
            SessionProfile(prefix_reuse=0.0, **base), hours(4)
        )
        mean = lambda rs: np.mean([r.input_tokens for r in rs])  # noqa: E731
        assert mean(cached) < mean(uncached) / 2

    def test_later_turns_carry_more_context_without_reuse(self):
        requests = generate_sessions(
            SessionProfile(n_sessions=1, mean_turns=8.0, max_turns=8,
                           prefix_reuse=0.0, branch_probability=0.0,
                           think_time_mean_s=1.0, seed=0),
            hours(10),
        )
        sizes = [r.input_tokens for r in requests]
        assert sizes == sorted(sizes)
        assert len(sizes) <= 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SessionProfile(n_sessions=0)
        with pytest.raises(ConfigurationError):
            SessionProfile(prefix_reuse=1.5)
        with pytest.raises(ConfigurationError):
            SessionProfile(user_turn_tokens=(0, 5))
        with pytest.raises(ConfigurationError):
            generate_sessions(SessionProfile(), 0.0)


class TestFlashCrowd:
    def windows(self, **kw):
        return FlashCrowdSpec(
            windows=(BurstWindow(start_s=600.0, duration_s=1200.0, **kw),),
            seed=5,
        )

    def base(self):
        return generate_sessions(
            SessionProfile(n_sessions=100, seed=9), hours(1)
        )

    def test_burst_adds_requests_only_inside_window(self):
        base = self.base()
        merged = apply_flash_crowd(base, self.windows(magnitude=5.0),
                                   hours(1))
        extra = len(merged) - len(base)
        assert extra > 0
        base_keys = {(r.arrival_time, r.input_tokens) for r in base}
        for request in merged:
            key = (request.arrival_time, request.input_tokens)
            if key not in base_keys:
                assert 600.0 <= request.arrival_time < 1800.0

    def test_magnitude_scales_extra_load(self):
        base = self.base()
        mild = apply_flash_crowd(base, self.windows(magnitude=2.0), hours(1))
        wild = apply_flash_crowd(base, self.windows(magnitude=6.0), hours(1))
        assert len(wild) > len(mild) > len(base)

    def test_shapes_resampled_from_ambient_traffic(self):
        base = self.base()
        merged = apply_flash_crowd(base, self.windows(magnitude=4.0),
                                   hours(1))
        base_shapes = {(r.input_tokens, r.output_tokens) for r in base}
        for request in merged:
            assert (request.input_tokens, request.output_tokens) \
                in base_shapes

    def test_deterministic_and_sorted(self):
        base = self.base()
        a = apply_flash_crowd(base, self.windows(), hours(1))
        b = apply_flash_crowd(base, self.windows(), hours(1))
        assert a == b
        arrivals = [r.arrival_time for r in a]
        assert arrivals == sorted(arrivals)

    def test_empty_base_passes_through(self):
        assert apply_flash_crowd([], self.windows(), hours(1)) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstWindow(start_s=0.0, duration_s=100.0, magnitude=1.0)
        with pytest.raises(ConfigurationError):
            BurstWindow(start_s=0.0, duration_s=0.0)
        with pytest.raises(ConfigurationError):
            BurstWindow(start_s=0.0, duration_s=10.0, ramp_fraction=0.6)
        with pytest.raises(ConfigurationError):
            FlashCrowdSpec(windows=())

    def test_trapezoid_shape(self):
        window = BurstWindow(start_s=0.0, duration_s=100.0,
                             ramp_fraction=0.2)
        assert window.shape(-1.0) == 0.0
        assert window.shape(10.0) == pytest.approx(0.5)
        assert window.shape(50.0) == 1.0
        assert window.shape(95.0) == pytest.approx(0.25)
        assert window.shape(101.0) == 0.0


class TestTraceSource:
    def test_csv_and_sessions_mutually_exclusive(self):
        csv = CsvReplaySpec.from_file(FIXTURE)
        with pytest.raises(ConfigurationError):
            TraceSource(csv=csv, sessions=SessionProfile())

    def test_empty_source_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceSource()

    def test_labels(self):
        csv = CsvReplaySpec.from_file(FIXTURE)
        assert TraceSource(csv=csv).label.startswith("csv:")
        assert TraceSource(sessions=SessionProfile()).label \
            == "sessions:0"
        burst = FlashCrowdSpec(windows=(BurstWindow(0.0, 10.0),))
        assert TraceSource(burst=burst).label == "synthetic+burst x1"

    def test_hash_mismatch_detected(self, tmp_path):
        path = tmp_path / "trace.csv"
        shutil.copy(FIXTURE, path)
        spec = CsvReplaySpec.from_file(path)
        path.write_text("\n".join(GOOD_LINES) + "\n")
        with pytest.raises(TraceError, match="hash mismatch"):
            spec.materialize(hours(1))

    def test_spec_requires_hash(self):
        with pytest.raises(ConfigurationError, match="sha256"):
            CsvReplaySpec(path=FIXTURE)

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            CsvReplaySpec.from_file(FIXTURE, window_start_s=10.0,
                                    window_end_s=5.0)
        with pytest.raises(ConfigurationError):
            CsvReplaySpec.from_file(FIXTURE, time_scale=-1.0)

    def test_materialize_clips_to_duration(self):
        source = TraceSource(csv=CsvReplaySpec.from_file(FIXTURE))
        short = source.base_requests(60.0)
        full = source.base_requests(hours(1))
        assert 0 < len(short) < len(full)
        assert all(r.arrival_time < 60.0 for r in short)


def _stream_digest(requests):
    digest = hashlib.sha256()
    for r in requests:
        digest.update((
            f"{r.arrival_time!r}:{r.workload.name}:{r.priority.value}:"
            f"{r.input_tokens}:{r.output_tokens}\n"
        ).encode())
    return digest.hexdigest()


class TestDeterminismGoldens:
    """Pinned cross-platform digests of the replayed request streams.

    These fail if *any* float, classification decision, or priority
    draw drifts between platforms or library versions — the property
    the engine's content-addressed caching relies on.
    """

    def test_fixture_bytes_pinned(self):
        assert file_sha256(FIXTURE) == (
            "3029dbc18941477e2c8ad54445538535"
            "a96f23b1a42bed3a3221310394b8b5a4"
        )

    def test_csv_replay_stream_golden(self):
        requests = requests_from_records(read_azure_trace(FIXTURE))
        assert _stream_digest(requests) == (
            "efc6cd38391bff5fa79e85a88f7aadf5"
            "8e87b220ec581dfecdb6984b45346a02"
        )

    def test_session_stream_golden(self):
        requests = generate_sessions(
            SessionProfile(n_sessions=50, seed=3), hours(2)
        )
        assert _stream_digest(requests) == (
            "9d71494e9bd159aaa63e4bf671f955e5"
            "dd266c3e2d384fc308b2253189934100"
        )

    def test_burst_stream_golden(self):
        base = requests_from_records(read_azure_trace(FIXTURE))
        spec = FlashCrowdSpec(
            windows=(BurstWindow(600.0, 1200.0, magnitude=4.0),), seed=11
        )
        merged = apply_flash_crowd(base, spec, hours(1))
        assert _stream_digest(merged) == (
            "567aa96e35e9a7bc2d47642f37b0eda2"
            "a837f97d91fb8dcdfd6a2d1afefba343"
        )
