"""Per-server simulation state: slots, phases, clocks, brakes."""

import pytest

from repro.cluster.server_sim import ServerPowerModel, ServerSim
from repro.errors import ConfigurationError, SimulationError
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import CHAT, Priority


def make_request(arrival=0.0, inputs=2048, outputs=256):
    return SampledRequest(
        arrival_time=arrival,
        workload=CHAT,
        priority=Priority.HIGH,
        input_tokens=inputs,
        output_tokens=outputs,
    )


@pytest.fixture()
def server():
    return ServerSim(server_id="s0", priority=Priority.HIGH)


class TestServerPowerModel:
    def test_idle_power(self):
        model = ServerPowerModel()
        idle = model.server_power(0.0, 1.0)
        assert idle == pytest.approx(8 * 80 + model.host.power(0.0))

    def test_power_scale_raises_dynamic_only(self):
        base = ServerPowerModel()
        scaled = ServerPowerModel(power_scale=1.05)
        assert scaled.server_power(0.0, 1.0) == base.server_power(0.0, 1.0)
        assert scaled.server_power(0.6, 1.0) > base.server_power(0.6, 1.0)

    def test_brake_ratio(self):
        model = ServerPowerModel()
        assert model.brake_ratio == pytest.approx(288.0 / 1410.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerPowerModel(power_scale=0.0)


class TestSlots:
    def test_starts_idle(self, server):
        assert server.is_idle
        assert server.current_activity() == 0.0

    def test_start_request_occupies_slot(self, server):
        server.start_request(0.0, make_request())
        assert server.n_active == 1
        assert not server.is_idle
        assert server.has_free_slot

    def test_concurrency_limit(self, server):
        for _ in range(server.concurrency):
            server.start_request(0.0, make_request())
        assert not server.has_free_slot
        with pytest.raises(SimulationError):
            server.start_request(0.0, make_request())

    def test_buffer_available_only_when_full(self, server):
        assert not server.can_buffer  # idle servers take slots directly
        for _ in range(server.concurrency):
            server.start_request(0.0, make_request())
        assert server.can_buffer
        server.buffered = make_request()
        assert not server.can_buffer

    def test_take_buffered(self, server):
        request = make_request()
        server.buffered = request
        assert server.take_buffered() is request
        assert server.take_buffered() is None


class TestPhases:
    def test_prompt_then_token_then_done(self, server):
        slot = server.start_request(0.0, make_request())
        assert server.slots[slot].in_prompt
        next_end = server.advance_phase(1.0, slot)
        assert next_end is not None
        assert not server.slots[slot].in_prompt
        assert server.advance_phase(next_end, slot) is None
        assert server.n_active == 0

    def test_advance_unknown_slot_rejected(self, server):
        with pytest.raises(SimulationError):
            server.advance_phase(0.0, 42)

    def test_prompt_activity_dominates(self, server):
        slot_a = server.start_request(0.0, make_request())
        server.advance_phase(1.0, slot_a)  # a now decoding
        decode_activity = server.current_activity()
        server.start_request(1.0, make_request())  # b in prompt
        assert server.current_activity() > decode_activity

    def test_decode_activity_rises_with_occupancy(self, server):
        slots = [server.start_request(0.0, make_request()) for _ in range(3)]
        for slot in slots:
            server.advance_phase(1.0, slot)
        three = server.current_activity()
        server.advance_phase(100.0, slots[0])
        server.advance_phase(100.0, slots[1])
        one = server.current_activity()
        assert one < three


class TestClockChanges:
    def test_clock_change_rescales_remaining_work(self, server):
        slot = server.start_request(0.0, make_request())
        original_end = server.slots[slot].phase_end
        rescheduled = server.apply_clock(0.0, 0.5)
        assert slot in rescheduled
        # Prompt is fully compute-bound: remaining time doubles at half clock.
        assert rescheduled[slot] == pytest.approx(2 * original_end)

    def test_partial_progress_preserved(self, server):
        slot = server.start_request(0.0, make_request())
        end = server.slots[slot].phase_end
        halfway = end / 2
        rescheduled = server.apply_clock(halfway, 0.5)
        expected = halfway + 2 * (end - halfway)
        assert rescheduled[slot] == pytest.approx(expected)

    def test_noop_clock_change_reschedules_nothing(self, server):
        server.start_request(0.0, make_request())
        assert server.apply_clock(0.0, 1.0) == {}

    def test_version_bumped_on_reschedule(self, server):
        slot = server.start_request(0.0, make_request())
        version = server.slots[slot].version
        server.apply_clock(0.0, 0.8)
        assert server.slots[slot].version == version + 1

    def test_invalid_ratio_rejected(self, server):
        with pytest.raises(ConfigurationError):
            server.apply_clock(0.0, 0.0)

    def test_clock_lowers_power(self, server):
        server.start_request(0.0, make_request())
        free = server.current_power()
        server.apply_clock(0.0, 0.787)  # POLCA's deep LP cap
        assert server.current_power() < free


class TestBrake:
    def test_brake_overrides_clock(self, server):
        server.apply_clock(0.0, 0.9)
        server.apply_brake(0.0, True)
        assert server.effective_ratio == pytest.approx(288.0 / 1410.0)
        server.apply_brake(0.0, False)
        assert server.effective_ratio == pytest.approx(0.9)

    def test_brake_rescales_all_slots(self, server):
        slots = [server.start_request(0.0, make_request()) for _ in range(2)]
        rescheduled = server.apply_brake(0.0, True)
        assert set(rescheduled) == set(slots)

    def test_brake_power_collapse(self, server):
        server.start_request(0.0, make_request())
        free = server.current_power()
        server.apply_brake(0.0, True)
        assert server.current_power() < 0.6 * free
