"""Telemetry interfaces: sampling, delay, noise, catalog (Table 1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TelemetryError
from repro.telemetry.base import SampledInterface
from repro.telemetry.dcgm import DCGM_OVERHEAD_W, DcgmMonitor
from repro.telemetry.ipmi import IpmiMonitor
from repro.telemetry.registry import INTERFACE_CATALOG
from repro.telemetry.row_manager import ROW_TELEMETRY_INTERVAL_S, RowManager
from repro.telemetry.smbpbi import (
    SMBPBI_ACTUATION_LATENCY_S,
    SmbpbiInterface,
)


class TestSampledInterface:
    def test_read_applies_delay(self):
        iface = SampledInterface(name="x", interval=1.0, in_band=True,
                                 delay=0.5)
        sample = iface.read(10.0, lambda t: 42.0)
        assert sample.sampled_at == 10.0
        assert sample.time == 10.5
        assert sample.value == 42.0

    def test_noise_is_multiplicative_and_seeded(self):
        a = SampledInterface(name="x", interval=1.0, in_band=True,
                             noise_std=0.05, seed=1)
        b = SampledInterface(name="x", interval=1.0, in_band=True,
                             noise_std=0.05, seed=1)
        va = a.read(0.0, lambda t: 100.0).value
        vb = b.read(0.0, lambda t: 100.0).value
        assert va == vb
        assert va != 100.0

    def test_sample_series_interval(self):
        iface = SampledInterface(name="x", interval=0.5, in_band=True)
        series = iface.sample_series(lambda t: t, 0.0, 2.0)
        assert len(series) == 4
        assert series.interval == 0.5

    def test_empty_window_rejected(self):
        iface = SampledInterface(name="x", interval=0.5, in_band=True)
        with pytest.raises(TelemetryError):
            iface.sample_series(lambda t: t, 1.0, 1.0)

    def test_sample_series_never_samples_at_or_past_end(self):
        # Regression: the old np.arange(start, end, interval) grid emits
        # a reading at t >= end on adversarial windows — e.g.
        # arange(0, 3 * 0.1, 0.1) yields a fourth sample at 0.3 — so the
        # series leaked one out-of-window observation.
        iface = SampledInterface(name="x", interval=0.1, in_band=True)
        for start, end in [(0.0, 3 * 0.1), (1.0, 1.3), (0.0, 7 * 0.2)]:
            series = iface.sample_series(lambda t: t, start, end)
            assert series.times[-1] < end, (start, end)
        assert len(iface.sample_series(lambda t: t, 0.0, 3 * 0.1)) == 3

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SampledInterface(name="x", interval=0.0, in_band=True)
        with pytest.raises(ConfigurationError):
            SampledInterface(name="x", interval=1.0, in_band=True, delay=-1)

    def test_due_samples_stateful(self):
        iface = SampledInterface(name="x", interval=2.0, in_band=False)
        assert iface.due_samples(5.0) == [0.0, 2.0, 4.0]
        assert iface.due_samples(8.0) == [6.0, 8.0]


class TestDcgm:
    def test_paper_interval_and_overhead(self):
        monitor = DcgmMonitor()
        assert monitor.interval == 0.1
        assert monitor.in_band
        assert 5.0 <= DCGM_OVERHEAD_W <= 10.0  # Section 3.4: "5-10W"

    def test_counter_series_share_clock(self):
        monitor = DcgmMonitor(noise_std=0.0)
        series = monitor.counter_series(
            {"power": lambda t: 300.0, "sm": lambda t: 80.0}, 0.0, 1.0
        )
        assert set(series) == {"power", "sm"}
        assert len(series["power"]) == len(series["sm"])

    def test_zero_counters_rejected(self):
        with pytest.raises(ConfigurationError):
            DcgmMonitor().counter_series({}, 0.0, 1.0)


class TestIpmi:
    def test_out_of_band_seconds_scale(self):
        monitor = IpmiMonitor()
        assert not monitor.in_band
        assert 1.0 <= monitor.interval <= 5.0

    def test_validation_accepts_consistent_series(self):
        ipmi = IpmiMonitor(noise_std=0.0)
        dcgm = DcgmMonitor(noise_std=0.0)
        gpu = dcgm.sample_series(lambda t: 2400.0, 0.0, 30.0)
        server = ipmi.sample_series(lambda t: 2400.0 + 1400.0, 0.0, 30.0)
        assert ipmi.validate(server, gpu, host_floor_w=1000.0,
                             host_ceiling_w=2000.0)

    def test_validation_rejects_impossible_residual(self):
        ipmi = IpmiMonitor(noise_std=0.0)
        dcgm = DcgmMonitor(noise_std=0.0)
        gpu = dcgm.sample_series(lambda t: 2400.0, 0.0, 30.0)
        server = ipmi.sample_series(lambda t: 2500.0, 0.0, 30.0)
        assert not ipmi.validate(server, gpu, host_floor_w=1000.0,
                                 host_ceiling_w=2000.0)

    def test_validation_rejects_empty(self):
        ipmi = IpmiMonitor()
        from repro.analysis.timeseries import TimeSeries
        empty = TimeSeries(start=0, interval=1, values=np.empty(0))
        with pytest.raises(TelemetryError):
            ipmi.validate(empty, empty, 0, 1)


class TestSmbpbi:
    def test_table2_latencies(self):
        iface = SmbpbiInterface()
        assert iface.interval >= 5.0
        assert SMBPBI_ACTUATION_LATENCY_S == 40.0

    def test_command_lands_after_latency(self):
        iface = SmbpbiInterface(silent_failure_rate=0.0)
        iface.issue(0.0, "frequency_cap", 1275.0, "gpu0")
        assert iface.effective_commands(39.0) == []
        landed = iface.effective_commands(40.0)
        assert len(landed) == 1
        assert landed[0].value == 1275.0
        assert iface.pending_count == 0

    def test_silent_failures_drop_commands(self):
        iface = SmbpbiInterface(silent_failure_rate=0.5, seed=3)
        commands = [
            iface.issue(0.0, "power_cap", 300.0, f"gpu{i}")
            for i in range(200)
        ]
        failed = sum(1 for c in commands if c.failed_silently)
        assert 50 < failed < 150
        assert iface.pending_count == 200 - failed

    def test_invalid_failure_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SmbpbiInterface(silent_failure_rate=1.0)


class TestRowManager:
    def test_paper_interval(self):
        assert RowManager().interval == ROW_TELEMETRY_INTERVAL_S == 2.0

    def test_aggregation_sums_servers(self):
        manager = RowManager(noise_std=0.0)
        signals = [lambda t: 5000.0, lambda t: 4000.0]
        series = manager.row_power_series(signals, 0.0, 10.0)
        assert np.allclose(series.values, 9000.0)

    def test_empty_row_rejected(self):
        with pytest.raises(TelemetryError):
            RowManager().aggregate_signal([])


class TestCatalog:
    def test_table1_rows_present(self):
        assert set(INTERFACE_CATALOG) == {
            "RAPL", "DCGM", "SMBPBI", "IPMI", "RowManager",
        }

    def test_paths_match_table1(self):
        assert INTERFACE_CATALOG["RAPL"].path == "IB"
        assert INTERFACE_CATALOG["DCGM"].path == "IB"
        assert INTERFACE_CATALOG["SMBPBI"].path == "OOB"
        assert INTERFACE_CATALOG["IPMI"].path == "OOB"
        assert INTERFACE_CATALOG["RowManager"].path == "OOB"

    def test_rapl_is_fastest_smbpbi_slowest(self):
        fastest = min(INTERFACE_CATALOG.values(),
                      key=lambda i: i.interval_seconds[0])
        slowest = max(INTERFACE_CATALOG.values(),
                      key=lambda i: i.interval_seconds[0])
        assert fastest.mechanism == "RAPL"
        assert slowest.mechanism == "SMBPBI"

    def test_simulated_interfaces_respect_catalog(self):
        lo, hi = INTERFACE_CATALOG["DCGM"].interval_seconds
        assert lo <= DcgmMonitor().interval <= hi
        lo, hi = INTERFACE_CATALOG["IPMI"].interval_seconds
        assert lo <= IpmiMonitor().interval <= hi
        lo, hi = INTERFACE_CATALOG["SMBPBI"].interval_seconds
        assert lo <= SmbpbiInterface().interval <= hi
