"""SimulatedGpu: knob layering and performance scaling."""

import pytest

from repro.errors import ConfigurationError, FrequencyError, PowerCapError
from repro.gpu.device import SimulatedGpu
from repro.gpu.specs import A100_80GB


@pytest.fixture()
def gpu():
    return SimulatedGpu(A100_80GB)


class TestFrequencyLock:
    def test_lock_reduces_power(self, gpu):
        uncapped = gpu.power(0.0, 1.0)
        gpu.lock_frequency(1100.0)
        assert gpu.power(0.0, 1.0) < uncapped

    def test_unlock_restores(self, gpu):
        gpu.lock_frequency(1100.0)
        gpu.unlock_frequency()
        assert gpu.frequency_lock_mhz is None
        assert gpu.effective_clock_mhz(0.0) == A100_80GB.max_sm_clock_mhz

    def test_invalid_clock_rejected(self, gpu):
        with pytest.raises(FrequencyError):
            gpu.lock_frequency(5000.0)


class TestPowerCap:
    def test_cap_limits_steady_power(self, gpu):
        gpu.set_power_cap(325.0)
        power = 0.0
        for step in range(100):
            power = gpu.power(step * 0.05, 1.0)
        assert power <= 326.0

    def test_invalid_cap_rejected(self, gpu):
        with pytest.raises(PowerCapError):
            gpu.set_power_cap(10.0)

    def test_clear_cap(self, gpu):
        gpu.set_power_cap(325.0)
        gpu.clear_power_cap()
        assert gpu.power_cap_w is None

    def test_cap_and_lock_take_minimum(self, gpu):
        gpu.set_power_cap(390.0)
        gpu.lock_frequency(1100.0)
        # The 1.1 GHz lock draws less than the 390 W cap would allow.
        locked_only = SimulatedGpu(A100_80GB)
        locked_only.lock_frequency(1100.0)
        assert gpu.power(0.0, 1.0) <= locked_only.power(0.0, 1.0) + 1e-9


class TestBrakeDominates:
    def test_brake_overrides_lock(self, gpu):
        gpu.lock_frequency(1275.0)
        gpu.brake.engage(0.0)
        assert gpu.effective_clock_mhz(10.0) == A100_80GB.brake_clock_mhz

    def test_brake_power_is_minimal(self, gpu):
        gpu.brake.engage(0.0)
        braked = gpu.power(10.0, 1.0)
        assert braked < gpu.power_model.power(1.0, 600.0)


class TestPerformanceScale:
    def test_full_clock_scale_is_one(self, gpu):
        assert gpu.performance_scale(1.0) == pytest.approx(1.0)

    def test_memory_bound_phase_insensitive(self, gpu):
        gpu.lock_frequency(1100.0)
        assert gpu.performance_scale(0.0) == pytest.approx(1.0)

    def test_compute_bound_phase_scales_with_clock(self, gpu):
        gpu.lock_frequency(1100.0)
        expected = 1100.0 / 1410.0
        assert gpu.performance_scale(1.0) == pytest.approx(expected)

    def test_mixed_phase_between_extremes(self, gpu):
        gpu.lock_frequency(1100.0)
        mixed = gpu.performance_scale(0.5)
        assert gpu.performance_scale(1.0) < mixed < 1.0

    def test_invalid_fraction_rejected(self, gpu):
        with pytest.raises(ConfigurationError):
            gpu.performance_scale(1.5)

    def test_invalid_activity_rejected(self, gpu):
        with pytest.raises(ConfigurationError):
            gpu.power(0.0, 2.0)
