"""Trace analysis: timeline reconstruction and trace-vs-result checks.

``cross_check`` recomputes every counter the simulator reports from the
recorded event stream — two independent code paths that must agree. The
suite runs it on clean, adversarial, churn-only, and stale-telemetry
scenarios, and proves it *detects* disagreement by tampering with a
trace.
"""

import numpy as np
import pytest

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy
from repro.core.policy import DualThresholdPolicy
from repro.errors import ConfigurationError, SimulationError
from repro.faults import (
    ActuationFaultSpec,
    ChurnSpec,
    FaultPlan,
    ReliabilityConfig,
    ServerChurnEvent,
    TelemetryFaultSpec,
)
from repro.obs import (
    JsonlRecorder,
    MemoryRecorder,
    brake_timeline,
    cap_timeline,
    cross_check,
    fallback_windows,
    load_events,
    summarize_trace,
    utilization_points,
)
from repro.workloads.requests import RequestSampler


def make_requests(rate_per_s, duration_s, seed=0):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


def traced_run(policy=None, duration_s=240.0, rate_per_s=4.0, **overrides):
    config = ClusterConfig(n_base_servers=8, **overrides)
    recorder = MemoryRecorder()
    simulator = ClusterSimulator(
        config, policy or DualThresholdPolicy(), recorder=recorder
    )
    requests = make_requests(rate_per_s, duration_s, seed=config.seed)
    return recorder, simulator.run(requests, duration_s)


STALE_TELEMETRY = dict(
    fault_plan=FaultPlan(telemetry=TelemetryFaultSpec(
        dropout_windows=((10.0, 180.0),)
    )),
    reliability=ReliabilityConfig(
        fallback_after_ticks=3, brake_after_stale_s=10.0
    ),
)


# ----------------------------------------------------------------------
# Cross-checking: the trace re-derives the result
# ----------------------------------------------------------------------
class TestCrossCheck:
    def test_clean_run_cross_checks(self):
        recorder, result = traced_run()
        report = cross_check(recorder, result)
        assert report.ok
        report.require_ok()
        assert not report.mismatches
        assert len(report.checks) >= 20

    def test_adversarial_run_cross_checks(self):
        recorder, result = traced_run(
            seed=2, fault_plan=FaultPlan.adversarial()
        )
        cross_check(recorder, result).require_ok()

    def test_churn_run_cross_checks(self):
        plan = FaultPlan(churn=ChurnSpec(events=(
            ServerChurnEvent(server_index=0, fail_at_s=60.0,
                             recover_at_s=160.0),
            ServerChurnEvent(server_index=3, fail_at_s=90.0),
        )))
        recorder, result = traced_run(
            policy=NoCapPolicy(), fault_plan=plan, seed=5
        )
        assert result.robustness.server_failures == 2
        cross_check(recorder, result).require_ok()

    def test_stale_telemetry_run_cross_checks(self):
        recorder, result = traced_run(
            policy=NoCapPolicy(), duration_s=300.0, rate_per_s=0.5,
            **STALE_TELEMETRY,
        )
        assert result.robustness.fallback_entries == 1
        assert result.robustness.fallback_brakes == 1
        cross_check(recorder, result).require_ok()

    def test_lossy_actuation_run_cross_checks(self):
        recorder, result = traced_run(
            seed=2,
            fault_plan=FaultPlan(
                actuation=ActuationFaultSpec(silent_failure_rate=0.7),
                seed=2,
            ),
        )
        assert result.robustness.silent_actuation_failures >= 1
        assert result.robustness.reissues >= 1
        cross_check(recorder, result).require_ok()

    def test_tampered_trace_is_detected(self):
        recorder, result = traced_run(seed=2)
        events = [e for e in recorder.events if e["kind"] != "serve"][:-1]
        events += [e for e in recorder.events if e["kind"] == "serve"][:-1]
        report = cross_check(events, result)
        assert not report.ok
        names = {check.name for check in report.mismatches}
        assert "total_served" in names
        with pytest.raises(SimulationError):
            report.require_ok()
        lines = report.summary_lines()
        assert any("FAIL" in line for line in lines)

    def test_filtered_trace_fails_the_cross_check(self):
        config = ClusterConfig(n_base_servers=8)
        recorder = MemoryRecorder(kinds=["control"])
        simulator = ClusterSimulator(
            config, DualThresholdPolicy(), recorder=recorder
        )
        result = simulator.run(make_requests(4.0, 240.0), 240.0)
        assert not cross_check(recorder, result).ok

    def test_result_without_robustness_rejected(self):
        recorder, result = traced_run()
        result.robustness = None
        with pytest.raises(ConfigurationError):
            cross_check(recorder, result)


# ----------------------------------------------------------------------
# Timeline reconstruction
# ----------------------------------------------------------------------
class TestTimelines:
    def test_brake_span_from_stale_telemetry(self):
        recorder, result = traced_run(
            policy=NoCapPolicy(), duration_s=400.0, rate_per_s=0.5,
            fault_plan=FaultPlan(telemetry=TelemetryFaultSpec(
                dropout_windows=((10.0, 200.0),)
            )),
            reliability=ReliabilityConfig(
                fallback_after_ticks=3, brake_after_stale_s=10.0
            ),
        )
        spans = brake_timeline(recorder.events)
        assert len(spans) == result.power_brake_events == 1
        span = spans[0]
        assert span.source == "fallback"
        assert span.engaged_at is not None
        assert span.engaged_at >= span.requested_at
        # Telemetry returns at t=200; hysteresis releases the brake.
        assert span.released_at is not None
        assert span.engaged_duration_s > 0
        windows = fallback_windows(recorder.events)
        assert len(windows) == 1
        entered, exited = windows[0]
        assert entered < 30.0
        assert exited is not None and exited >= 200.0

    def test_cap_commands_carry_lifecycle(self):
        recorder, result = traced_run()
        commands = cap_timeline(recorder.events)
        assert len(commands) == result.capping_actions
        landed = [c for c in commands if c.landed_at is not None]
        assert landed, "expected at least one landed cap command"
        for command in landed:
            assert command.landed_at >= command.issued_at
            assert command.priority in ("low", "high")
        # Perfect actuation path: verification elided, no reissues.
        assert all(c.verified is None for c in commands)
        assert all(c.reissues == 0 for c in commands)

    def test_lossy_actuation_shows_reissues_and_verifies(self):
        recorder, result = traced_run(
            seed=2,
            fault_plan=FaultPlan(
                actuation=ActuationFaultSpec(silent_failure_rate=0.7),
                seed=2,
            ),
        )
        commands = cap_timeline(recorder.events)
        assert sum(c.reissues for c in commands) == \
            result.robustness.reissues
        assert any(c.verified is True for c in commands)

    def test_utilization_points_match_observed_series(self):
        recorder, _ = traced_run(policy=NoCapPolicy(), rate_per_s=1.0)
        points = utilization_points(recorder.events)
        assert points
        times = [t for t, _ in points]
        assert times == sorted(times)
        assert all(0.0 <= u <= 2.0 for _, u in points)

    def test_brake_timeline_cancel_release_tracked(self):
        events = [
            {"t": 0.0, "kind": "brake_request", "source": "policy",
             "version": 1},
            {"t": 5.0, "kind": "brake_land", "on": True, "version": 1},
            {"t": 70.0, "kind": "brake_release_request", "version": 2},
            {"t": 72.0, "kind": "brake_cancel_release", "version": 3},
            {"t": 140.0, "kind": "brake_release_request", "version": 4},
            {"t": 145.0, "kind": "brake_land", "on": False, "version": 4},
        ]
        spans = brake_timeline(events)
        assert len(spans) == 1
        span = spans[0]
        assert span.cancelled_releases == 1
        assert span.release_requested_at == 140.0
        assert span.released_at == 145.0


# ----------------------------------------------------------------------
# Loading and rendering
# ----------------------------------------------------------------------
class TestLoadAndSummarize:
    def test_load_events_accepts_recorder_path_and_sequence(self, tmp_path):
        recorder, result = traced_run(duration_s=120.0)
        path = str(tmp_path / "trace.jsonl")
        with JsonlRecorder(path) as sink:
            for event in recorder.events:
                sink.emit(event)
        from_recorder = load_events(recorder)
        from_path = load_events(path)
        from_list = load_events(list(recorder.events))
        assert from_recorder == from_path == from_list
        times = [e["t"] for e in from_recorder]
        assert times == sorted(times)

    def test_engine_events_sort_before_simulation_events(self):
        events = [
            {"t": 5.0, "kind": "serve"},
            {"kind": "engine_run", "digest": "abc"},
        ]
        ordered = load_events(events)
        assert ordered[0]["kind"] == "engine_run"

    def test_summarize_trace_renders_the_run(self):
        recorder, result = traced_run(
            policy=NoCapPolicy(), duration_s=300.0, rate_per_s=0.5,
            **STALE_TELEMETRY,
        )
        lines = summarize_trace(recorder)
        text = "\n".join(lines)
        assert "events spanning" in text
        assert "brake engagements: 1" in text
        assert "fallback" in text
        assert "cap commands:" in text

    def test_summarize_empty_trace(self):
        lines = summarize_trace([])
        assert lines[0].startswith("0 events")
        assert "brake engagements: 0" in "\n".join(lines)

    def test_summarize_engine_only_trace_has_no_time_span(self):
        lines = summarize_trace([
            {"kind": "engine_run", "digest": "abc", "wall_s": 0.5},
            {"kind": "engine_batch", "requested": 1},
        ])
        assert lines[0] == "2 events (no simulation-time events)"
        assert "engine_batch=1, engine_run=1" in lines[1]

    def test_summarize_details_brakes_caps_and_fallbacks(self):
        events = [
            {"t": 1.0, "kind": "cap_issue", "priority": "low",
             "generation": 1, "attempts": 0, "clock_mhz": 900.0},
            {"t": 3.0, "kind": "cap_land", "priority": "low",
             "generation": 1},
            {"t": 4.0, "kind": "cap_reissue", "priority": "low",
             "generation": 1},
            {"t": 5.0, "kind": "cap_verify", "priority": "low",
             "generation": 1, "ok": True},
            {"t": 10.0, "kind": "fallback_enter"},
            {"t": 20.0, "kind": "brake_request", "source": "fallback",
             "version": 1},
            {"t": 22.0, "kind": "brake_land", "on": True, "version": 1},
        ]
        text = "\n".join(summarize_trace(events))
        assert "brake engagements: 1" in text
        assert "fallback request t=20.0s" in text
        assert "still engaged at end" in text
        assert "cap commands: 1" in text
        assert "900 MHz" in text
        assert "1 reissue(s)" in text
        assert "[verified]" in text
        assert "stale-telemetry fallback windows: 1" in text
        assert "t=10.0s .. end of run" in text

    def test_summarize_uncapped_and_unlanded_commands(self):
        events = [
            {"t": 2.0, "kind": "cap_issue", "priority": "high",
             "generation": 4, "attempts": 0, "clock_mhz": None},
        ]
        text = "\n".join(summarize_trace(events))
        assert "uncap" in text
        assert "never landed" in text
