"""Workload mix, arrivals, request sampling, and SLO targets (Table 6)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import days
from repro.workloads.arrivals import DiurnalRateProfile, generate_arrivals
from repro.workloads.requests import RequestSampler
from repro.workloads.spec import (
    CHAT,
    Priority,
    SEARCH,
    SLO_TARGETS,
    SUMMARIZE,
    SloTargets,
    TABLE6_MIX,
    WorkloadSpec,
)


class TestTable6:
    def test_shares_sum_to_one(self):
        assert sum(w.share for w in TABLE6_MIX) == pytest.approx(1.0)

    def test_workload_ranges_match_table6(self):
        assert SUMMARIZE.prompt_range == (2048, 8192)
        assert SUMMARIZE.output_range == (256, 512)
        assert SEARCH.prompt_range == (512, 2048)
        assert SEARCH.output_range == (1024, 2048)
        assert CHAT.prompt_range == (2048, 4096)
        assert CHAT.output_range == (128, 2048)

    def test_priorities_match_table6(self):
        assert SUMMARIZE.high_priority_probability == 0.0   # Low
        assert SEARCH.high_priority_probability == 1.0      # High
        assert CHAT.high_priority_probability == 0.5        # 50:50

    def test_all_served_by_bloom(self):
        """Section 6.4: BLOOM-176B is the worst-case evaluation model."""
        assert all(w.model_name == "BLOOM-176B" for w in TABLE6_MIX)

    def test_slo_targets_match_table6(self):
        assert SLO_TARGETS[Priority.HIGH].p50_impact == 0.01
        assert SLO_TARGETS[Priority.HIGH].p99_impact == 0.05
        assert SLO_TARGETS[Priority.LOW].p50_impact == 0.05
        assert SLO_TARGETS[Priority.LOW].p99_impact == 0.50
        assert all(t.max_power_brakes == 0 for t in SLO_TARGETS.values())

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec("bad", (0, 10), (1, 2), 0.5, 0.5)
        with pytest.raises(ConfigurationError):
            WorkloadSpec("bad", (1, 10), (1, 2), 1.5, 0.5)
        with pytest.raises(ConfigurationError):
            WorkloadSpec("bad", (1, 10), (1, 2), 0.5, 2.0)
        with pytest.raises(ConfigurationError):
            SloTargets(p50_impact=-0.1, p99_impact=0.1)


class TestDiurnalProfile:
    def test_rate_peaks_at_peak_hour(self):
        profile = DiurnalRateProfile(base_rate=1.0, noise_amplitude=0.0,
                                     weekly_amplitude=0.0, peak_hour=15.0)
        peak_rate = profile.rate(15 * 3600.0)
        trough_rate = profile.rate(3 * 3600.0)
        assert peak_rate > trough_rate
        assert peak_rate == pytest.approx(1.3, abs=0.01)

    def test_rates_vectorized_matches_scalar(self):
        profile = DiurnalRateProfile(base_rate=2.0)
        times = np.array([0.0, 3600.0, 86400.0])
        vector = profile.rates(times)
        scalar = [profile.rate(float(t)) for t in times]
        assert np.allclose(vector, scalar)

    def test_max_rate_dominates(self):
        profile = DiurnalRateProfile(base_rate=1.0)
        times = np.linspace(0, days(7), 5000)
        assert profile.rates(times).max() <= profile.max_rate + 1e-9

    def test_rate_always_positive(self):
        profile = DiurnalRateProfile(base_rate=1.0)
        times = np.linspace(0, days(7), 5000)
        assert (profile.rates(times) > 0).all()

    def test_excessive_amplitudes_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalRateProfile(base_rate=1.0, daily_amplitude=0.9,
                               weekly_amplitude=0.2)

    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalRateProfile(base_rate=0.0)


class TestArrivalGeneration:
    def test_count_tracks_expected(self):
        profile = DiurnalRateProfile(base_rate=2.0, daily_amplitude=0.2,
                                     weekly_amplitude=0.05,
                                     noise_amplitude=0.02)
        arrivals = generate_arrivals(profile, 0.0, 3600.0, seed=0)
        expected = profile.rates(np.linspace(0, 3600.0, 720)).mean() * 3600.0
        assert len(arrivals) == pytest.approx(expected, rel=0.08)

    def test_sorted_and_in_window(self):
        profile = DiurnalRateProfile(base_rate=1.0)
        arrivals = generate_arrivals(profile, 100.0, 500.0, seed=1)
        assert arrivals == sorted(arrivals)
        assert all(100.0 <= t < 500.0 for t in arrivals)

    def test_deterministic_for_seed(self):
        profile = DiurnalRateProfile(base_rate=1.0)
        assert generate_arrivals(profile, 0, 600, seed=5) == \
            generate_arrivals(profile, 0, 600, seed=5)

    def test_empty_window_rejected(self):
        profile = DiurnalRateProfile(base_rate=1.0)
        with pytest.raises(ConfigurationError):
            generate_arrivals(profile, 10.0, 10.0)


class TestRequestSampler:
    def test_sizes_within_workload_ranges(self):
        sampler = RequestSampler(seed=0)
        for request in sampler.sample_many(np.arange(500.0)):
            lo_p, hi_p = request.workload.prompt_range
            lo_o, hi_o = request.workload.output_range
            assert lo_p <= request.input_tokens <= hi_p
            assert lo_o <= request.output_tokens <= hi_o

    def test_mix_ratios_converge(self):
        sampler = RequestSampler(seed=1)
        requests = sampler.sample_many(np.arange(4000.0))
        shares = {
            name: sum(1 for r in requests if r.workload.name == name) / 4000
            for name in ("Summarize", "Search", "Chat")
        }
        assert shares["Summarize"] == pytest.approx(0.25, abs=0.03)
        assert shares["Search"] == pytest.approx(0.25, abs=0.03)
        assert shares["Chat"] == pytest.approx(0.50, abs=0.03)

    def test_priority_split_is_50_50(self):
        sampler = RequestSampler(seed=2)
        assert sampler.expected_priority_split() == pytest.approx(0.5)
        requests = sampler.sample_many(np.arange(4000.0))
        high = sum(1 for r in requests if r.priority is Priority.HIGH)
        assert high / 4000 == pytest.approx(0.5, abs=0.03)

    def test_search_is_always_high_priority(self):
        sampler = RequestSampler(seed=3)
        requests = sampler.sample_many(np.arange(2000.0))
        assert all(
            r.priority is Priority.HIGH
            for r in requests if r.workload.name == "Search"
        )
        assert all(
            r.priority is Priority.LOW
            for r in requests if r.workload.name == "Summarize"
        )

    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestSampler(mix=(SUMMARIZE, SEARCH))  # shares sum to 0.5
