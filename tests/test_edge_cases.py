"""Edge cases and less-travelled paths across the library."""

import dataclasses

import numpy as np
import pytest

from repro.characterization.scale import inference_cluster_patterns
from repro.errors import ConfigurationError
from repro.gpu.counters import CounterSynthesizer
from repro.gpu.specs import H100_80GB
from repro.server.components import DGX_H100_BUDGET
from repro.server.dgx import DgxServer
from repro.telemetry.registry import InterfaceInfo
from repro.units import hours
from repro.workloads.tracegen import ProductionTraceModel, SyntheticTraceGenerator


class TestH100Server:
    def test_h100_server_composes(self):
        server = DgxServer(gpu_spec=H100_80GB, budget=DGX_H100_BUDGET)
        assert server.rated_power_w == pytest.approx(10_200.0)
        assert server.gpu_tdp_total_w == 8 * 700.0
        assert server.peak_power_w < server.rated_power_w

    def test_h100_knobs_work(self):
        server = DgxServer(gpu_spec=H100_80GB, budget=DGX_H100_BUDGET)
        server.lock_all_frequencies(H100_80GB.base_sm_clock_mhz)
        locked = server.server_power_uniform(0.0, 0.8)
        server.unlock_all_frequencies()
        free = server.server_power_uniform(0.0, 0.8)
        assert locked < free


class TestInterfaceInfoValidation:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            InterfaceInfo(mechanism="x", granularity="GPU", in_band=True,
                          interval_seconds=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            InterfaceInfo(mechanism="x", granularity="GPU", in_band=True,
                          interval_seconds=(2.0, 1.0))


class TestCounterEdgeCases:
    def test_zero_lag_is_identity(self):
        trace = CounterSynthesizer(seed=0).prompt_phase(100)
        same = trace.lagged("power", 0)
        assert np.allclose(same.counters["power"], trace.counters["power"])

    def test_token_then_prompt_independent_rng(self):
        synthesizer = CounterSynthesizer(seed=5)
        first = synthesizer.prompt_phase(100).counters["power"].copy()
        synthesizer.token_phase(100)
        # Same synthesizer advances its stream; a fresh one reproduces.
        again = CounterSynthesizer(seed=5).prompt_phase(100).counters["power"]
        assert np.allclose(first, again)


class TestInferenceClusterPatterns:
    def test_short_run_produces_coherent_column(self):
        patterns = inference_cluster_patterns(duration_s=hours(2), seed=3)
        assert patterns.cluster == "inference"
        assert 0.3 < patterns.mean_utilization < patterns.peak_utilization < 1.0
        assert 0.0 <= patterns.max_spike_2s <= patterns.max_spike_40s
        assert patterns.headroom == pytest.approx(
            1.0 - patterns.peak_utilization
        )


class TestTraceGeneratorEdges:
    def test_custom_server_count_scales_requests(self):
        trace = ProductionTraceModel(seed=0).generate(
            duration_s=hours(6), interval_s=300.0
        )
        small = SyntheticTraceGenerator(n_servers=20, seed=0).generate(trace)
        large = SyntheticTraceGenerator(n_servers=60, seed=0).generate(trace)
        assert len(large.requests) == pytest.approx(
            3 * len(small.requests), rel=0.15
        )

    def test_invalid_server_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticTraceGenerator(n_servers=0)


class TestFrozenSpecs:
    def test_gpu_spec_is_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            H100_80GB.tdp_w = 1000.0

    def test_replaced_spec_revalidates(self):
        from repro.errors import PowerCapError
        with pytest.raises(PowerCapError):
            dataclasses.replace(H100_80GB, transient_peak_w=100.0)
