"""GPU specifications and their paper-anchored constants."""

import dataclasses

import pytest

from repro.errors import FrequencyError, ModelNotFoundError, PowerCapError
from repro.gpu.specs import A100_40GB, A100_80GB, H100_80GB, gpu_spec


class TestPaperConstants:
    def test_a100_tdp_is_400w(self):
        assert A100_80GB.tdp_w == 400.0
        assert A100_40GB.tdp_w == 400.0

    def test_a100_clock_ladder_matches_paper(self):
        # Section 6.5: base frequency 1275 MHz; Table 5: brake 288 MHz.
        assert A100_80GB.max_sm_clock_mhz == 1410.0
        assert A100_80GB.base_sm_clock_mhz == 1275.0
        assert A100_80GB.brake_clock_mhz == 288.0

    def test_idle_power_is_about_20pct_of_tdp(self):
        # Figure 4: Flan-T5 troughs at ~20% of TDP, i.e. GPU idle.
        assert A100_80GB.idle_w / A100_80GB.tdp_w == pytest.approx(0.2)

    def test_transient_peak_exceeds_tdp(self):
        # Insights 1 and 4: peaks reach or exceed TDP.
        for spec in (A100_40GB, A100_80GB, H100_80GB):
            assert spec.transient_peak_w > spec.tdp_w

    def test_80gb_has_more_bandwidth_than_40gb(self):
        assert A100_80GB.memory_bandwidth > A100_40GB.memory_bandwidth

    def test_h100_is_the_bigger_part(self):
        assert H100_80GB.tdp_w > A100_80GB.tdp_w
        assert H100_80GB.peak_flops["fp16"] > A100_80GB.peak_flops["fp16"]
        assert "fp8" in H100_80GB.peak_flops


class TestValidation:
    def test_validate_clock_accepts_range(self):
        assert A100_80GB.validate_clock(1275.0) == 1275.0

    def test_validate_clock_accepts_brake_clock(self):
        assert A100_80GB.validate_clock(288.0) == 288.0

    def test_validate_clock_rejects_out_of_range(self):
        with pytest.raises(FrequencyError):
            A100_80GB.validate_clock(2000.0)
        with pytest.raises(FrequencyError):
            A100_80GB.validate_clock(100.0)

    def test_validate_power_cap_range(self):
        assert A100_80GB.validate_power_cap(325.0) == 325.0
        with pytest.raises(PowerCapError):
            A100_80GB.validate_power_cap(50.0)
        with pytest.raises(PowerCapError):
            A100_80GB.validate_power_cap(500.0)

    def test_lockable_range_property(self):
        lo, hi = A100_80GB.lockable_clock_range_mhz
        assert (lo, hi) == (210.0, 1410.0)

    def test_inconsistent_power_ladder_rejected(self):
        with pytest.raises(PowerCapError):
            dataclasses.replace(A100_80GB, idle_w=500.0)

    def test_inconsistent_clock_ladder_rejected(self):
        with pytest.raises(FrequencyError):
            dataclasses.replace(A100_80GB, brake_clock_mhz=1400.0)

    def test_inconsistent_cap_range_rejected(self):
        with pytest.raises(PowerCapError):
            dataclasses.replace(
                A100_80GB, min_power_cap_w=500.0, max_power_cap_w=400.0
            )


class TestLookup:
    def test_lookup_by_name(self):
        assert gpu_spec("A100-80GB") is A100_80GB

    def test_unknown_name_lists_known(self):
        with pytest.raises(ModelNotFoundError, match="A100-80GB"):
            gpu_spec("V100")
