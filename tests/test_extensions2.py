"""Second extension wave: phase splitting, workload-aware caps, the
standalone controller, and the beyond-LLMs vision workload."""

import pytest

from repro.cluster.policy_base import GroupCaps
from repro.control.actions import ActionKind
from repro.control.actuator import InBandActuator
from repro.core.controller import PolcaController
from repro.core.policy import DualThresholdPolicy
from repro.core.splitting import (
    plan_split_deployment,
    plan_unsplit_deployment,
    split_power_saving,
)
from repro.core.workload_aware import (
    deepest_safe_cap,
    latency_stretch,
    uniform_vs_aware_reclaim,
    workload_aware_plan,
)
from repro.errors import ConfigurationError
from repro.models.vision import VisionServingModel
from repro.workloads.spec import SEARCH, SUMMARIZE


class TestPhaseSplitting:
    def test_split_saves_provisioned_power(self):
        """Section 5.2's payoff: only the token pool needs capping, so
        the split deployment provisions less power for the same load."""
        saving = split_power_saving()
        assert 0.10 < saving < 0.40

    def test_transfer_overhead_is_sub_second(self):
        """'Promising given the high-bandwidth Infiniband interconnects'
        — KV transfer is a small fraction of a multi-second request."""
        deployment = plan_split_deployment()
        assert 0.0 < deployment.transfer_seconds < 1.0
        assert deployment.latency_increase < 0.15

    def test_pools_scale_with_load(self):
        small = plan_split_deployment(request_rate=1.0)
        large = plan_split_deployment(request_rate=4.0)
        assert large.total_servers > small.total_servers
        assert large.provisioned_power_w > small.provisioned_power_w

    def test_token_pool_dominates_server_count(self):
        """Decode time >> prompt time, so the token pool is bigger."""
        deployment = plan_split_deployment()
        assert deployment.token_servers > deployment.prompt_servers

    def test_unsplit_has_no_transfer(self):
        deployment = plan_unsplit_deployment()
        assert deployment.transfer_seconds == 0.0
        assert deployment.token_servers == 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_split_deployment(request_rate=0.0)
        with pytest.raises(ConfigurationError):
            plan_unsplit_deployment(request_rate=-1.0)


class TestWorkloadAware:
    def test_stretch_zero_at_max_clock(self):
        assert latency_stretch(SEARCH, 1410.0) == pytest.approx(0.0)

    def test_stretch_grows_as_clock_drops(self):
        assert latency_stretch(SEARCH, 1110.0) > latency_stretch(
            SEARCH, 1275.0
        )

    def test_deepest_cap_respects_budget(self):
        plan = deepest_safe_cap(SUMMARIZE, slo_budget=0.05)
        assert plan.latency_stretch <= 0.05
        deeper_stretch = latency_stretch(
            SUMMARIZE, plan.cap_clock_mhz - 45.0
        ) if plan.cap_clock_mhz > 1110.0 else 1.0
        assert deeper_stretch > 0.05 or plan.cap_clock_mhz == 1110.0

    def test_tight_budget_means_shallow_cap(self):
        tight = deepest_safe_cap(SEARCH, slo_budget=0.01)
        loose = deepest_safe_cap(SEARCH, slo_budget=0.10)
        assert tight.cap_clock_mhz >= loose.cap_clock_mhz

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            deepest_safe_cap(SEARCH, slo_budget=-0.01)

    def test_plan_covers_the_mix(self):
        plans = workload_aware_plan()
        assert set(plans) == {"Summarize", "Search", "Chat"}
        # Low-priority Summarize tolerates a deeper cap than Search.
        assert plans["Summarize"].cap_clock_mhz <= \
            plans["Search"].cap_clock_mhz

    def test_aware_reclaims_more_than_uniform(self):
        """Section 6.7's claim: workload-specific profiles get more
        power savings at the same SLO impact."""
        comparison = uniform_vs_aware_reclaim()
        assert comparison["aware_reclaim"] >= comparison["uniform_reclaim"]
        assert comparison["aware_reclaim"] > 0.0


class TestPolcaController:
    def make_controller(self, **kwargs):
        defaults = dict(
            policy=DualThresholdPolicy(),
            provisioned_power_w=200_000.0,
            low_priority_servers=frozenset({"s0", "s1"}),
            high_priority_servers=frozenset({"s2", "s3"}),
            actuator=InBandActuator(),
            refresh_interval_s=0.0,  # guardrail exercised separately
        )
        defaults.update(kwargs)
        return PolcaController(**defaults)

    def test_quiet_signal_issues_nothing(self):
        controller = self.make_controller()
        issued = controller.run_over_signal(lambda t: 100_000.0, 0.0, 60.0)
        assert issued == []
        assert controller.commanded_caps == GroupCaps.uncapped()

    def test_t1_crossing_caps_low_priority(self):
        controller = self.make_controller()
        issued = controller.run_over_signal(lambda t: 165_000.0, 0.0, 10.0)
        assert len(issued) == 1
        action = issued[0].action
        assert action.kind is ActionKind.FREQUENCY_LOCK
        assert action.value == 1275.0
        assert action.targets == frozenset({"s0", "s1"})

    def test_deduplicates_repeat_commands(self):
        controller = self.make_controller()
        issued = controller.run_over_signal(lambda t: 165_000.0, 0.0, 120.0)
        assert len(issued) == 1  # commanded once despite 60 ticks

    def test_uncap_after_power_recedes(self):
        controller = self.make_controller()

        def signal(t):
            return 165_000.0 if t < 60.0 else 120_000.0  # 0.825 -> 0.60

        issued = controller.run_over_signal(signal, 0.0, 200.0)
        kinds = [a.action.kind for a in issued]
        assert kinds == [ActionKind.FREQUENCY_LOCK,
                         ActionKind.FREQUENCY_UNLOCK]

    def test_brake_on_breaker_threat(self):
        controller = self.make_controller()
        issued = controller.run_over_signal(lambda t: 205_000.0, 0.0, 10.0)
        assert any(a.action.kind is ActionKind.POWER_BRAKE for a in issued)
        assert controller.brake_engaged
        assert controller.brake_events == 1

    def test_brake_releases(self):
        controller = self.make_controller()

        def signal(t):
            return 205_000.0 if t < 20.0 else 150_000.0

        issued = controller.run_over_signal(signal, 0.0, 120.0)
        kinds = [a.action.kind for a in issued]
        assert ActionKind.BRAKE_RELEASE in kinds
        assert not controller.brake_engaged

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_controller(provisioned_power_w=0.0)
        with pytest.raises(ConfigurationError):
            self.make_controller(low_priority_servers=frozenset())
        with pytest.raises(ConfigurationError):
            self.make_controller(refresh_interval_s=-1.0)

    def test_refresh_guardrail_reissues_caps(self):
        """Section 3.3: OOB commands can be silently dropped, so the
        controller periodically re-issues the desired state."""
        controller = self.make_controller(refresh_interval_s=60.0)
        issued = controller.run_over_signal(lambda t: 165_000.0, 0.0, 200.0)
        # Initial command plus refreshes at ~60 s intervals.
        assert len(issued) >= 3
        assert all(a.action.value == 1275.0 for a in issued)

    def test_refresh_survives_silent_failure(self):
        """A dropped cap is repaired by the next refresh cycle."""
        from repro.control.actuator import OobActuator
        lossy = OobActuator(silent_failure_rate=0.7, seed=4)
        controller = self.make_controller(
            actuator=lossy, refresh_interval_s=60.0
        )
        controller.run_over_signal(lambda t: 165_000.0, 0.0, 1200.0)
        # Despite 70% silent loss, at least one command landed.
        landed = lossy.effective(10_000.0)
        assert len(landed) >= 1

    def test_refresh_idle_when_uncapped(self):
        controller = self.make_controller(refresh_interval_s=60.0)
        issued = controller.run_over_signal(lambda t: 100_000.0, 0.0, 400.0)
        assert issued == []


class TestVisionWorkload:
    def test_stable_power(self):
        """Section 6.7: vision inference has no phase structure."""
        model = VisionServingModel()
        assert model.power_stability() == 1.0

    def test_power_below_llm_prompt_spikes(self):
        model = VisionServingModel()
        assert model.power() < 400.0  # below TDP, no spikes

    def test_frequency_lever_still_works(self):
        """'They can still reclaim power from frequency scaling for small
        performance loss.'"""
        tradeoff = VisionServingModel().frequency_tradeoff(1100.0)
        assert tradeoff["power_reduction"] > tradeoff["performance_reduction"]
        assert tradeoff["power_reduction"] > 0.15

    def test_latency_scaling(self):
        model = VisionServingModel()
        assert model.latency(0.5) < 2 * model.latency(1.0)
        assert model.latency(0.5) > model.latency(1.0)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            VisionServingModel(activity=0.0)
        with pytest.raises(ConfigurationError):
            VisionServingModel(base_latency_s=0.0)
        with pytest.raises(ConfigurationError):
            VisionServingModel().latency(0.0)
