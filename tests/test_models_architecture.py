"""Transformer FLOP/byte arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.models.architecture import ArchitectureKind, TransformerArchitecture
from repro.models.datatypes import FP16, FP32
from repro.units import billions


@pytest.fixture()
def bloom():
    return TransformerArchitecture(
        kind=ArchitectureKind.DECODER, n_params=billions(176),
        n_layers=70, hidden_size=14336, n_heads=112,
    )


class TestConstruction:
    def test_head_dim(self, bloom):
        assert bloom.head_dim == 128

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            TransformerArchitecture(ArchitectureKind.DECODER, 0, 1, 8, 1)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ConfigurationError):
            TransformerArchitecture(ArchitectureKind.DECODER, 1e9, 10, 100, 3)


class TestFlops:
    def test_forward_flops_is_2x_params(self, bloom):
        assert bloom.forward_flops_per_token() == pytest.approx(2 * 176e9)

    def test_prompt_flops_superlinear_in_tokens(self, bloom):
        """The attention term bends latency upward past long prompts
        (Figure 8b)."""
        short = bloom.prompt_flops(1024, 1)
        long = bloom.prompt_flops(8192, 1)
        assert long > 8 * short  # superlinear, not proportional

    def test_prompt_flops_linear_in_batch(self, bloom):
        assert bloom.prompt_flops(1024, 4) == pytest.approx(
            4 * bloom.prompt_flops(1024, 1)
        )

    def test_token_flops_grow_with_context(self, bloom):
        assert bloom.token_flops(1, 8192) > bloom.token_flops(1, 512)

    def test_invalid_tokens_rejected(self, bloom):
        with pytest.raises(ConfigurationError):
            bloom.prompt_flops(0, 1)
        with pytest.raises(ConfigurationError):
            bloom.prompt_flops(128, 0)

    @given(st.integers(min_value=1, max_value=8192),
           st.integers(min_value=1, max_value=16))
    def test_prompt_flops_positive(self, tokens, batch):
        arch = TransformerArchitecture(
            ArchitectureKind.DECODER, billions(13), 40, 5120, 40
        )
        assert arch.prompt_flops(tokens, batch) > 0


class TestBytes:
    def test_weight_bytes_by_dtype(self, bloom):
        assert bloom.weight_bytes(FP16) == pytest.approx(352e9)
        assert bloom.weight_bytes(FP32) == pytest.approx(704e9)

    def test_kv_cache_grows_linearly(self, bloom):
        per_token = bloom.kv_cache_bytes_per_token(FP16)
        assert bloom.kv_cache_bytes(FP16, 1000, 2) == pytest.approx(
            2000 * per_token
        )

    def test_token_read_bytes_include_weights_once(self, bloom):
        reads = bloom.token_read_bytes(FP16, 2048, 4)
        assert reads == pytest.approx(
            bloom.weight_bytes(FP16) + bloom.kv_cache_bytes(FP16, 2048, 4)
        )


class TestFitsOn:
    def test_bloom_fp16_fits_on_8x80gb(self, bloom):
        assert bloom.fits_on(FP16, 8 * 80e9)

    def test_bloom_fp16_does_not_fit_on_4x80gb(self, bloom):
        assert not bloom.fits_on(FP16, 4 * 80e9)

    def test_kv_dtype_override_changes_footprint(self):
        """bitsandbytes keeps the KV cache FP16 when weights are INT8."""
        from repro.models.datatypes import INT8
        llama70 = TransformerArchitecture(
            ArchitectureKind.DECODER, billions(70), 80, 8192, 64
        )
        # One 80 GB GPU: INT8 weights fit only if KV were also INT8.
        loose = llama70.fits_on(INT8, 80e9, kv_dtype=INT8)
        strict = llama70.fits_on(INT8, 80e9, kv_dtype=FP16)
        assert loose and not strict

    @given(st.integers(min_value=1, max_value=16))
    def test_fits_monotone_in_memory(self, n_gpus):
        arch = TransformerArchitecture(
            ArchitectureKind.DECODER, billions(70), 80, 8192, 64
        )
        if arch.fits_on(FP16, n_gpus * 80e9):
            assert arch.fits_on(FP16, (n_gpus + 1) * 80e9)
