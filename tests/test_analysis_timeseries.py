"""TimeSeries operations and the Table 4 max-swing statistic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.timeseries import (
    TimeSeries,
    concatenate,
    max_swing,
    sample_times,
)
from repro.errors import ConfigurationError


def series(values, interval=1.0, start=0.0):
    return TimeSeries(start=start, interval=interval,
                      values=np.asarray(values, dtype=float))


#: (start, end, interval) pairs where a raw float-step
#: ``np.arange(start, end, step)`` emits a sample at or past ``end``
#: because its implied count rounds up (asserted below, so these stay
#: genuinely adversarial against the old construction).
ADVERSARIAL_GRIDS = [
    (0.0, 3 * 0.1, 0.1),          # end = 0.30000000000000004
    (0.0, 6 * 0.1, 0.1),          # end = 0.6000000000000001
    (1.0, 1.3, 0.1),              # last arange sample 1.3000000000000003
    (0.0, 3 * 0.2, 0.2),          # end = 0.6000000000000001
    (0.0, 3 * 0.05, 0.05),        # end = 0.15000000000000002
]


class TestSampleTimes:
    @pytest.mark.parametrize("start,end,interval", ADVERSARIAL_GRIDS)
    def test_adversarial_pairs_overshoot_with_arange(
        self, start, end, interval
    ):
        """The pairs really do break the old construction."""
        grid = np.arange(start, end, interval)
        assert grid[-1] >= end or grid.size != sample_times(
            start, end, interval
        ).size

    @pytest.mark.parametrize("start,end,interval", ADVERSARIAL_GRIDS)
    def test_never_emits_sample_at_or_past_end(self, start, end, interval):
        times = sample_times(start, end, interval)
        assert times.size > 0
        assert times[-1] < end
        # Integer-indexed: start + k * interval exactly.
        assert times[0] == start
        k = np.arange(times.size)
        assert (times == start + k * interval).all()

    def test_covers_the_window(self):
        times = sample_times(0.0, 10.0, 2.5)
        assert np.allclose(times, [0.0, 2.5, 5.0, 7.5])

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_times(1.0, 1.0, 0.1)

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_times(0.0, 1.0, 0.0)

    @given(
        n=st.integers(min_value=1, max_value=5000),
        interval=st.floats(
            min_value=1e-3, max_value=1e4,
            allow_nan=False, allow_infinity=False,
        ),
        start=st.floats(
            min_value=0.0, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_all_samples_inside_window(self, n, interval, start):
        end = start + n * interval
        if end <= start:  # float underflow of the product
            return
        times = sample_times(start, end, interval)
        assert times.size > 0
        assert times[0] == start
        assert times[-1] < end


class TestConstruction:
    def test_basic_properties(self):
        ts = series([1, 2, 3], interval=0.5)
        assert len(ts) == 3
        assert ts.duration == 1.0
        assert np.allclose(ts.times, [0.0, 0.5, 1.0])

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            series([1.0], interval=0.0)

    def test_two_dimensional_values_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeSeries(start=0, interval=1, values=np.zeros((2, 2)))

    def test_from_function_samples_half_open_interval(self):
        ts = TimeSeries.from_function(lambda t: 2 * t, 0.0, 1.0, 0.25)
        assert len(ts) == 4
        assert ts.values[-1] == pytest.approx(1.5)

    def test_from_function_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeSeries.from_function(lambda t: t, 1.0, 1.0, 0.1)

    def test_from_function_never_samples_at_or_past_end(self):
        # Regression: np.arange with a float step can overshoot and emit
        # a sample at t >= end when (end - start) / interval rounds up,
        # e.g. arange(0, 1.0, 1/3) yields 4 samples with the last at
        # 1.0000000000000002.
        for start, end, interval in [
            (0.0, 0.3, 0.1),
            (0.0, 1.0, 1.0 / 3.0),
            (0.0, 3600.0, 2.0),
            (5.0, 5.7, 0.1),
        ]:
            ts = TimeSeries.from_function(lambda t: t, start, end, interval)
            assert len(ts) > 0
            assert ts.times[-1] < end, (start, end, interval)
            expected = int(np.ceil((end - start) / interval))
            while expected > 0 and \
                    start + (expected - 1) * interval >= end:
                expected -= 1
            assert len(ts) == expected

    def test_from_function_timestamps_are_integer_indexed(self):
        # start + k * interval exactly, not an accumulated running sum.
        ts = TimeSeries.from_function(lambda t: 0.0, 0.0, 100.0, 0.1)
        assert ts.times[-1] == 0.0 + 999 * 0.1

    def test_from_function_non_positive_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeSeries.from_function(lambda t: t, 0.0, 1.0, 0.0)


class TestAggregates:
    def test_peak_mean_trough(self):
        ts = series([1, 5, 3])
        assert ts.peak() == 5.0
        assert ts.trough() == 1.0
        assert ts.mean() == 3.0

    def test_aggregates_on_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            series([]).peak()

    def test_normalized(self):
        ts = series([200, 400]).normalized(400.0)
        assert np.allclose(ts.values, [0.5, 1.0])

    def test_normalized_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            series([1.0]).normalized(0.0)


class TestTransforms:
    def test_rolling_mean_smooths(self):
        ts = series([0, 10, 0, 10, 0, 10])
        smooth = ts.rolling_mean(window_seconds=2.0)
        assert smooth.values[0] == 0.0  # prefix averages shorter window
        assert smooth.values[1] == 5.0
        assert smooth.values.std() < ts.values.std()

    def test_rolling_mean_window_of_one_is_identity(self):
        ts = series([1, 2, 3])
        assert np.allclose(ts.rolling_mean(1.0).values, ts.values)

    def test_rolling_mean_matches_scalar_loop_bitwise(self):
        # The cumsum formulation must reproduce the original per-sample
        # loop bit-for-bit (Figure 16 smoothing feeds published numbers).
        rng = np.random.default_rng(16)
        values = rng.uniform(0.0, 6000.0, size=2048)
        ts = series(values, interval=2.0)
        for window_s in (2.0, 8.0, 60.0, 5000.0):
            window = max(1, int(round(window_s / ts.interval)))
            cumsum = np.concatenate(([0.0], np.cumsum(values)))
            expected = np.empty_like(values)
            for i in range(values.size):
                lo = max(0, i + 1 - window)
                expected[i] = (cumsum[i + 1] - cumsum[lo]) / (i + 1 - lo)
            got = ts.rolling_mean(window_s).values
            assert np.array_equal(got, expected), window_s

    def test_downsample(self):
        ts = series([1, 2, 3, 4, 5], interval=0.1)
        coarse = ts.downsample(2)
        assert np.allclose(coarse.values, [1, 3, 5])
        assert coarse.interval == pytest.approx(0.2)

    def test_downsample_rejects_zero_factor(self):
        with pytest.raises(ConfigurationError):
            series([1.0]).downsample(0)

    def test_slice_selects_window(self):
        ts = series([0, 1, 2, 3, 4])
        window = ts.slice(1.0, 3.0)
        assert np.allclose(window.values, [1, 2])
        assert window.start == 1.0

    def test_slice_outside_range_is_empty(self):
        assert len(series([1, 2]).slice(10.0, 20.0)) == 0

    def test_concatenate(self):
        joined = concatenate([series([1, 2]), series([3, 4])])
        assert np.allclose(joined.values, [1, 2, 3, 4])

    def test_concatenate_mixed_intervals_rejected(self):
        with pytest.raises(ConfigurationError):
            concatenate([series([1], interval=1.0), series([2], interval=2.0)])

    def test_concatenate_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            concatenate([])


class TestMaxSwing:
    def test_step_up_detected(self):
        ts = series([1, 1, 1, 5, 5], interval=1.0)
        assert max_swing(ts, 1.0) == 4.0

    def test_drop_is_not_a_swing(self):
        # Table 4 measures upward spikes (what power capping must absorb).
        ts = series([5, 4, 3, 2, 1])
        assert max_swing(ts, 2.0) == 0.0

    def test_window_limits_visible_rise(self):
        ts = series([0, 1, 2, 3, 4], interval=1.0)
        assert max_swing(ts, 1.0) == 1.0
        assert max_swing(ts, 3.0) == 3.0

    def test_window_shorter_than_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            max_swing(series([1, 2], interval=2.0), 1.0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            max_swing(series([1.0]), 1.0)

    @settings(max_examples=50)
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=2,
                    max_size=60))
    def test_swing_non_negative_and_bounded_by_range(self, values):
        ts = series(values)
        swing = max_swing(ts, 3.0)
        assert 0.0 <= swing <= (max(values) - min(values)) + 1e-9

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=3,
                    max_size=40))
    def test_swing_monotone_in_window(self, values):
        ts = series(values)
        assert max_swing(ts, 1.0) <= max_swing(ts, 5.0) + 1e-9

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=2,
                    max_size=40))
    def test_swing_matches_bruteforce(self, values):
        ts = series(values)
        steps = 4
        brute = 0.0
        for i in range(len(values)):
            hi = min(len(values) - 1, i + steps)
            window_max = max(values[i:hi + 1])
            brute = max(brute, window_max - values[i])
        assert max_swing(ts, 4.0) == pytest.approx(brute)
