"""Shared fixtures for the heavier integration tests.

The POLCA evaluation harness simulates hours of cluster time; building
baseline and policy runs once per session keeps the suite fast while still
exercising the full pipeline (trace synthesis -> DES -> policy -> SLOs).
"""

import pytest

from repro.core import DualThresholdPolicy, EvaluationHarness
from repro.units import hours


@pytest.fixture(scope="session")
def harness():
    """A six-simulated-hour evaluation harness (covers one daily peak)."""
    return EvaluationHarness(duration_s=hours(30), seed=1)


@pytest.fixture(scope="session")
def baseline_result(harness):
    """Default cluster, no capping — the normalization baseline."""
    return harness.baseline()


@pytest.fixture(scope="session")
def polca_30pct_result(harness):
    """POLCA at the paper's headline 30% oversubscription."""
    return harness.run(DualThresholdPolicy(), added_fraction=0.30)
