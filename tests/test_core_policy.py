"""POLCA's dual-threshold policy state machine (Table 5)."""

import pytest

from repro.cluster.policy_base import GroupCaps
from repro.core.policy import POLCA_DEFAULTS, DualThresholdPolicy, PolcaThresholds
from repro.errors import ConfigurationError


@pytest.fixture()
def policy():
    return DualThresholdPolicy()


def drive(policy, utilization, ticks, start=0.0, interval=2.0):
    """Feed a constant utilization for several telemetry ticks."""
    caps = GroupCaps.uncapped()
    for tick in range(ticks):
        caps = policy.desired_caps(utilization, now=start + tick * interval)
    return caps


class TestDefaults:
    def test_paper_selected_thresholds(self):
        assert POLCA_DEFAULTS.t1 == 0.80
        assert POLCA_DEFAULTS.t2 == 0.89
        assert POLCA_DEFAULTS.uncap_margin == 0.05

    def test_table5_clocks(self):
        assert POLCA_DEFAULTS.lp_t1_clock_mhz == 1275.0
        assert POLCA_DEFAULTS.lp_t2_clock_mhz == 1110.0
        assert POLCA_DEFAULTS.hp_t2_clock_mhz == 1305.0

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            PolcaThresholds(t1=0.9, t2=0.8)
        with pytest.raises(ConfigurationError):
            PolcaThresholds(uncap_margin=0.0)
        with pytest.raises(ConfigurationError):
            PolcaThresholds(lp_t1_clock_mhz=1000.0, lp_t2_clock_mhz=1100.0)


class TestEscalation:
    def test_uncapped_below_t1(self, policy):
        caps = policy.desired_caps(0.70, now=0.0)
        assert caps == GroupCaps.uncapped()
        assert policy.level == 0

    def test_t1_caps_low_priority_only(self, policy):
        caps = policy.desired_caps(0.82, now=0.0)
        assert caps.low_clock_mhz == 1275.0
        assert caps.high_clock_mhz is None
        assert policy.level == 1

    def test_t2_deepens_low_priority_cap(self, policy):
        caps = policy.desired_caps(0.90, now=0.0)
        assert caps.low_clock_mhz == 1110.0
        assert caps.high_clock_mhz is None
        assert policy.level == 2

    def test_hp_capped_only_after_oob_latency_elapses(self, policy):
        """'If the power is still above the threshold' — HP is touched
        only once the deeper LP cap had a chance to land (40 s)."""
        caps = drive(policy, 0.91, ticks=10)  # 20 s of breach
        assert caps.high_clock_mhz is None
        caps = drive(policy, 0.91, ticks=15, start=20.0)  # past 44 s
        assert caps.high_clock_mhz == 1305.0
        assert policy.level == 3

    def test_brief_t2_spike_never_touches_hp(self, policy):
        drive(policy, 0.91, ticks=5)
        caps = policy.desired_caps(0.86, now=100.0)  # back between t1, t2
        assert caps.high_clock_mhz is None


class TestDeescalation:
    def test_hysteresis_band_holds_caps(self, policy):
        policy.desired_caps(0.90, now=0.0)
        caps = policy.desired_caps(0.86, now=2.0)  # above t2 - margin
        assert caps.low_clock_mhz == 1110.0

    def test_step_down_one_level_per_tick(self, policy):
        drive(policy, 0.91, ticks=25)  # escalate to level 3
        assert policy.level == 3
        policy.desired_caps(0.83, now=100.0)  # below t2 - margin
        assert policy.level == 2
        policy.desired_caps(0.83, now=102.0)
        assert policy.level == 1
        policy.desired_caps(0.83, now=104.0)  # still above t1 - margin
        assert policy.level == 1
        caps = policy.desired_caps(0.74, now=106.0)  # below t1 - margin
        assert policy.level == 0
        assert caps == GroupCaps.uncapped()

    def test_reset_clears_state(self, policy):
        drive(policy, 0.95, ticks=30)
        policy.reset()
        assert policy.level == 0
        assert policy.desired_caps(0.50, now=0.0) == GroupCaps.uncapped()


class TestBrakeInterface:
    def test_brake_at_full_utilization(self, policy):
        assert not policy.wants_brake(0.99)
        assert policy.wants_brake(1.0)

    def test_brake_release_threshold(self, policy):
        assert not policy.brake_release_ok(0.95)
        assert policy.brake_release_ok(0.90)
