"""Roofline latency model: phase boundedness and clock scaling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.gpu.specs import A100_80GB
from repro.models.datatypes import FP16, FP32, INT8
from repro.models.performance import PhaseLatency, RooflineLatencyModel
from repro.models.registry import get_model


@pytest.fixture()
def bloom_model():
    return RooflineLatencyModel(model=get_model("BLOOM-176B"), gpu=A100_80GB)


class TestPhaseLatency:
    def test_total_and_fraction(self):
        phases = PhaseLatency(prompt_seconds=1.0, token_seconds=3.0,
                              overhead_seconds=0.0)
        assert phases.total_seconds == 4.0
        assert phases.prompt_fraction == 0.25


class TestPromptPhase:
    def test_prompt_scales_with_input(self, bloom_model):
        assert bloom_model.prompt_latency(4096) > \
            2 * bloom_model.prompt_latency(2048) * 0.9

    def test_prompt_is_compute_bound(self, bloom_model):
        """Prompt latency scales inversely with the SM clock."""
        full = bloom_model.prompt_latency(2048, clock_ratio=1.0)
        locked = bloom_model.prompt_latency(2048, clock_ratio=0.5)
        assert locked == pytest.approx(2 * full)

    def test_invalid_clock_ratio_rejected(self, bloom_model):
        with pytest.raises(ConfigurationError):
            bloom_model.prompt_latency(1024, clock_ratio=0.0)
        with pytest.raises(ConfigurationError):
            bloom_model.prompt_latency(1024, clock_ratio=1.5)


class TestTokenPhase:
    def test_token_is_weakly_clock_sensitive(self, bloom_model):
        """Token sampling is bandwidth-bound: halving the clock costs far
        less than 2x (Insight 7's mechanism)."""
        full = bloom_model.token_latency(clock_ratio=1.0)
        locked = bloom_model.token_latency(clock_ratio=0.5)
        assert locked < 1.4 * full

    def test_bloom_decode_rate_plausible(self, bloom_model):
        """BLOOM-176B on 8xA100 decodes on the order of tens of ms/token."""
        per_token = bloom_model.token_latency(context_tokens=1024)
        assert 0.01 < per_token < 0.1

    def test_throughput_inverse_of_latency(self, bloom_model):
        throughput = bloom_model.throughput_tokens_per_second(4, 1024)
        assert throughput == pytest.approx(
            4 / bloom_model.token_latency(4, 1024)
        )


class TestRequestLatency:
    def test_token_phase_dominates(self, bloom_model):
        """Output tokens dominate latency (Figure 8f is linear in output)."""
        phases = bloom_model.request_latency(2048, 512)
        assert phases.prompt_fraction < 0.25

    def test_latency_linear_in_output(self, bloom_model):
        short = bloom_model.request_latency(1024, 256)
        long = bloom_model.request_latency(1024, 1024)
        ratio = long.token_seconds / short.token_seconds
        assert 3.5 < ratio < 4.6  # linear modulo KV-cache context growth

    def test_zero_output_rejected(self, bloom_model):
        with pytest.raises(ConfigurationError):
            bloom_model.request_latency(1024, 0)

    @settings(max_examples=25)
    @given(st.integers(min_value=128, max_value=8192),
           st.integers(min_value=1, max_value=2048),
           st.floats(min_value=0.5, max_value=1.0))
    def test_latency_monotone_in_clock(self, inputs, outputs, ratio):
        model = RooflineLatencyModel(model=get_model("Llama2-70B"),
                                     gpu=A100_80GB)
        fast = model.request_latency(inputs, outputs, clock_ratio=1.0)
        slow = model.request_latency(inputs, outputs, clock_ratio=ratio)
        assert slow.total_seconds >= fast.total_seconds - 1e-12


class TestDatatypes:
    def test_fp16_faster_than_fp32(self):
        """Section 4.2: FP16 is fastest (optimized tensor-core kernels)."""
        model = get_model("Llama2-70B")
        fp16 = RooflineLatencyModel(model=model, gpu=A100_80GB, dtype=FP16,
                                    n_gpus=4)
        fp32 = RooflineLatencyModel(model=model, gpu=A100_80GB, dtype=FP32,
                                    n_gpus=4)
        assert fp16.request_latency(2048, 256).total_seconds < \
            fp32.request_latency(2048, 256).total_seconds

    def test_int8_slower_than_fp16_despite_smaller_weights(self):
        """bitsandbytes INT8 kernels are poorly optimized (Section 4.2)."""
        model = get_model("Llama2-70B")
        fp16 = RooflineLatencyModel(model=model, gpu=A100_80GB, dtype=FP16,
                                    n_gpus=2)
        int8 = RooflineLatencyModel(model=model, gpu=A100_80GB, dtype=INT8,
                                    n_gpus=2)
        assert int8.request_latency(2048, 256).total_seconds > \
            fp16.request_latency(2048, 256).total_seconds

    def test_missing_flops_entry_rejected(self):
        import dataclasses
        gpu = dataclasses.replace(A100_80GB, peak_flops={"fp16": 3.12e14})
        model = RooflineLatencyModel(model=get_model("Llama2-13B"), gpu=gpu,
                                     dtype=FP32)
        with pytest.raises(ConfigurationError):
            model.prompt_latency(1024)


class TestConfigValidation:
    def test_invalid_efficiencies_rejected(self):
        with pytest.raises(ConfigurationError):
            RooflineLatencyModel(model=get_model("Llama2-13B"),
                                 gpu=A100_80GB, bandwidth_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            RooflineLatencyModel(model=get_model("Llama2-13B"),
                                 gpu=A100_80GB, tp_efficiency=1.5)

    def test_defaults_resolve_from_model(self, bloom_model):
        assert bloom_model.effective_n_gpus == 8
        assert bloom_model.effective_dtype is FP16
