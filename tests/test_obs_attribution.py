"""Causal attribution: exact conservation, rankings, tables, energy.

The hand-written stream (from ``test_obs_spans``) has a decomposition
computable by hand, so the tests pin exact values. The simulator-driven
tests check the conservation identity on full runs — exactly, not to a
tolerance — and the :func:`cross_check` integration.
"""

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    COMPONENTS,
    MemoryRecorder,
    SpanBuilder,
    TeeRecorder,
    attribute_run,
    attribution_table,
    cross_check,
    top_victims,
)
from tests.test_obs import REFERENCE_CONFIGS, run_reference
from tests.test_obs_spans import simple_request_events


#: The trace records 0.8 as a binary float; the exact arithmetic runs
#: over Fraction(0.8) — the float's exact value — not 4/5.
R8 = Fraction(0.8)
#: service = 1.0 at full clock + 3.0 s at 0.8 + 1.0 s at 0.5 (cf = 1.0:
#: ideal = actual * r).
EXPECTED_SERVICE = 1 + 3 * R8 + Fraction(1, 2)
EXPECTED_CAP = 3 * (1 - R8)
EXPECTED_BRAKE = Fraction(1, 2)
EXPECTED_EXCESS = EXPECTED_CAP + EXPECTED_BRAKE


class TestHandComputedDecomposition:
    """The simple stream, by hand (compute_fraction = 1.0):

    realized = 6.0 - 1.0 = 5.0 s; queue_wait = 0.
    [1.0, 2.0] @ 1.0 -> service 1.0
    [2.0, 3.5] @ 0.8 -> service 1.5*0.8, cap_slowdown 1.5*0.2
    [3.5, 4.5] @ 0.5 -> service 0.5, brake_stall 0.5
    [4.5, 6.0] @ 0.8 -> service 1.5*0.8, cap_slowdown 1.5*0.2
    (all over the *binary* value of 0.8, which the conservation identity
    absorbs: the components still sum to exactly 5.)
    """

    def test_exact_components(self):
        report = attribute_run(simple_request_events())
        (request,) = report.requests
        assert request.exact["queue_wait"] == 0
        assert request.exact["service"] == EXPECTED_SERVICE
        assert request.exact["cap_slowdown"] == EXPECTED_CAP
        assert request.exact["brake_stall"] == EXPECTED_BRAKE
        assert request.exact["fallback"] == 0
        assert request.exact_realized == 5
        assert request.conservation_error == 0
        assert EXPECTED_SERVICE + EXPECTED_CAP + EXPECTED_BRAKE == 5

    def test_counterfactual_and_excess(self):
        report = attribute_run(simple_request_events())
        (request,) = report.requests
        assert request.exact_counterfactual == EXPECTED_SERVICE
        assert request.exact_excess == EXPECTED_EXCESS
        assert request.counterfactual_s == float(EXPECTED_SERVICE)
        assert request.excess_s == float(EXPECTED_EXCESS)

    def test_by_action_attribution(self):
        report = attribute_run(simple_request_events())
        (request,) = report.requests
        assert set(request.by_action_s) == {
            "cap low gen 1", "brake v1 (policy)",
        }
        assert request.by_action_s["cap low gen 1"] == float(EXPECTED_CAP)
        assert request.by_action_s["brake v1 (policy)"] == 0.5

    def test_excess_energy_is_slot_share_of_idle(self):
        report = attribute_run(simple_request_events())
        (request,) = report.requests
        # run_meta: idle 250 W / concurrency 2 = 125 W per slot.
        assert request.excess_energy_j == float(EXPECTED_EXCESS) * 125.0
        assert report.total_excess_energy_j == request.excess_energy_j

    def test_no_run_meta_means_no_energy(self):
        events = simple_request_events()[1:]
        report = attribute_run(events)
        (request,) = report.requests
        assert request.excess_energy_j == 0.0
        assert request.exact_excess == EXPECTED_EXCESS

    def test_fallback_component_from_brake_source(self):
        events = simple_request_events()
        for event in events:
            if event["kind"] == "brake_request":
                event["source"] = "fallback"
        report = attribute_run(events)
        (request,) = report.requests
        assert request.exact["brake_stall"] == 0
        assert request.exact["fallback"] == Fraction(1, 2)
        assert request.conservation_error == 0

    def test_fallback_component_from_tainted_cap(self):
        events = simple_request_events()
        events.insert(3, {"t": 1.5, "kind": "fallback_enter"})
        report = attribute_run(events)
        (request,) = report.requests
        assert request.exact["cap_slowdown"] == 0
        assert request.exact["fallback"] == EXPECTED_CAP
        assert request.exact["brake_stall"] == EXPECTED_BRAKE

    def test_dropped_and_unfinished_counted(self):
        events = simple_request_events()[:3] + [
            {"t": 4.0, "kind": "drop", "request_id": 0, "priority": "low",
             "reason": "churn", "server": "s0"},
            {"t": 5.0, "kind": "req_arrival", "request_id": 1,
             "priority": "low", "workload": "Chat", "server": "s0",
             "queued": False},
            {"t": 5.0, "kind": "phase_start", "request_id": 1,
             "server": "s0", "slot": 0, "phase": "prompt", "phase_index": 0,
             "ratio": 1.0, "full_clock_s": 2.0, "compute_fraction": 1.0,
             "planned_end": 7.0},
        ]
        report = attribute_run(events)
        assert report.requests == []
        assert report.dropped == 1
        assert report.unfinished == 1

    def test_latency_mismatch_detection(self):
        events = simple_request_events()
        events[-1]["latency_s"] = 4.999  # disagrees with end - arrival
        report = attribute_run(events)
        assert report.latency_mismatches == 1
        events[-1]["latency_s"] = 5.0
        assert attribute_run(events).latency_mismatches == 0

    def test_pre_span_trace_yields_empty_report(self):
        events = [
            {"t": 1.0, "kind": "serve", "latency_s": 2.0},
            {"t": 2.0, "kind": "cap_land", "priority": "low",
             "generation": 1, "clock_mhz": 1100.0},
        ]
        report = attribute_run(events)
        assert report.requests == [] and report.dropped == 0

    def test_snapshot_shape(self):
        snapshot = attribute_run(simple_request_events()).snapshot()
        assert snapshot["requests"] == 1
        assert snapshot["conservation_ok"] is True
        assert set(snapshot["components_s"]) == set(COMPONENTS)
        assert snapshot["top_victims"][0]["request_id"] == 0
        import json

        json.dumps(snapshot)


class TestRankingAndTables:
    def _two_request_report(self):
        events = simple_request_events() + [
            {"t": 10.0, "kind": "req_arrival", "request_id": 1,
             "priority": "high", "workload": "Search", "server": "s0",
             "queued": True},
            {"t": 11.0, "kind": "phase_start", "request_id": 1,
             "server": "s0", "slot": 1, "phase": "prompt", "phase_index": 0,
             "ratio": 1.0, "full_clock_s": 1.0, "compute_fraction": 1.0,
             "planned_end": 12.0},
            {"t": 12.0, "kind": "serve", "request_id": 1,
             "priority": "high", "workload": "Search", "latency_s": 2.0},
        ]
        return attribute_run(events)

    def test_top_victims_ranking(self):
        report = self._two_request_report()
        victims = top_victims(report, 2)
        assert [v.request_id for v in victims] == [0, 1]
        assert top_victims(report, 1)[0].request_id == 0

    def test_top_victims_rejects_nonpositive_n(self):
        with pytest.raises(ConfigurationError):
            top_victims(self._two_request_report(), 0)

    def test_table_by_priority(self):
        lines = attribution_table(self._two_request_report(), by="priority")
        assert "p99_excess" in lines[0]
        rows = {line.split()[0]: line for line in lines[1:]}
        assert set(rows) == {"low", "high"}
        # The high request ran at full clock: zero slowdown everywhere.
        assert "0.000" in rows["high"]

    def test_table_by_workload_and_action(self):
        report = self._two_request_report()
        workload_rows = attribution_table(report, by="workload")
        assert {line.split()[0] for line in workload_rows[1:]} == {
            "Chat", "Search",
        }
        action_rows = attribution_table(report, by="action")
        assert action_rows[0].startswith("action")
        assert any("cap low gen 1" in line for line in action_rows)

    def test_table_rejects_unknown_dimension(self):
        with pytest.raises(ConfigurationError):
            attribution_table(self._two_request_report(), by="server")


class TestSimulatorConservation:
    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_decomposition_conserves_exactly(self, name):
        builder = SpanBuilder()
        result = run_reference(name, recorder=builder)
        report = attribute_run(builder)
        assert report.unfinished == 0
        assert report.latency_mismatches == 0
        assert report.conservation_violations == []
        assert len(report.requests) == result.total_served
        for request in report.requests:
            # Exact identity, not a tolerance.
            total = sum(
                (request.exact[name_] for name_ in COMPONENTS),
                Fraction(0),
            )
            assert total == request.exact_realized
            for component, value in request.exact.items():
                assert value >= 0, (request.request_id, component)

    def test_counterfactual_never_exceeds_realized(self):
        builder = SpanBuilder()
        run_reference("polca-adversarial", recorder=builder)
        for request in attribute_run(builder).requests:
            assert request.exact_counterfactual <= request.exact_realized
            assert request.exact_excess >= 0

    def test_cross_check_audits_attribution(self):
        builder = SpanBuilder()
        memory = MemoryRecorder()
        result = run_reference(
            "polca-oversubscribed", recorder=TeeRecorder([memory, builder])
        )
        report = cross_check(memory.events, result)
        names = {check.name for check in report.checks}
        assert {
            "attribution.spans_served",
            "attribution.spans_dropped",
            "attribution.spans_unfinished",
            "attribution.conservation_violations",
            "attribution.latency_mismatches",
        } <= names
        report.require_ok()

    def test_cross_check_skips_pre_span_traces(self):
        memory = MemoryRecorder(kinds=["serve", "drop", "control"])
        result = run_reference("polca-default", recorder=memory)
        report = cross_check(memory.events, result)
        names = {check.name for check in report.checks}
        assert not any(name.startswith("attribution.") for name in names)

    def test_brake_heavy_run_attributes_brake_stall(self):
        builder = SpanBuilder()
        run_reference("nocap-stale-telemetry", recorder=builder)
        report = attribute_run(builder)
        totals = report.totals_s()
        assert totals["brake_stall"] + totals["fallback"] > 0
        assert report.total_excess_s > 0
        assert report.total_excess_energy_j > 0
