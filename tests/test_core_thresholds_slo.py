"""Threshold selection from traces, and SLO evaluation."""

import numpy as np
import pytest

from repro.analysis.timeseries import TimeSeries
from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.core.slo import evaluate_slos
from repro.core.thresholds import select_thresholds
from repro.errors import ConfigurationError
from repro.workloads.spec import Priority


def utilization_series(values, interval=2.0):
    return TimeSeries(start=0.0, interval=interval,
                      values=np.asarray(values, dtype=float))


class TestSelectThresholds:
    def test_t2_leaves_room_for_the_40s_spike(self):
        # A trace with a known worst 40 s rise of 0.11.
        values = [0.70] * 100 + [0.81] + [0.70] * 100
        recommendation = select_thresholds(utilization_series(values))
        assert recommendation.max_spike_40s == pytest.approx(0.11)
        assert recommendation.thresholds.t2 == pytest.approx(0.89)
        assert recommendation.thresholds.t1 == pytest.approx(0.80)

    def test_2s_spike_reported(self):
        values = [0.70, 0.70, 0.75] + [0.70] * 50
        recommendation = select_thresholds(utilization_series(values))
        assert recommendation.max_spike_2s == pytest.approx(0.05)

    def test_flat_trace_gives_high_t2(self):
        recommendation = select_thresholds(utilization_series([0.6] * 100))
        assert recommendation.thresholds.t2 >= 0.95

    def test_wild_trace_clamped(self):
        values = [0.2, 0.9] * 50
        recommendation = select_thresholds(utilization_series(values))
        assert 0.5 <= recommendation.thresholds.t2 <= 0.99

    def test_short_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            select_thresholds(utilization_series([0.5, 0.6]))


def make_result(low_lat, high_lat, brakes=0):
    return SimulationResult(
        per_priority={
            Priority.LOW: PriorityMetrics(latencies=list(low_lat),
                                          served=len(low_lat)),
            Priority.HIGH: PriorityMetrics(latencies=list(high_lat),
                                           served=len(high_lat)),
        },
        power_series=utilization_series([100.0] * 10),
        provisioned_power_w=1000.0,
        power_brake_events=brakes,
        capping_actions=0,
        duration_s=10.0,
    )


class TestEvaluateSlos:
    def test_identical_runs_meet_all_slos(self):
        baseline = make_result([10.0] * 200, [20.0] * 200)
        report = evaluate_slos(baseline, baseline)
        assert report.all_met
        assert report.p50_impact[Priority.HIGH] == pytest.approx(0.0)

    def test_hp_p50_budget_is_1pct(self):
        baseline = make_result([10.0] * 200, [20.0] * 200)
        slightly_slow = make_result([10.0] * 200, [20.3] * 200)
        report = evaluate_slos(slightly_slow, baseline)
        assert not report.meets(Priority.HIGH)  # +1.5% > 1%
        assert report.meets(Priority.LOW)

    def test_lp_p99_budget_is_50pct(self):
        baseline = make_result([10.0] * 200, [20.0] * 200)
        # Tail-only slowdown: p50 unchanged, p99 +40% -> within the 50%
        # low-priority budget.
        slow_tail = make_result([10.0] * 196 + [14.0] * 4, [20.0] * 200)
        assert evaluate_slos(slow_tail, baseline).meets(Priority.LOW)
        # p99 +60% -> breached.
        very_slow_tail = make_result([10.0] * 196 + [16.0] * 4, [20.0] * 200)
        assert not evaluate_slos(very_slow_tail, baseline).meets(Priority.LOW)

    def test_any_brake_fails(self):
        baseline = make_result([10.0] * 200, [20.0] * 200)
        braked = make_result([10.0] * 200, [20.0] * 200, brakes=1)
        report = evaluate_slos(braked, baseline)
        assert not report.brakes_ok
        assert not report.all_met
