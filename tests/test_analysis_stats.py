"""Statistics utilities: percentiles, MAPE, latency summaries."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    LatencySummary,
    mean_absolute_percentage_error,
    normalized,
    percentile,
    summarize_latencies,
)
from repro.errors import ConfigurationError


class TestPercentile:
    def test_median_of_known_values(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_p100_is_maximum(self):
        assert percentile([5.0, 1.0, 9.0], 100) == 9.0

    def test_p0_is_minimum(self):
        assert percentile([5.0, 1.0, 9.0], 0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_percentile_bounded_by_extremes(self, values):
        p = percentile(values, 73.0)
        assert min(values) <= p <= max(values)


class TestMape:
    def test_identical_series_zero(self):
        assert mean_absolute_percentage_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # 10% high on one of two equal-weight points -> 5% MAPE.
        assert mean_absolute_percentage_error([10.0, 10.0], [11.0, 10.0]) \
            == pytest.approx(0.05)

    def test_symmetric_in_error_sign(self):
        low = mean_absolute_percentage_error([10.0], [9.0])
        high = mean_absolute_percentage_error([10.0], [11.0])
        assert low == pytest.approx(high)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])

    def test_zero_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_percentage_error([0.0, 1.0], [1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_percentage_error([], [])

    @given(st.lists(st.floats(min_value=1, max_value=1e3), min_size=1,
                    max_size=30))
    def test_self_mape_always_zero(self, series):
        assert mean_absolute_percentage_error(series, series) == 0.0


class TestNormalized:
    def test_divides_by_baseline(self):
        out = normalized([400.0, 200.0], 400.0)
        assert np.allclose(out, [1.0, 0.5])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            normalized([1.0], 0.0)


class TestLatencySummary:
    def test_summary_fields(self):
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.p50 == pytest.approx(2.5)
        assert summary.maximum == 4.0
        assert summary.mean == pytest.approx(2.5)

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_latencies([])

    def test_normalization_against_baseline(self):
        baseline = summarize_latencies([10.0] * 100)
        mine = summarize_latencies([11.0] * 100)
        ratios = mine.normalized_to(baseline)
        assert ratios["p50"] == pytest.approx(1.1)
        assert ratios["p99"] == pytest.approx(1.1)
        assert ratios["max"] == pytest.approx(1.1)

    def test_normalization_rejects_degenerate_baseline(self):
        bad = LatencySummary(count=1, p50=0.0, p99=0.0, maximum=0.0, mean=0.0)
        mine = summarize_latencies([1.0])
        with pytest.raises(ConfigurationError):
            mine.normalized_to(bad)

    @given(st.lists(st.floats(min_value=0.001, max_value=1e4), min_size=2,
                    max_size=100))
    def test_percentile_ordering_invariant(self, latencies):
        summary = summarize_latencies(latencies)
        assert summary.p50 <= summary.p99 <= summary.maximum
