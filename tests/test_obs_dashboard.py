"""The mission-control dashboard: deterministic static HTML.

The acceptance bar: rendering the same panels twice produces
byte-identical HTML (no timestamps, no dict-order dependence, no
randomness), with zero runtime dependencies — every chart is inline
SVG, every chart ships an adjacent data table, and identity is never
color-alone (legends for >= 2 series).
"""

from dataclasses import dataclass, field
from typing import Dict

import pytest

from repro.errors import ConfigurationError
from repro.obs import PALETTE, Dashboard, render_sparkline
from repro.obs.dashboard import _downsample, _fmt, _line_chart, _ticks


@dataclass
class FakePoint:
    """Duck-typed SweepPoint: per-tier metric dicts."""

    normalized_p99: Dict[str, float] = field(default_factory=dict)
    normalized_p50: Dict[str, float] = field(default_factory=dict)
    normalized_throughput: Dict[str, float] = field(default_factory=dict)


def sweep_points():
    return {
        (combo, fraction): FakePoint(
            normalized_p99={"high": 1.0 + fraction, "low": 1.5 + i},
            normalized_throughput={"high": 1.0, "low": 0.9 - fraction},
        )
        for i, combo in enumerate(("75-85", "80-89"))
        for fraction in (0.1, 0.2, 0.3)
    }


def ledger_entries():
    return [
        {
            "kind": "run", "policy": "POLCA", "seed": 1,
            "duration_s": 3600.0, "wall_s": 0.5 + 0.01 * i,
            "provenance": {
                "cache_hit": i >= 2, "incremental_resumed": False,
                "incremental_reused": False, "retries": 0,
                "quarantined": False, "shards": 1,
            },
            "metrics": {"total_energy_j": 1.25e7,
                        "power_brake_events": 3},
        }
        for i in range(4)
    ]


def full_dashboard():
    dash = Dashboard(title="POLCA mission control",
                     subtitle="test fixture")
    dash.add_sweep_panel(sweep_points())
    dash.add_incident_panel([{
        "rule": "brake-storm", "severity": "critical",
        "opened_at": 10.0, "resolved_at": 60.0,
        "peak_value": 12, "description": "brakes > 5 within 60s",
    }])
    dash.add_kernel_panel([
        {"kind": "serve", "calls": 100, "seconds": 0.2},
        {"kind": "tick", "calls": 400, "seconds": 0.1},
    ])
    entries = ledger_entries()
    dash.add_savings_panel(entries)
    dash.add_ledger_panel(entries)
    return dash


# ----------------------------------------------------------------------
# The acceptance bar: byte-identical rendering
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_repeated_render_is_byte_identical(self):
        dash = full_dashboard()
        assert dash.render() == dash.render()

    def test_two_identically_built_dashboards_agree(self):
        assert full_dashboard().render() == full_dashboard().render()

    def test_no_timestamps_anywhere(self):
        html = full_dashboard().render()
        assert "2026" not in html  # no wall-clock leakage
        assert "date" not in html.lower()

    def test_write_round_trips(self, tmp_path):
        dash = full_dashboard()
        path = str(tmp_path / "report.html")
        assert dash.write(path) == path
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == dash.render()


# ----------------------------------------------------------------------
# Page structure
# ----------------------------------------------------------------------
class TestPage:
    def test_panels_render_in_insertion_order(self):
        html = full_dashboard().render()
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<section>") == 5
        assert html.index("Threshold sweep") < html.index("Incidents") \
            < html.index("Simulator kernel timers") \
            < html.index("Cache and incremental savings") \
            < html.index("Run ledger history")

    def test_title_and_subtitle_escaped(self):
        dash = Dashboard(title="<script>alert(1)</script>",
                         subtitle="a & b")
        html = dash.render()
        assert "<script>" not in html
        assert "&lt;script&gt;" in html
        assert "a &amp; b" in html

    def test_no_external_resources(self):
        html = full_dashboard().render()
        for marker in ("http://", "https://", "<img", "<link",
                       "src=", "@import"):
            assert marker not in html

    def test_raw_panel_title_escaped_body_trusted(self):
        dash = Dashboard()
        dash.add_panel("a <b> title", "<p>body</p>")
        html = dash.render()
        assert "a &lt;b&gt; title" in html
        assert "<p>body</p>" in html


# ----------------------------------------------------------------------
# Sweep panel
# ----------------------------------------------------------------------
class TestSweepPanel:
    def test_curves_legend_and_table(self):
        dash = Dashboard()
        dash.add_sweep_panel(sweep_points())
        html = dash.render()
        assert html.count("<polyline") == 2  # one curve per combo
        assert 'class="legend"' in html  # >= 2 series -> legend
        assert "<table>" in html  # chart always ships its data table
        assert "75-85" in html and "80-89" in html

    def test_worst_tier_envelope(self):
        """p99 plots the max across tiers; throughput plots the min."""
        points = {("c", 0.1): FakePoint(
            normalized_p99={"high": 1.0, "low": 2.5},
            normalized_throughput={"high": 1.0, "low": 0.7},
        )}
        dash = Dashboard()
        dash.add_sweep_panel(points)
        assert "2.5" in dash.render()
        dash = Dashboard()
        dash.add_sweep_panel(points, metric="normalized_throughput")
        assert "0.7" in dash.render()

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            Dashboard().add_sweep_panel(sweep_points(), metric="p99")

    def test_empty_points_degrade_gracefully(self):
        dash = Dashboard()
        dash.add_sweep_panel({})
        assert "no data points" in dash.render()

    def test_single_series_has_no_legend(self):
        dash = Dashboard()
        dash.add_sweep_panel({
            (combo, fraction): point
            for (combo, fraction), point in sweep_points().items()
            if combo == "75-85"
        })
        assert 'class="legend"' not in dash.render()


# ----------------------------------------------------------------------
# Tables, tiles, and the other panels
# ----------------------------------------------------------------------
class TestPanels:
    def test_incident_descriptions_escaped(self):
        dash = Dashboard()
        dash.add_incident_panel([{
            "rule": "x", "severity": "warn", "opened_at": 1.0,
            "resolved_at": None, "peak_value": 1,
            "description": "<img src=x onerror=alert(1)>",
        }])
        html = dash.render()
        assert "<img" not in html
        assert "&lt;img" in html
        assert "open" in html  # unresolved incidents say so

    def test_incident_objects_work_like_dicts(self):
        class Incident:
            rule = "brake-storm"
            severity = "critical"
            opened_at = 5.0
            resolved_at = 9.0
            peak_value = 7
            description = "d"

        dash = Dashboard()
        dash.add_incident_panel([Incident()])
        html = dash.render()
        assert "brake-storm" in html
        assert "9.0s" in html

    def test_empty_incidents_degrade(self):
        dash = Dashboard()
        dash.add_incident_panel([])
        assert "nothing to show" in dash.render()

    def test_kernel_panel_sorts_by_cost_with_share_bars(self):
        dash = Dashboard()
        dash.add_kernel_panel([
            {"kind": "tick", "calls": 400, "seconds": 0.1},
            {"kind": "serve", "calls": 100, "seconds": 0.3},
        ])
        html = dash.render()
        assert html.index("serve") < html.index("tick")
        assert "75.0%" in html and "25.0%" in html
        assert "<rect" in html

    def test_savings_tiles_account_for_provenance(self):
        dash = Dashboard()
        dash.add_savings_panel(ledger_entries())
        html = dash.render()
        assert "cache hits" in html
        assert "est. seconds saved" in html
        # 2 executed (mean 0.505 s) x 2 hits = 1.01 s saved.
        assert "1.01" in html

    def test_ledger_panel_groups_and_sparkline(self):
        dash = Dashboard()
        dash.add_ledger_panel(ledger_entries())
        html = dash.render()
        assert "POLCA" in html
        assert html.count("<tr>") == 2  # header + one group
        assert "<polyline" in html  # the wall-time sparkline

    def test_empty_ledger_degrades(self):
        dash = Dashboard()
        dash.add_ledger_panel([])
        dash.add_savings_panel([])
        html = dash.render()
        assert "ledger is empty" in html


# ----------------------------------------------------------------------
# Chart primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_palette_is_fixed_order_hex(self):
        assert len(PALETTE) == 8
        assert len(set(PALETTE)) == 8
        assert all(c.startswith("#") and len(c) == 7 for c in PALETTE)

    def test_series_beyond_palette_fold_to_other(self):
        series = [
            (f"s{i}", [(0.0, float(i)), (1.0, float(i))])
            for i in range(len(PALETTE) + 2)
        ]
        html = _line_chart(series, "x", "y")
        assert "s9 (other)" in html
        # No invented hues: every stroke comes from the palette.
        assert html.count(f'stroke="{PALETTE[-1]}"') >= 3

    def test_markers_only_on_sparse_series(self):
        sparse = _line_chart([("a", [(float(i), 0.0)
                                     for i in range(5)])], "x", "y")
        dense = _line_chart([("a", [(float(i), 0.0)
                                    for i in range(50)])], "x", "y")
        assert "<circle" in sparse
        assert "<circle" not in dense

    def test_flat_series_still_renders(self):
        html = _line_chart([("a", [(0.0, 1.0), (1.0, 1.0)])], "x", "y")
        assert "<polyline" in html

    def test_sparkline_needs_two_points(self):
        assert "&mdash;" in render_sparkline([])
        assert "&mdash;" in render_sparkline([1.0])
        assert "<svg" in render_sparkline([1.0, 2.0, 1.5])

    def test_downsample_keeps_endpoints_under_limit(self):
        points = [(float(i), float(i)) for i in range(1000)]
        sampled = _downsample(points, limit=100)
        assert len(sampled) <= 102
        assert sampled[0] == points[0]
        assert sampled[-1] == points[-1]
        assert _downsample(points[:50], limit=100) == points[:50]

    def test_fmt_is_compact_and_safe(self):
        assert _fmt(0.30000000000000004) == "0.3"
        assert _fmt(1.25e7) == "1.25e+07"
        assert _fmt(None) == "None"
        assert _fmt(True) == "True"
        assert _fmt("<td>") == "&lt;td&gt;"
        assert _fmt(float("nan")) == "nan"

    def test_ticks_cover_the_span_in_round_steps(self):
        ticks = _ticks(0.0, 1.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 1.0
        assert len(ticks) >= 3
        assert _ticks(5.0, 5.0) == [5.0]


class TestShardPanel:
    EVENTS = [
        {"kind": "run_meta", "t": 0.0},
        {"kind": "control", "t": 30.0, "utilization": 0.5},
        {"kind": "serve", "t": 10.0, "server": "s0", "latency_s": 1.0},
        {"kind": "serve", "t": 20.0, "server": "s2", "latency_s": 2.0},
        {"kind": "drop", "t": 25.0, "server": "s0", "reason": "queue"},
        {"kind": "serve", "t": 40.0, "server": "s1", "latency_s": 3.0},
    ]

    def test_groups_events_by_shard_with_control_plane(self):
        dash = Dashboard()
        dash.add_shard_panel(self.EVENTS, n_shards=2)
        html = dash.render()
        assert "shard 0" in html and "shard 1" in html
        assert "control plane" in html
        # shard 0 owns s0 and s2: two serves and a drop, serve dominant
        row = html[html.index("shard 0"):html.index("shard 1")]
        assert "<td>3</td>" in row and "<td>serve</td>" in row

    def test_render_is_byte_identical(self):
        def build():
            dash = Dashboard(title="shards")
            dash.add_shard_panel(self.EVENTS, n_shards=2)
            return dash.render()

        assert build() == build()

    def test_rates_use_the_trace_time_span(self):
        dash = Dashboard()
        dash.add_shard_panel(self.EVENTS, n_shards=2)
        # span is 40 s; the control plane row holds 2 events -> 0.05/s
        assert "<td>0.05</td>" in dash.render()

    def test_empty_events_degrade_gracefully(self):
        dash = Dashboard()
        dash.add_shard_panel([], n_shards=4)
        assert "nothing to show" in dash.render()

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            Dashboard().add_shard_panel(self.EVENTS, n_shards=0)
