"""Streaming aggregation: online values equal the post-hoc recompute.

Two guarantees anchor this suite. First, every streaming aggregate —
EWMA, rolling rate, window max, window quantile — must equal a
brute-force recomputation over the recorded trace of the same events
(property-tested with hypothesis over random event sequences). Second,
attaching any live consumer (StreamMonitor, TeeRecorder, or both teed
with storage sinks) must leave the simulation bit-identical across the
reference configurations: monitors observe, never perturb.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    AlertEngine,
    MemoryRecorder,
    NullRecorder,
    StreamMonitor,
    TeeRecorder,
)
from repro.obs.stream import Ewma, RollingRate, WindowMax, WindowQuantile
from tests.test_obs import (
    REFERENCE_CONFIGS,
    assert_results_bit_identical,
    run_reference,
)

WINDOW_S = 10.0
HALFLIFE_S = 7.0


def make_samples(deltas_values):
    """Turn (dt, value) pairs into (t, value) with nondecreasing t."""
    t, samples = 0.0, []
    for dt, value in deltas_values:
        t += dt
        samples.append((t, value))
    return samples


def sample_events(samples):
    return [{"kind": "sample", "t": t, "v": v} for t, v in samples]


# Brute-force references, recomputed from scratch at query time.
def ewma_ref(samples, halflife_s):
    value, last_t = None, None
    for t, x in samples:
        if value is None:
            value = x
        else:
            decay = 0.5 ** ((t - last_t) / halflife_s)
            value = decay * value + (1.0 - decay) * x
        last_t = t
    return value


def window_values(samples, now, window_s):
    """Values inside the half-open window ``(now - window_s, now]``."""
    return [x for t, x in samples if now - window_s < t <= now]


def quantile_ref(values, q):
    """Numpy-style linear-interpolation quantile of a value list."""
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    lower = int(rank)
    frac = rank - lower
    if frac == 0.0 or lower + 1 >= len(ordered):
        return ordered[lower]
    return ordered[lower] + frac * (ordered[lower + 1] - ordered[lower])


SAMPLES = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0 * WINDOW_S,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=60,
)


# ----------------------------------------------------------------------
# Property: streaming == brute-force recompute over the recorded trace
# ----------------------------------------------------------------------
class TestStreamingEqualsPostHoc:
    @settings(max_examples=60, deadline=None)
    @given(SAMPLES)
    def test_all_aggregates_match_recompute_from_recorded_trace(
        self, deltas_values
    ):
        monitor = StreamMonitor()
        monitor.ewma("ewma", kind="sample", field="v",
                     halflife_s=HALFLIFE_S)
        monitor.rate("rate", kind="sample", window_s=WINDOW_S)
        monitor.window_max("max", kind="sample", field="v",
                           window_s=WINDOW_S)
        monitor.quantile("median", kind="sample", field="v",
                         window_s=WINDOW_S, q=0.5)
        monitor.quantile("p90", kind="sample", field="v",
                         window_s=WINDOW_S, q=0.9)
        trace = MemoryRecorder()
        tee = TeeRecorder([trace, monitor])

        samples = make_samples(deltas_values)
        for event in sample_events(samples):
            tee.emit(event)

        # Recompute every aggregate post hoc from the recorded trace.
        recorded = [(e["t"], e["v"]) for e in trace.events]
        assert recorded == samples
        now = recorded[-1][0]
        windowed = window_values(recorded, now, WINDOW_S)

        assert monitor.value("ewma") == pytest.approx(
            ewma_ref(recorded, HALFLIFE_S), rel=1e-12, abs=1e-9
        )
        assert monitor.value("rate") == pytest.approx(
            len(windowed) / WINDOW_S
        )
        assert monitor.value("max") == max(windowed)
        for name, q in (("median", 0.5), ("p90", 0.9)):
            assert monitor.value(name) == pytest.approx(
                quantile_ref(windowed, q), rel=1e-9, abs=1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(SAMPLES, st.floats(min_value=0.0, max_value=4.0 * WINDOW_S,
                              allow_nan=False, allow_infinity=False))
    def test_window_aggregates_after_quiet_period(
        self, deltas_values, quiet_s
    ):
        """Querying later than the last event drains the windows."""
        monitor = StreamMonitor()
        monitor.rate("rate", kind="sample", window_s=WINDOW_S)
        monitor.window_max("max", kind="sample", field="v",
                           window_s=WINDOW_S)
        monitor.quantile("median", kind="sample", field="v",
                         window_s=WINDOW_S, q=0.5)
        samples = make_samples(deltas_values)
        for event in sample_events(samples):
            monitor.emit(event)
        now = samples[-1][0] + quiet_s
        windowed = window_values(samples, now, WINDOW_S)
        assert monitor.value("rate", now=now) == pytest.approx(
            len(windowed) / WINDOW_S
        )
        if windowed:
            assert monitor.value("max", now=now) == max(windowed)
            assert monitor.value("median", now=now) == pytest.approx(
                quantile_ref(windowed, 0.5), rel=1e-9, abs=1e-9
            )
        else:
            assert monitor.value("max", now=now) is None
            assert monitor.value("median", now=now) is None


# ----------------------------------------------------------------------
# Aggregator unit behavior
# ----------------------------------------------------------------------
class TestAggregators:
    def test_ewma_halflife_is_a_halflife(self):
        ewma = Ewma(halflife_s=10.0)
        ewma.observe(0.0, 0.0)
        ewma.observe(10.0, 1.0)  # exactly one half-life later
        assert ewma.current() == pytest.approx(0.5)

    def test_ewma_zero_dt_sample_carries_zero_weight(self):
        ewma = Ewma(halflife_s=10.0)
        ewma.observe(5.0, 3.0)
        ewma.observe(5.0, 100.0)  # same instant: decay == 1.0
        assert ewma.current() == 3.0

    def test_ewma_empty_is_none(self):
        assert Ewma(halflife_s=1.0).current() is None

    def test_rolling_rate_window_is_half_open(self):
        rate = RollingRate(window_s=10.0)
        rate.observe(0.0)
        rate.observe(5.0)
        # The t=0 arrival sits exactly on the cutoff at now=10: evicted.
        assert rate.count(10.0) == 1
        assert rate.current(10.0) == pytest.approx(0.1)
        assert rate.count(15.0) == 0

    def test_window_max_handles_duplicates_and_eviction(self):
        wmax = WindowMax(window_s=10.0)
        wmax.observe(0.0, 5.0)
        wmax.observe(1.0, 5.0)
        wmax.observe(2.0, 3.0)
        assert wmax.current(2.0) == 5.0
        assert wmax.current(11.0) == 3.0  # both 5.0s evicted
        assert wmax.current(30.0) is None

    def test_window_quantile_interpolates(self):
        quant = WindowQuantile(window_s=100.0, q=0.5)
        for i, v in enumerate([1.0, 2.0, 3.0, 10.0]):
            quant.observe(float(i), v)
        assert quant.current(3.0) == pytest.approx(2.5)

    def test_window_quantile_extremes(self):
        low = WindowQuantile(window_s=100.0, q=0.0)
        high = WindowQuantile(window_s=100.0, q=1.0)
        for agg in (low, high):
            for i, v in enumerate([4.0, -2.0, 9.0]):
                agg.observe(float(i), v)
        assert low.current(2.0) == -2.0
        assert high.current(2.0) == 9.0
        assert low.current(500.0) is None

    @pytest.mark.parametrize("factory", [
        lambda: Ewma(0.0),
        lambda: Ewma(-1.0),
        lambda: RollingRate(0.0),
        lambda: WindowMax(-3.0),
        lambda: WindowQuantile(0.0, 0.5),
        lambda: WindowQuantile(10.0, -0.1),
        lambda: WindowQuantile(10.0, 1.5),
    ])
    def test_invalid_parameters_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            factory()


# ----------------------------------------------------------------------
# StreamMonitor routing
# ----------------------------------------------------------------------
class TestStreamMonitor:
    def test_duplicate_probe_name_rejected(self):
        monitor = StreamMonitor()
        monitor.rate("x", kind="serve", window_s=1.0)
        with pytest.raises(ConfigurationError):
            monitor.ewma("x", kind="control", field="u", halflife_s=1.0)

    def test_unknown_probe_name_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamMonitor().value("nope")

    def test_no_data_yet_is_none(self):
        monitor = StreamMonitor()
        monitor.rate("r", kind="serve", window_s=1.0)
        assert monitor.value("r") is None

    def test_events_without_time_or_field_are_ignored(self):
        monitor = StreamMonitor()
        monitor.ewma("power", kind="control", field="observed_power_w",
                     halflife_s=1.0)
        monitor.emit({"kind": "engine_run", "digest": "abc"})  # no "t"
        monitor.emit({"kind": "control", "t": 1.0})  # field absent
        monitor.emit({"kind": "serve", "t": 2.0, "latency_s": 0.5})
        assert monitor.value("power") is None
        monitor.emit({"kind": "control", "t": 3.0,
                      "observed_power_w": 100.0})
        assert monitor.value("power") == 100.0

    def test_snapshot_carries_stream_section(self):
        monitor = StreamMonitor()
        monitor.rate("serves", kind="serve", window_s=10.0)
        monitor.emit({"kind": "serve", "t": 1.0})
        monitor.finalize(5.0)
        snapshot = monitor.observability_snapshot()
        assert snapshot == {"stream": {"serves": pytest.approx(0.1)}}
        assert StreamMonitor().observability_snapshot() is None

    def test_finalize_moves_the_query_frontier(self):
        monitor = StreamMonitor()
        monitor.rate("serves", kind="serve", window_s=10.0)
        monitor.emit({"kind": "serve", "t": 1.0})
        assert monitor.value("serves") == pytest.approx(0.1)
        monitor.finalize(100.0)  # window drains by the end of the run
        assert monitor.value("serves") == 0.0


# ----------------------------------------------------------------------
# TeeRecorder composition
# ----------------------------------------------------------------------
class TestTeeRecorder:
    def test_fans_out_in_child_order(self):
        a, b = MemoryRecorder(), MemoryRecorder()
        tee = TeeRecorder([a, b])
        tee.emit({"kind": "serve", "t": 1.0})
        assert a.events == b.events == [{"kind": "serve", "t": 1.0}]

    def test_disabled_children_are_skipped(self):
        memory = MemoryRecorder()
        tee = TeeRecorder([NullRecorder(), memory])
        assert tee.enabled
        tee.emit({"kind": "serve", "t": 1.0})
        assert len(memory) == 1

    def test_tee_of_disabled_children_is_disabled(self):
        assert TeeRecorder([NullRecorder()]).enabled is False
        assert TeeRecorder([]).enabled is False

    def test_snapshot_merges_dicts_keywise_later_child_wins(self):
        class Fake(MemoryRecorder):
            def __init__(self, snapshot):
                super().__init__()
                self._snapshot = snapshot

            def observability_snapshot(self):
                return self._snapshot

        tee = TeeRecorder([
            Fake({"stream": {"a": 1.0, "b": 2.0}, "scalar": "first"}),
            Fake(None),
            Fake({"stream": {"b": 9.0}, "scalar": "second"}),
        ])
        assert tee.observability_snapshot() == {
            "stream": {"a": 1.0, "b": 9.0},
            "scalar": "second",
        }
        assert TeeRecorder([MemoryRecorder()]) \
            .observability_snapshot() is None

    def test_close_closes_every_child_even_disabled(self, tmp_path):
        from repro.obs import JsonlRecorder

        sink = JsonlRecorder(str(tmp_path / "t.jsonl"))
        null = NullRecorder()
        tee = TeeRecorder([null, sink])
        tee.emit({"kind": "serve", "t": 1.0})
        tee.close()
        with pytest.raises(ConfigurationError):
            sink.emit({"kind": "serve", "t": 2.0})


# ----------------------------------------------------------------------
# Bit-identical parity with live monitoring attached
# ----------------------------------------------------------------------
def monitored_recorder():
    monitor = StreamMonitor()
    monitor.ewma("power_ewma_w", kind="control",
                 field="observed_power_w", halflife_s=60.0)
    monitor.quantile("util_p95", kind="control", field="utilization",
                     window_s=120.0, q=0.95)
    monitor.window_max("util_peak", kind="control", field="utilization",
                       window_s=120.0)
    monitor.rate("brake_rate", kind="brake_request", window_s=600.0)
    return TeeRecorder([MemoryRecorder(), monitor, AlertEngine()])


class TestLiveMonitoringParity:
    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_live_monitoring_is_bit_identical_to_bare(self, name):
        bare = run_reference(name)
        monitored = run_reference(name, recorder=monitored_recorder())
        assert_results_bit_identical(bare, monitored)
        obs = monitored.observability
        assert set(obs["stream"]) == {
            "brake_rate", "power_ewma_w", "util_p95", "util_peak",
        }
        assert obs["stream"]["power_ewma_w"] > 0
        assert isinstance(obs["incidents"], list)
        assert obs["alerts"]["opened"] == len(obs["incidents"])
        # The metrics sections are still the simulator's own.
        assert obs["counters"]["requests.served"] == monitored.total_served

    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_filtered_monitoring_is_bit_identical_to_bare(self, name):
        bare = run_reference(name)
        filtered = run_reference(
            name, recorder=MemoryRecorder(kinds=["control"])
        )
        assert_results_bit_identical(bare, filtered)

    def test_recorder_snapshot_cannot_shadow_simulator_sections(self):
        class Hostile(MemoryRecorder):
            def observability_snapshot(self):
                return {"counters": {"fake": 1}, "custom": "kept"}

        result = run_reference("polca-default", recorder=Hostile())
        # The simulator's own counters win; novel keys merge in.
        assert "fake" not in result.observability["counters"]
        assert result.observability["custom"] == "kept"

    def test_snapshot_with_stream_survives_the_result_codec(self):
        import json

        from repro.exec import result_from_dict, result_to_dict

        result = run_reference(
            "nocap-power-scaled", recorder=monitored_recorder()
        )
        decoded = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert decoded.observability == result.observability
