"""Inference requests and phase timelines."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.specs import A100_80GB
from repro.models.inference import (
    InferenceRequest,
    PhaseSegment,
    request_timeline,
)
from repro.models.registry import get_model


def bloom_request(**overrides):
    defaults = dict(model_name="BLOOM-176B", input_tokens=2048,
                    output_tokens=256, batch_size=1)
    defaults.update(overrides)
    return InferenceRequest(**defaults)


class TestInferenceRequest:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            bloom_request(input_tokens=0)
        with pytest.raises(ConfigurationError):
            bloom_request(output_tokens=0)
        with pytest.raises(ConfigurationError):
            bloom_request(batch_size=0)

    def test_with_sizes_replaces_selectively(self):
        request = bloom_request()
        changed = request.with_sizes(input_tokens=4096)
        assert changed.input_tokens == 4096
        assert changed.output_tokens == request.output_tokens
        assert changed.model_name == request.model_name


class TestPhaseSegment:
    def test_compute_bound_duration_scales_inversely(self):
        segment = PhaseSegment("prompt", 1.0, 0.9, compute_fraction=1.0)
        assert segment.duration_at(0.5) == pytest.approx(2.0)

    def test_memory_bound_duration_unchanged(self):
        segment = PhaseSegment("token", 1.0, 0.5, compute_fraction=0.0)
        assert segment.duration_at(0.5) == pytest.approx(1.0)

    def test_mixed_sensitivity(self):
        segment = PhaseSegment("token", 1.0, 0.5, compute_fraction=0.2)
        assert segment.duration_at(0.5) == pytest.approx(1.2)

    def test_invalid_clock_ratio_rejected(self):
        segment = PhaseSegment("token", 1.0, 0.5, 0.5)
        with pytest.raises(ConfigurationError):
            segment.duration_at(0.0)


class TestRequestTimeline:
    def test_two_phases_in_order(self):
        timeline = request_timeline(
            get_model("BLOOM-176B"), A100_80GB, bloom_request()
        )
        assert [seg.phase for seg in timeline.segments] == ["prompt", "token"]

    def test_prompt_is_the_peak(self):
        """Insight 4: the spike is the prompt, the plateau is the token."""
        timeline = request_timeline(
            get_model("BLOOM-176B"), A100_80GB, bloom_request()
        )
        prompt, token = timeline.segments
        assert prompt.activity > token.activity
        assert timeline.peak_activity() == prompt.activity

    def test_token_phase_is_longer(self):
        timeline = request_timeline(
            get_model("BLOOM-176B"), A100_80GB, bloom_request()
        )
        prompt, token = timeline.segments
        assert token.duration_seconds > prompt.duration_seconds

    def test_mean_activity_near_token_level(self):
        timeline = request_timeline(
            get_model("BLOOM-176B"), A100_80GB, bloom_request(output_tokens=1024)
        )
        token = timeline.segments[1]
        assert timeline.mean_activity() == pytest.approx(
            token.activity, abs=0.05
        )

    def test_total_stretches_under_lock(self):
        timeline = request_timeline(
            get_model("BLOOM-176B"), A100_80GB, bloom_request()
        )
        assert timeline.total_seconds(0.8) > timeline.total_seconds(1.0)

    def test_mismatched_model_rejected(self):
        with pytest.raises(ConfigurationError):
            request_timeline(
                get_model("OPT-30B"), A100_80GB, bloom_request()
            )

    def test_prompt_fully_compute_bound_token_weakly(self):
        spec = get_model("BLOOM-176B")
        timeline = request_timeline(spec, A100_80GB, bloom_request())
        prompt, token = timeline.segments
        assert prompt.compute_fraction == 1.0
        assert token.compute_fraction == \
            spec.calibration.token_clock_sensitivity
