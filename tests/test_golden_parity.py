"""Golden-result parity: the simulator must match its pre-SoA self.

``tests/data/golden_reference_results_v5.json`` holds the six reference
configurations' full results, captured from the simulator immediately
before the struct-of-arrays core refactor (and serialized with codec
schema 5 — the file doubles as the v5 compat-shim regression snapshot).
Every refactor of the hot path must keep the simulator bit-identical to
these: same power series, same energy integral, same latency lists,
same robustness counters.
"""

import json
from pathlib import Path

import pytest

from repro.exec.codec import result_from_dict, result_to_dict
from repro.obs import MemoryRecorder

from .test_obs import REFERENCE_CONFIGS, run_reference

GOLDEN_PATH = (
    Path(__file__).parent / "data" / "golden_reference_results_v5.json"
)


@pytest.fixture(scope="module")
def goldens():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _comparable(payload):
    """Strip fields allowed to drift across schema bumps.

    ``schema`` tracks the codec, not the simulation; ``observability``
    only exists when recording (and is None in the bare-run goldens).
    """
    out = dict(payload)
    out.pop("schema")
    out.pop("observability")
    return out


@pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
def test_bare_run_matches_golden(name, goldens):
    result = run_reference(name)
    assert _comparable(result_to_dict(result)) == _comparable(goldens[name])


@pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
def test_recorded_run_matches_golden(name, goldens):
    result = run_reference(name, recorder=MemoryRecorder())
    assert _comparable(result_to_dict(result)) == _comparable(goldens[name])
    assert result.observability is not None


@pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
def test_goldens_decode_under_v5_compat(name, goldens):
    """The checked-in schema-5 snapshots stay loadable after bumps."""
    assert goldens[name]["schema"] == 5
    decoded = result_from_dict(goldens[name])
    assert _comparable(result_to_dict(decoded)) == _comparable(goldens[name])
