"""Per-workload metrics and energy accounting in the simulator."""

from collections import Counter
from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy
from repro.core.policy import DualThresholdPolicy
from repro.errors import ConfigurationError
from repro.faults import ChurnSpec, FaultPlan, ServerChurnEvent
from repro.workloads.requests import RequestSampler


def make_requests(rate, duration, seed=0):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= duration:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


@pytest.fixture(scope="module")
def result():
    config = ClusterConfig(n_base_servers=6, seed=0)
    requests = make_requests(0.5, 600.0)
    return ClusterSimulator(config, NoCapPolicy()).run(requests, 600.0), \
        requests


class TestPerWorkloadMetrics:
    def test_workload_names_are_table6(self, result):
        run, _ = result
        assert set(run.per_workload) <= {"Summarize", "Search", "Chat"}

    def test_workload_counts_sum_to_priority_counts(self, result):
        run, _ = result
        workload_total = sum(m.served for m in run.per_workload.values())
        priority_total = sum(m.served for m in run.per_priority.values())
        assert workload_total == priority_total

    def test_workload_latency_summary(self, result):
        run, _ = result
        summary = run.workload_summary("Chat")
        assert summary.count == run.per_workload["Chat"].served
        assert summary.p50 > 0

    def test_unknown_workload_rejected(self, result):
        run, _ = result
        with pytest.raises(ConfigurationError):
            run.workload_summary("Translate")

    def test_search_slower_than_summarize(self, result):
        """Search generates 1024-2048 tokens vs Summarize's 256-512, so
        its latencies are much higher (Figure 8f: latency ~ output)."""
        run, _ = result
        assert run.workload_summary("Search").p50 > \
            2 * run.workload_summary("Summarize").p50


class TestEnergyAccounting:
    def test_energy_close_to_mean_power_times_duration(self, result):
        run, _ = result
        approx = run.power_series.mean() * run.duration_s
        # The integral clamps at duration_s (in-flight requests drain
        # afterwards and their latencies count, but their energy does
        # not), so it tracks the telemetry-window product closely; the
        # slack covers sampling (left-endpoint telemetry vs the exact
        # piecewise integral).
        assert approx * 0.95 <= run.total_energy_j <= approx * 1.1

    def test_integration_clamps_at_duration_despite_drain(self):
        """The drain of in-flight requests past duration_s must not leak
        into the energy/exposure integrals. With a budget the row always
        exceeds, time-at-risk equals duration_s *exactly* — the old
        unclamped integral kept accumulating until the last drain event.
        """
        from repro.obs import MemoryRecorder

        duration = 120.0
        config = ClusterConfig(
            n_base_servers=6, seed=7, provisioned_per_server_w=1.0
        )
        recorder = MemoryRecorder(kinds=["serve"])
        simulator = ClusterSimulator(config, NoCapPolicy(), recorder)
        run = simulator.run(make_requests(2.0, duration, seed=7), duration)
        # The scenario is only meaningful if work actually drained after
        # the horizon (in-flight latencies still count).
        last_serve = max(e["t"] for e in recorder.events)
        assert last_serve > duration
        report = run.robustness
        assert report.time_at_risk_s == pytest.approx(duration)
        assert report.time_at_risk_s <= duration
        assert report.longest_overbudget_s <= duration
        # Same clamp on the energy integral: no more power x time than
        # the horizon can hold.
        peak_w = 6 * 6000.0
        assert run.total_energy_j <= peak_w * duration

    def test_energy_positive_and_bounded(self, result):
        run, _ = result
        config_servers = 6
        ceiling = config_servers * 6000.0 * (run.duration_s * 1.5)
        assert 0 < run.total_energy_j < ceiling

    def test_energy_per_request(self, result):
        run, _ = result
        assert run.energy_per_request_j == pytest.approx(
            run.total_energy_j / run.total_served
        )

    def test_capping_reduces_energy_under_equal_load(self):
        """Frequency capping trades latency for energy: the capped run
        consumes less total energy on the same request trace."""
        requests = make_requests(1.0, 600.0, seed=2)
        config = ClusterConfig(n_base_servers=6, seed=2)

        class AlwaysCap(NoCapPolicy):
            def desired_caps(self, utilization, now=0.0):
                from repro.cluster.policy_base import GroupCaps
                return GroupCaps(low_clock_mhz=1110.0,
                                 high_clock_mhz=1110.0)

        free = ClusterSimulator(config, NoCapPolicy()).run(requests, 600.0)
        capped = ClusterSimulator(config, AlwaysCap()).run(requests, 600.0)
        assert capped.total_energy_j < free.total_energy_j

    def test_polca_energy_not_worse_than_uncapped(self):
        requests = make_requests(1.0, 600.0, seed=3)
        config = ClusterConfig(n_base_servers=6, seed=3)
        free = ClusterSimulator(config, NoCapPolicy()).run(requests, 600.0)
        polca = ClusterSimulator(config, DualThresholdPolicy()).run(
            requests, 600.0
        )
        assert polca.total_energy_j <= free.total_energy_j * 1.02


class TestChurnAccountingInvariant:
    """Request conservation under server churn.

    Every offered request must end up either served or counted dropped
    — in *both* the per-priority and the per-workload ledgers — even
    while servers crash with requests in flight, recover, and the
    telemetry/actuation layers misbehave. A server failure that silently
    swallowed its in-flight requests would break ``served + dropped ==
    offered`` for the affected tiers.
    """

    @staticmethod
    def _adversarial_plan(seed):
        base = FaultPlan.adversarial(seed=seed)
        # adversarial()'s single churn event fires at t=3600 s — far past
        # this test's horizon. Swap in crashes that land mid-run, one of
        # them permanent, one overlapping another server's outage.
        return replace(base, churn=ChurnSpec(events=(
            ServerChurnEvent(server_index=0, fail_at_s=60.0,
                             recover_at_s=180.0),
            ServerChurnEvent(server_index=2, fail_at_s=120.0,
                             recover_at_s=260.0),
            ServerChurnEvent(server_index=4, fail_at_s=200.0),
        )))

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_served_plus_dropped_equals_offered_per_tier(self, seed):
        duration = 400.0
        requests = make_requests(3.0, duration, seed=seed)
        config = ClusterConfig(
            n_base_servers=6, seed=seed,
            fault_plan=self._adversarial_plan(seed),
        )
        run = ClusterSimulator(config, DualThresholdPolicy()).run(
            requests, duration
        )
        assert run.robustness.server_failures == 3
        assert run.robustness.requests_lost_to_churn > 0

        offered_by_priority = Counter(r.priority for r in requests)
        offered_by_workload = Counter(r.workload.name for r in requests)
        for priority, metrics in run.per_priority.items():
            assert metrics.served + metrics.dropped == metrics.offered
            assert metrics.offered == offered_by_priority[priority], \
                f"{priority} tier lost requests to churn unaccounted"
        for name, metrics in run.per_workload.items():
            assert metrics.served + metrics.dropped == metrics.offered
            assert metrics.offered == offered_by_workload[name], \
                f"workload {name} lost requests to churn unaccounted"
        # Nothing invented either: ledger totals match the trace.
        assert sum(m.offered for m in run.per_priority.values()) == \
            len(requests)
