"""Per-workload metrics and energy accounting in the simulator."""

import numpy as np
import pytest

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy
from repro.core.policy import DualThresholdPolicy
from repro.errors import ConfigurationError
from repro.workloads.requests import RequestSampler
from repro.workloads.spec import Priority


def make_requests(rate, duration, seed=0):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= duration:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


@pytest.fixture(scope="module")
def result():
    config = ClusterConfig(n_base_servers=6, seed=0)
    requests = make_requests(0.5, 600.0)
    return ClusterSimulator(config, NoCapPolicy()).run(requests, 600.0), \
        requests


class TestPerWorkloadMetrics:
    def test_workload_names_are_table6(self, result):
        run, _ = result
        assert set(run.per_workload) <= {"Summarize", "Search", "Chat"}

    def test_workload_counts_sum_to_priority_counts(self, result):
        run, _ = result
        workload_total = sum(m.served for m in run.per_workload.values())
        priority_total = sum(m.served for m in run.per_priority.values())
        assert workload_total == priority_total

    def test_workload_latency_summary(self, result):
        run, _ = result
        summary = run.workload_summary("Chat")
        assert summary.count == run.per_workload["Chat"].served
        assert summary.p50 > 0

    def test_unknown_workload_rejected(self, result):
        run, _ = result
        with pytest.raises(ConfigurationError):
            run.workload_summary("Translate")

    def test_search_slower_than_summarize(self, result):
        """Search generates 1024-2048 tokens vs Summarize's 256-512, so
        its latencies are much higher (Figure 8f: latency ~ output)."""
        run, _ = result
        assert run.workload_summary("Search").p50 > \
            2 * run.workload_summary("Summarize").p50


class TestEnergyAccounting:
    def test_energy_close_to_mean_power_times_duration(self, result):
        run, _ = result
        approx = run.power_series.mean() * run.duration_s
        # The integral also covers the post-duration drain, so it exceeds
        # the telemetry-window product slightly.
        assert approx * 0.95 <= run.total_energy_j <= approx * 1.4

    def test_energy_positive_and_bounded(self, result):
        run, _ = result
        config_servers = 6
        ceiling = config_servers * 6000.0 * (run.duration_s * 1.5)
        assert 0 < run.total_energy_j < ceiling

    def test_energy_per_request(self, result):
        run, _ = result
        assert run.energy_per_request_j == pytest.approx(
            run.total_energy_j / run.total_served
        )

    def test_capping_reduces_energy_under_equal_load(self):
        """Frequency capping trades latency for energy: the capped run
        consumes less total energy on the same request trace."""
        requests = make_requests(1.0, 600.0, seed=2)
        config = ClusterConfig(n_base_servers=6, seed=2)

        class AlwaysCap(NoCapPolicy):
            def desired_caps(self, utilization, now=0.0):
                from repro.cluster.policy_base import GroupCaps
                return GroupCaps(low_clock_mhz=1110.0,
                                 high_clock_mhz=1110.0)

        free = ClusterSimulator(config, NoCapPolicy()).run(requests, 600.0)
        capped = ClusterSimulator(config, AlwaysCap()).run(requests, 600.0)
        assert capped.total_energy_j < free.total_energy_j

    def test_polca_energy_not_worse_than_uncapped(self):
        requests = make_requests(1.0, 600.0, seed=3)
        config = ClusterConfig(n_base_servers=6, seed=3)
        free = ClusterSimulator(config, NoCapPolicy()).run(requests, 600.0)
        polca = ClusterSimulator(config, DualThresholdPolicy()).run(
            requests, 600.0
        )
        assert polca.total_energy_j <= free.total_energy_j * 1.02
