"""Characterization drivers behind the Section 4 figures."""

import numpy as np
import pytest

from repro.characterization import (
    config_sweep,
    frequency_sensitivity,
    frequency_tradeoff,
    inference_power_series,
    phase_correlation_matrices,
    repeated_inference_series,
    training_cluster_patterns,
)
from repro.characterization.sweeps import BATCH_SIZES, INPUT_SIZES, OUTPUT_SIZES
from repro.errors import ConfigurationError
from repro.gpu.specs import A100_80GB
from repro.models.inference import InferenceRequest
from repro.models.registry import get_model


class TestFigure6Series:
    def test_three_requests_three_spikes(self):
        series = repeated_inference_series("BLOOM-176B", n_requests=3)
        tdp = A100_80GB.tdp_w
        above = series.values > 0.95 * tdp
        # Spikes form distinct clusters (prompt of each request).
        clusters = int(np.sum(np.diff(above.astype(int)) == 1))
        clusters += int(above[0])
        assert clusters == 3

    def test_prompt_spike_reaches_tdp(self):
        series = repeated_inference_series("BLOOM-176B")
        assert series.peak() >= A100_80GB.tdp_w

    def test_token_plateau_below_peak(self):
        series = repeated_inference_series("BLOOM-176B", n_requests=1)
        # The long tail of the series is the token plateau.
        tail = series.values[len(series) // 2:]
        assert tail.mean() < 0.85 * series.peak()

    def test_zero_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            repeated_inference_series("BLOOM-176B", n_requests=0)


class TestFigure9Capping:
    @pytest.fixture()
    def bloom_request(self):
        return InferenceRequest("BLOOM-176B", 8192, 128)

    def test_both_knobs_rejected(self, bloom_request):
        with pytest.raises(ConfigurationError):
            inference_power_series(
                get_model("BLOOM-176B"), bloom_request,
                frequency_lock_mhz=1100.0, power_cap_w=325.0,
            )

    def test_power_cap_overshoots_then_converges(self, bloom_request):
        """Figure 9b: the reactive cap lets the spike partially through."""
        capped = inference_power_series(
            get_model("BLOOM-176B"), bloom_request, power_cap_w=325.0, noise_std=0.0
        )
        assert capped.peak() > 325.0          # overshoot exists
        assert capped.peak() < 469.0          # but is partially absorbed
        assert capped.values[-10:].mean() < 330.0  # converged under cap

    def test_frequency_lock_never_overshoots(self, bloom_request):
        """Figure 9c: locking is proactive — no spike above the locked
        level."""
        locked = inference_power_series(
            get_model("BLOOM-176B"), bloom_request,
            frequency_lock_mhz=1100.0, noise_std=0.0,
        )
        uncapped = inference_power_series(
            get_model("BLOOM-176B"), bloom_request, noise_std=0.0
        )
        assert locked.peak() < 0.80 * uncapped.peak()

    def test_frequency_lock_stretches_duration(self, bloom_request):
        locked = inference_power_series(
            get_model("BLOOM-176B"), bloom_request, frequency_lock_mhz=1100.0
        )
        uncapped = inference_power_series(get_model("BLOOM-176B"), bloom_request)
        assert locked.duration > uncapped.duration


class TestFigure8Sweeps:
    def test_input_sweep_moves_peak_not_mean(self):
        """Figure 8a: peak rises drastically, mean stays flat."""
        points = config_sweep("BLOOM-176B", "input")
        peaks = [p.peak_power_ratio for p in points]
        means = [p.mean_power_ratio for p in points]
        peak_change = peaks[-1] - peaks[0]
        mean_change = abs(means[-1] - means[0])
        assert peak_change > 0.25
        # The mean (token-dominated) moves far less than the peak.
        assert mean_change < 0.5 * peak_change

    def test_input_sweep_latency_flat_until_long_prompts(self):
        """Figure 8b: latency barely moves until >4096 input tokens."""
        points = config_sweep("BLOOM-176B", "input")
        latencies = {p.value: p.latency_seconds for p in points}
        assert latencies[2048] / latencies[256] < 1.25
        assert latencies[8192] / latencies[4096] > 1.15

    def test_batch_sweep_raises_peak_and_mean(self):
        """Figure 8c: peak like a larger prompt; mean gradually up."""
        points = config_sweep("BLOOM-176B", "batch")
        assert points[-1].peak_power_ratio >= points[0].peak_power_ratio
        assert points[-1].mean_power_ratio > points[0].mean_power_ratio

    def test_output_sweep_only_stretches_latency(self):
        """Figure 8e/8f: output size leaves power untouched, latency
        linear."""
        points = config_sweep("BLOOM-176B", "output")
        peaks = {p.value: p.peak_power_ratio for p in points}
        latencies = {p.value: p.latency_seconds for p in points}
        assert peaks[4096] == pytest.approx(peaks[128], abs=0.01)
        assert latencies[4096] / latencies[512] == pytest.approx(8.0, rel=0.25)

    def test_default_axis_values(self):
        assert config_sweep("OPT-30B", "input")[0].value == INPUT_SIZES[0]
        assert len(config_sweep("OPT-30B", "batch")) == len(BATCH_SIZES)
        assert len(config_sweep("OPT-30B", "output")) == len(OUTPUT_SIZES)

    def test_larger_models_draw_more(self):
        """Figure 8: BLOOM's bars top the others at equal config."""
        bloom = config_sweep("BLOOM-176B", "input", values=[4096])[0]
        flan = config_sweep("Flan-T5-XXL", "input", values=[4096])[0]
        assert bloom.peak_power_ratio > flan.peak_power_ratio

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigurationError):
            config_sweep("BLOOM-176B", "temperature")


class TestFigure10Frequency:
    def test_superlinear_tradeoff(self):
        """Insight 7: peak-power reduction exceeds performance loss."""
        for point in frequency_tradeoff("BLOOM-176B"):
            assert point.peak_power_reduction >= point.performance_reduction

    def test_bloom_more_sensitive_than_neox(self):
        """Figure 10a's ordering at a ~13% peak-power reduction."""
        def loss_at_13pct(model_name):
            points = frequency_tradeoff(model_name)
            return min(
                points,
                key=lambda p: abs(p.peak_power_reduction - 0.13),
            ).performance_reduction
        assert loss_at_13pct("BLOOM-176B") > loss_at_13pct("GPT-NeoX-20B")
        assert loss_at_13pct("BLOOM-176B") == pytest.approx(0.05, abs=0.02)

    def test_small_lock_costs_under_2pct(self):
        """Figure 10c: <2% loss at ~100 MHz below max — the basis for the
        1305 MHz high-priority cap."""
        points = frequency_tradeoff("BLOOM-176B", clocks_mhz=[1305.0])
        assert points[0].performance_reduction < 0.03

    def test_prompt_heavy_configs_more_sensitive(self):
        """Figure 10b: larger prompts/batches lose more performance."""
        curves = frequency_sensitivity()
        # variants: (1,512), (1,2048), (1,8192), (16,512)
        light = curves[0][-1].performance_reduction
        heavy_input = curves[2][-1].performance_reduction
        heavy_batch = curves[3][-1].performance_reduction
        assert heavy_input > light
        assert heavy_batch > light

    def test_empty_clock_list_rejected(self):
        with pytest.raises(ConfigurationError):
            frequency_tradeoff("BLOOM-176B", clocks_mhz=[])


class TestFigure7Correlations:
    @pytest.fixture(scope="class")
    def matrices(self):
        return phase_correlation_matrices(samples=600, seed=0)

    def test_prompt_phase_structure(self, matrices):
        names, matrix = matrices["prompt"]
        power = names.index("power")
        assert matrix[power][names.index("tensor_core_activity")] > 0.7
        assert matrix[power][names.index("sm_activity")] > 0.7
        assert matrix[power][names.index("memory_utilization")] < -0.4

    def test_token_phase_uncorrelated(self, matrices):
        names, matrix = matrices["token"]
        off_diagonal = matrix[~np.eye(len(names), dtype=bool)]
        assert np.abs(off_diagonal).max() < 0.25

    def test_matrices_symmetric_unit_diagonal(self, matrices):
        for names, matrix in matrices.values():
            assert np.allclose(matrix, matrix.T)
            assert np.allclose(np.diag(matrix), 1.0)


class TestTable4Patterns:
    def test_training_column(self):
        patterns = training_cluster_patterns()
        assert patterns.peak_utilization == pytest.approx(0.97, abs=0.02)
        assert patterns.max_spike_2s == pytest.approx(0.375, abs=0.06)
        assert patterns.headroom == pytest.approx(0.03, abs=0.02)
