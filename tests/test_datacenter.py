"""Topology tree and oversubscription arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.datacenter.provisioning import (
    headroom_fraction,
    max_safe_added_fraction,
    plan_oversubscription,
    servers_supportable,
)
from repro.datacenter.topology import DEFAULT_ROW, Datacenter, Row, RowParameters
from repro.errors import ConfigurationError


class TestRowParameters:
    def test_table2_defaults(self):
        assert DEFAULT_ROW.n_servers == 40
        assert DEFAULT_ROW.server_type == "DGX-A100"
        assert DEFAULT_ROW.telemetry_interval_s == 2.0
        assert DEFAULT_ROW.brake_latency_s == 5.0
        assert DEFAULT_ROW.oob_latency_s == 40.0

    def test_provisioned_power(self):
        assert DEFAULT_ROW.provisioned_power_w == 40 * 6500.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RowParameters(n_servers=0)
        with pytest.raises(ConfigurationError):
            RowParameters(provisioned_power_per_server_w=0)


class TestRowTopology:
    def test_build_packs_racks(self):
        row = Row.build("row0", servers_per_rack=4)
        assert row.n_servers == 40
        assert len(row.racks) == 10
        assert all(len(rack) == 4 for rack in row.racks)

    def test_server_ids_unique(self):
        row = Row.build("row0")
        ids = row.server_ids
        assert len(ids) == len(set(ids)) == 40

    def test_add_servers_extends_without_budget_change(self):
        row = Row.build("row0")
        budget_before = row.provisioned_power_w
        new_ids = row.add_servers(12)
        assert row.n_servers == 52
        assert len(new_ids) == 12
        assert row.provisioned_power_w == budget_before  # the whole point

    def test_add_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            Row.build("row0").add_servers(0)

    def test_invalid_rack_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Row.build("row0", servers_per_rack=0)

    def test_datacenter_iterates_all_servers(self):
        dc = Datacenter(name="dc0", rows=[Row.build("r0"), Row.build("r1")])
        assert len(list(dc.iter_servers())) == 80
        assert dc.provisioned_power_w == 2 * 40 * 6500.0


class TestHeadroom:
    def test_table4_headrooms(self):
        """Insight 9: ~3% for training (97% peak), ~21% for inference."""
        assert headroom_fraction(0.97) == pytest.approx(0.03)
        assert headroom_fraction(0.79) == pytest.approx(0.21)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            headroom_fraction(0.0)
        with pytest.raises(ConfigurationError):
            headroom_fraction(1.2)


class TestServersSupportable:
    def test_division_floors(self):
        assert servers_supportable(260_000.0, 6500.0) == 40
        assert servers_supportable(260_000.0, 6400.0) == 40  # floor(40.6)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            servers_supportable(0, 1)
        with pytest.raises(ConfigurationError):
            servers_supportable(1, 0)


class TestOversubscriptionPlan:
    def test_thirty_percent_plan(self):
        plan = plan_oversubscription(40, 200_000.0, 0.79, 0.30)
        assert plan.added_servers == 12
        assert plan.total_servers == 52
        assert plan.oversubscription_fraction == pytest.approx(0.30)
        assert plan.expected_peak_utilization == pytest.approx(0.79 * 1.3)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_oversubscription(0, 1.0, 0.5, 0.1)
        with pytest.raises(ConfigurationError):
            plan_oversubscription(40, 1.0, 1.5, 0.1)
        with pytest.raises(ConfigurationError):
            plan_oversubscription(40, 1.0, 0.5, -0.1)

    @given(st.floats(min_value=0.01, max_value=0.5))
    def test_expected_peak_scales_linearly(self, fraction):
        plan = plan_oversubscription(100, 1.0, 0.79, fraction)
        implied = plan.expected_peak_utilization / 0.79 - 1.0
        assert implied == pytest.approx(plan.added_servers / 100)


class TestMaxSafeFraction:
    def test_uncontrolled_bound_for_inference(self):
        """Without capping, a 79%-peak cluster supports ~26.6% more."""
        assert max_safe_added_fraction(0.79) == pytest.approx(0.266, abs=0.01)

    def test_training_bound_is_tiny(self):
        assert max_safe_added_fraction(0.97) == pytest.approx(0.031, abs=0.01)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            max_safe_added_fraction(0.0)
        with pytest.raises(ConfigurationError):
            max_safe_added_fraction(0.79, safety_threshold=1.5)
