"""OpenMetrics rendering: format conformance and content fidelity.

Every rendered exposition is validated line by line against the
OpenMetrics text-format grammar (metric names, label syntax, the
``# EOF`` terminator), and histogram bucket series are checked to be
cumulative with a ``+Inf`` bucket equal to the total count — the two
properties scrapers actually depend on.
"""

import re

import pytest

from repro.errors import ConfigurationError
from repro.obs import AlertEngine, MemoryRecorder, render_openmetrics
from repro.obs.export import sanitize_metric_name, write_textfile
from tests.test_obs import run_reference

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABELS = r"\{[a-zA-Z0-9_]+=\"(?:[^\"\\]|\\.)*\"" \
         r"(?:,[a-zA-Z0-9_]+=\"(?:[^\"\\]|\\.)*\")*\}"
SAMPLE_LINE = re.compile(rf"^{NAME}(?:{LABELS})? \S+$")
TYPE_LINE = re.compile(rf"^# TYPE {NAME} (counter|gauge|histogram)$")


def assert_parseable(text):
    """Every line is a TYPE comment, a sample, or the EOF terminator."""
    lines = text.splitlines()
    assert lines, "empty exposition"
    assert lines[-1] == "# EOF"
    assert text.endswith("# EOF\n")
    for line in lines[:-1]:
        assert TYPE_LINE.match(line) or SAMPLE_LINE.match(line), \
            f"unparseable line: {line!r}"


class TestSanitizeMetricName:
    def test_dots_and_prefix(self):
        assert sanitize_metric_name("requests.served", "repro") == \
            "repro_requests_served"
        assert sanitize_metric_name("plain") == "plain"

    def test_invalid_characters_become_underscores(self):
        assert sanitize_metric_name("a b-c/d") == "a_b_c_d"

    def test_leading_digit_guarded(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            sanitize_metric_name("")


class TestRenderOpenMetrics:
    def test_counters_get_the_total_suffix(self):
        text = render_openmetrics({"counters": {"requests.served": 7}})
        assert "# TYPE repro_requests_served counter" in text
        assert "repro_requests_served_total 7" in text
        assert_parseable(text)

    def test_unset_gauges_are_skipped_set_gauges_render(self):
        text = render_openmetrics({
            "gauges": {"power.peak_row_w": 123.5, "never.set": None},
        })
        assert "repro_power_peak_row_w 123.5" in text
        assert "never_set" not in text
        assert_parseable(text)

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_openmetrics({
            "histograms": {
                "util": {
                    "bounds": [0.5, 1.0], "counts": [3, 0, 2],
                    "count": 5, "sum": 4.5, "min": 0.1, "max": 1.4,
                },
            },
        })
        assert 'repro_util_bucket{le="0.5"} 3' in text
        assert 'repro_util_bucket{le="1.0"} 3' in text  # cumulative
        assert 'repro_util_bucket{le="+Inf"} 5' in text
        assert "repro_util_sum 4.5" in text
        assert "repro_util_count 5" in text
        assert_parseable(text)

    def test_labels_are_sorted_and_escaped(self):
        text = render_openmetrics(
            {"counters": {"x": 1}},
            labels={"b": 'say "hi"\n', "a": "back\\slash"},
        )
        assert ('repro_x_total{a="back\\\\slash",b="say \\"hi\\"\\n"} 1'
                in text)
        assert_parseable(text)

    def test_incident_section_renders_counters_and_open_gauge(self):
        engine = AlertEngine()
        for t in (0.0, 1.0, 2.0):
            engine.emit({"kind": "brake_request", "t": t})
        text = render_openmetrics(engine.observability_snapshot())
        assert ('repro_incidents_total{rule="brake-storm",'
                'severity="critical"} 1' in text)
        assert "repro_incidents_open 1" in text
        assert_parseable(text)

    def test_none_snapshot_is_an_empty_terminated_exposition(self):
        assert render_openmetrics(None) == "# EOF\n"

    def test_full_simulation_snapshot_is_parseable(self):
        result = run_reference(
            "polca-adversarial", recorder=MemoryRecorder()
        )
        text = render_openmetrics(
            result.observability, labels={"run": "polca-adversarial"}
        )
        assert_parseable(text)
        assert "repro_requests_served_total" \
            f'{{run="polca-adversarial"}} {result.total_served}' in text

    def test_write_textfile_writes_and_returns_the_text(self, tmp_path):
        path = tmp_path / "metrics.prom"
        text = write_textfile(str(path), {"counters": {"x": 1}})
        assert path.read_text(encoding="utf-8") == text
        assert_parseable(text)


# ----------------------------------------------------------------------
# Chrome trace-event (Perfetto) export
# ----------------------------------------------------------------------
class TestChromeTraceExport:
    def _trace(self):
        from repro.obs import SpanBuilder, render_chrome_trace

        builder = SpanBuilder()
        run_reference("polca-adversarial", recorder=builder)
        return render_chrome_trace(builder)

    def test_structure_and_required_keys(self):
        trace = self._trace()
        events = trace["traceEvents"]
        assert events
        assert trace["displayTimeUnit"] == "ms"
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            assert "pid" in event and "tid" in event and "ts" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] in ("g", "t")

    def test_per_track_timestamps_are_monotonic(self):
        last = {}
        for event in self._trace()["traceEvents"]:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, float("-inf"))
            last[key] = event["ts"]

    def test_every_server_has_a_named_process(self):
        trace = self._trace()
        named = {
            event["args"]["name"]
            for event in trace["traceEvents"] if event["ph"] == "M"
        }
        assert "row control" in named
        phase_pids = {
            event["pid"] for event in trace["traceEvents"]
            if event["ph"] == "X" and event.get("cat") == "phase"
        }
        metadata_pids = {
            event["pid"] for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        assert phase_pids <= metadata_pids
        assert 0 not in phase_pids  # pid 0 is the control row

    def test_control_instants_on_pid_zero(self):
        instants = [
            event for event in self._trace()["traceEvents"]
            if event["ph"] == "i" and event.get("cat") == "control"
        ]
        assert instants, "an adversarial run must land control actions"
        assert all(event["pid"] == 0 for event in instants)
        assert any(event["name"].startswith("cap ") for event in instants)

    def test_json_round_trip(self, tmp_path):
        import json

        from repro.obs import MemoryRecorder as Memory
        from repro.obs import write_chrome_trace

        recorder = Memory()
        run_reference("polca-default", recorder=recorder)
        path = tmp_path / "trace.json"
        trace = write_chrome_trace(str(path), recorder.events)
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == trace

    def test_live_builder_and_replay_agree(self):
        from repro.obs import (
            MemoryRecorder as Memory,
            SpanBuilder,
            TeeRecorder,
            render_chrome_trace,
        )

        builder = SpanBuilder()
        memory = Memory()
        run_reference(
            "nocap-stale-telemetry",
            recorder=TeeRecorder([memory, builder]),
        )
        assert render_chrome_trace(builder) == \
            render_chrome_trace(memory.events)

    def test_queued_request_gets_a_buffer_slice(self):
        trace = self._trace()
        queue_slices = [
            event for event in trace["traceEvents"]
            if event["ph"] == "X" and event.get("cat") == "queue"
        ]
        assert queue_slices
        assert all(event["tid"] == 0 for event in queue_slices)
        assert all(event["dur"] > 0 for event in queue_slices)

    def test_rescale_instants_ride_their_phase_track(self):
        trace = self._trace()
        rescales = [
            event for event in trace["traceEvents"]
            if event["ph"] == "i" and event.get("cat") == "rescale"
        ]
        assert rescales, "an adversarial run must reprice phases"
        assert all(event["tid"] >= 1 for event in rescales)
