"""Priority-aware load balancing and server pool splitting."""

import pytest

from repro.cluster.loadbalancer import LoadBalancer, split_servers
from repro.cluster.server_sim import ServerSim
from repro.errors import ConfigurationError
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import CHAT, Priority


def make_servers(n_low=2, n_high=2):
    servers = []
    for index in range(n_low):
        servers.append(ServerSim(f"lp{index}", Priority.LOW))
    for index in range(n_high):
        servers.append(ServerSim(f"hp{index}", Priority.HIGH))
    return servers


def fill(server):
    request = SampledRequest(0.0, CHAT, server.priority, 1024, 256)
    while server.has_free_slot:
        server.start_request(0.0, request)


class TestSplitServers:
    def test_even_split(self):
        ids = [f"s{i}" for i in range(40)]
        assignment = split_servers(ids, 0.5)
        low = sum(1 for p in assignment.values() if p is Priority.LOW)
        assert low == 20

    def test_uneven_split(self):
        ids = [f"s{i}" for i in range(40)]
        assignment = split_servers(ids, 0.25)
        low = sum(1 for p in assignment.values() if p is Priority.LOW)
        assert low == 10

    def test_interleaved_not_contiguous(self):
        ids = [f"s{i}" for i in range(8)]
        assignment = split_servers(ids, 0.5)
        first_half = [assignment[f"s{i}"] for i in range(4)]
        assert Priority.LOW in first_half and Priority.HIGH in first_half

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            split_servers(["a", "b"], 0.0)
        with pytest.raises(ConfigurationError):
            split_servers(["a", "b"], 1.0)


class TestRouting:
    def test_routes_within_priority_pool(self):
        balancer = LoadBalancer(make_servers(), seed=0)
        for _ in range(20):
            server = balancer.route(Priority.LOW)
            assert server.priority is Priority.LOW

    def test_least_loaded_preferred(self):
        servers = make_servers(n_low=2, n_high=1)
        request = SampledRequest(0.0, CHAT, Priority.LOW, 1024, 256)
        servers[0].start_request(0.0, request)
        balancer = LoadBalancer(servers, seed=0)
        for _ in range(10):
            assert balancer.route(Priority.LOW).server_id == "lp1"

    def test_falls_back_to_buffer_when_slots_full(self):
        servers = make_servers(n_low=1, n_high=1)
        fill(servers[0])
        balancer = LoadBalancer(servers, seed=0)
        chosen = balancer.route(Priority.LOW)
        assert chosen is servers[0]
        assert chosen.can_buffer

    def test_drops_when_pool_saturated(self):
        servers = make_servers(n_low=1, n_high=1)
        fill(servers[0])
        servers[0].buffered = SampledRequest(0.0, CHAT, Priority.LOW, 512, 128)
        balancer = LoadBalancer(servers, seed=0)
        assert balancer.route(Priority.LOW) is None
        # The other pool is unaffected.
        assert balancer.route(Priority.HIGH) is not None

    def test_requires_both_pools(self):
        with pytest.raises(ConfigurationError):
            LoadBalancer([ServerSim("only", Priority.LOW)], seed=0)

    def test_requires_servers(self):
        with pytest.raises(ConfigurationError):
            LoadBalancer([], seed=0)

    def test_pool_accessor(self):
        balancer = LoadBalancer(make_servers(3, 2), seed=0)
        assert len(balancer.pool(Priority.LOW)) == 3
        assert len(balancer.pool(Priority.HIGH)) == 2


class TestRoutingUnderChurn:
    """A failed server must be invisible to routing — in the slot pass
    AND the buffer fallback. A request handed to a dead server would
    vanish from the served/dropped ledgers."""

    def test_failed_server_never_routed_to(self):
        servers = make_servers(n_low=3, n_high=1)
        servers[1].fail(0.0)
        balancer = LoadBalancer(servers, seed=0)
        for _ in range(50):
            chosen = balancer.route(Priority.LOW)
            assert chosen is not None
            assert not chosen.failed

    def test_buffer_fallback_skips_failed_servers(self):
        # Every live LP server is slot-saturated, so routing must take
        # the buffer fallback — and must only consider live buffers.
        servers = make_servers(n_low=3, n_high=1)
        fill(servers[0])
        fill(servers[2])
        servers[1].fail(0.0)
        balancer = LoadBalancer(servers, seed=0)
        for _ in range(50):
            chosen = balancer.route(Priority.LOW)
            assert chosen is not None
            assert not chosen.failed
            assert chosen.can_buffer

    def test_drops_when_only_failed_capacity_remains(self):
        # The live servers are fully saturated (slots + buffer); the
        # failed server's apparent capacity must not save the request.
        servers = make_servers(n_low=2, n_high=1)
        fill(servers[0])
        servers[0].buffered = SampledRequest(
            0.0, CHAT, Priority.LOW, 512, 128
        )
        servers[1].fail(0.0)
        balancer = LoadBalancer(servers, seed=0)
        assert balancer.route(Priority.LOW) is None
