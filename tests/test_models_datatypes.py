"""Weight datatypes and kernel-efficiency trade-offs (Insight 6)."""

import pytest

from repro.errors import ConfigurationError
from repro.models.datatypes import FP8, FP16, FP32, INT8, DType, dtype_by_name


class TestProperties:
    def test_bytes_per_param_ordering(self):
        assert FP32.bytes_per_param > FP16.bytes_per_param > 0
        assert INT8.bytes_per_param == FP8.bytes_per_param == 1.0

    def test_fp16_has_best_kernels(self):
        # Section 4.2: FP16 is fastest due to optimized tensor-core kernels.
        assert FP16.kernel_efficiency == 1.0
        assert FP16.kernel_efficiency > FP32.kernel_efficiency
        assert FP16.kernel_efficiency > INT8.kernel_efficiency

    def test_int8_kernels_are_poor(self):
        # bitsandbytes dequantization overhead (Section 4.2).
        assert INT8.kernel_efficiency < 0.5

    def test_fp16_draws_the_most_peak_power(self):
        assert FP16.peak_activity_bonus >= FP32.peak_activity_bonus
        assert FP16.peak_activity_bonus >= INT8.peak_activity_bonus


class TestValidation:
    def test_zero_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            DType(name="bad", bytes_per_param=0.0, kernel_efficiency=1.0)

    def test_efficiency_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            DType(name="bad", bytes_per_param=2.0, kernel_efficiency=1.5)
        with pytest.raises(ConfigurationError):
            DType(name="bad", bytes_per_param=2.0, kernel_efficiency=0.0)


class TestLookup:
    @pytest.mark.parametrize("name,expected", [
        ("fp32", FP32), ("fp16", FP16), ("int8", INT8), ("fp8", FP8),
    ])
    def test_by_name(self, name, expected):
        assert dtype_by_name(name) is expected

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="fp16"):
            dtype_by_name("bf16")
