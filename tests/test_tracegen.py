"""Production trace model, fluid cluster model, and synthetic traces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.units import days
from repro.workloads.spec import WorkloadSpec
from repro.workloads.tracegen import (
    FluidClusterModel,
    INFERENCE_PROVISIONED_PER_SERVER_W,
    ProductionTraceModel,
    SyntheticTrace,
    SyntheticTraceGenerator,
    TRACE_WEEKS,
    _PiecewiseRateProfile,
    smooth_same,
)


@pytest.fixture(scope="module")
def fluid():
    return FluidClusterModel.for_table6()


class TestFluidModel:
    def test_power_monotone_in_utilization(self, fluid):
        rhos = np.linspace(0, 1, 21)
        powers = [fluid.power_at_utilization(float(r)) for r in rhos]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_inversion_roundtrip(self, fluid):
        for rho in (0.1, 0.4, 0.7, 0.95):
            power = fluid.power_at_utilization(rho)
            assert fluid.utilization_for_power(power) == pytest.approx(
                rho, abs=1e-6
            )

    def test_inversion_clips(self, fluid):
        assert fluid.utilization_for_power(0.0) == 0.0
        assert fluid.utilization_for_power(1e9) == 1.0

    def test_littles_law(self, fluid):
        rate = fluid.arrival_rate_for_utilization(0.5)
        expected = 0.5 * fluid.n_servers * fluid.concurrency \
            / fluid.mean_service_s
        assert rate == pytest.approx(expected)

    def test_occupancy_powers_increase(self, fluid):
        powers = fluid.occupancy_power_w
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_invalid_rho_rejected(self, fluid):
        with pytest.raises(ConfigurationError):
            fluid.power_at_utilization(1.5)
        with pytest.raises(ConfigurationError):
            fluid.arrival_rate_for_utilization(-0.1)

    def test_mean_service_time_plausible(self, fluid):
        """Table 6 requests on BLOOM take tens of seconds end to end."""
        assert 10.0 < fluid.mean_service_s < 120.0


class TestProductionTraceModel:
    def test_six_week_default(self):
        trace = ProductionTraceModel().generate(interval_s=3600.0)
        assert trace.duration == pytest.approx(
            days(7 * TRACE_WEEKS) - 3600.0, abs=1.0
        )

    def test_diurnal_structure(self):
        trace = ProductionTraceModel(seed=0).generate(
            duration_s=days(2), interval_s=300.0
        )
        one_day = int(86400 / 300)
        day1 = trace.values[:one_day]
        day2 = trace.values[one_day:2 * one_day]
        # Daily pattern repeats: peak hours align across days.
        assert abs(int(np.argmax(day1)) - int(np.argmax(day2))) < 24

    def test_utilization_stays_in_bounds(self):
        trace = ProductionTraceModel(seed=1).generate(duration_s=days(7))
        assert (trace.values > 0).all()
        assert (trace.values < 1.0).all()

    def test_smoothed_peak_below_des_peak_target(self):
        """The smoothed trace peaks below 79%; the DES adds prompt spikes
        on top to reach Table 4's 79%."""
        trace = ProductionTraceModel(seed=2).generate(duration_s=days(7))
        assert 0.62 < trace.peak() < 0.76

    def test_deterministic_per_seed(self):
        a = ProductionTraceModel(seed=9).generate(duration_s=days(1))
        b = ProductionTraceModel(seed=9).generate(duration_s=days(1))
        assert np.allclose(a.values, b.values)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ProductionTraceModel().generate(duration_s=0.0)

    def test_grid_never_samples_at_or_past_duration(self):
        # Regression: the old np.arange(0, duration, interval) grid
        # emits a bin at t >= duration on adversarial pairs (e.g.
        # duration = 3 * 0.1), padding the trace with one extra sample.
        trace = ProductionTraceModel(seed=0).generate(
            duration_s=3 * 0.1, interval_s=0.1
        )
        assert len(trace) == 3
        assert trace.times[-1] < 3 * 0.1


class TestSmoothSame:
    def test_constant_signal_stays_constant_everywhere(self):
        # Zero-padded mode="same" smoothing dragged the first and last
        # window//2 bins toward zero; overlap normalization must return
        # a constant unchanged, edges included.
        for n, window in [(50, 7), (10, 4), (5, 5), (3, 7)]:
            out = smooth_same(np.full(n, 3.25), window)
            assert out.shape == (n,)
            np.testing.assert_allclose(out, 3.25, rtol=1e-12)

    def test_interior_matches_plain_convolution(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=64)
        window = 7
        plain = np.convolve(x, np.ones(window) / window, mode="same")
        out = smooth_same(x, window)
        interior = slice(window // 2, -(window // 2))
        np.testing.assert_allclose(out[interior], plain[interior])
        # ... and the edges differ (they are the fix).
        assert not np.allclose(out[0], plain[0])

    def test_window_one_is_identity(self):
        x = np.array([1.0, -2.0, 3.0])
        np.testing.assert_array_equal(smooth_same(x, 1), x)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            smooth_same(np.ones(3), 0)


class TestPiecewiseRateProfile:
    def test_rate_clamps_outside_trace_window(self):
        profile = _PiecewiseRateProfile(
            bin_starts=np.array([0.0, 10.0, 20.0]),
            rates=np.array([1.0, 2.0, 3.0]),
            interval_s=10.0,
        )
        # Thinning can propose arrival candidates slightly before the
        # first bin or past the last; the profile must clamp to the
        # nearest bin instead of indexing out of range.
        assert profile.rate(-5.0) == 1.0
        assert profile.rate(-1e9) == 1.0
        assert profile.rate(25.0) == 3.0
        assert profile.rate(30.0) == 3.0  # exactly past the last bin
        assert profile.rate(1e9) == 3.0
        assert profile.rate(10.0) == 2.0  # interior unaffected


class TestFluidMeanTokens:
    def test_non_integral_means_round_instead_of_floor(self):
        # Regression: int() floored non-integral mean token counts
        # (e.g. a (1, 2) range has mean 1.5), biasing service times low.
        mix = (
            WorkloadSpec(
                name="odd",
                prompt_range=(1, 2),      # mean 1.5 -> must round to 2
                output_range=(255, 256),  # mean 255.5 -> must round to 256
                share=1.0,
                high_priority_probability=0.0,
            ),
        )
        floored = FluidClusterModel.for_table6(
            mix=(
                WorkloadSpec(
                    name="floored",
                    prompt_range=(1, 1),
                    output_range=(255, 255),
                    share=1.0,
                    high_priority_probability=0.0,
                ),
            )
        )
        rounded = FluidClusterModel.for_table6(
            mix=(
                WorkloadSpec(
                    name="rounded",
                    prompt_range=(2, 2),
                    output_range=(256, 256),
                    share=1.0,
                    high_priority_probability=0.0,
                ),
            )
        )
        model = FluidClusterModel.for_table6(mix=mix)
        assert model.mean_service_s == rounded.mean_service_s
        assert model.mean_service_s != floored.mean_service_s


class TestSyntheticTraceGenerator:
    @pytest.fixture(scope="class")
    def synthetic(self):
        trace = ProductionTraceModel(seed=0).generate(
            duration_s=days(1), interval_s=300.0
        )
        return SyntheticTraceGenerator(seed=0).generate(trace)

    def test_mape_within_3pct(self, synthetic):
        """Section 6.4's acceptance criterion."""
        assert synthetic.mape <= 0.03
        synthetic.validate()  # must not raise

    def test_requests_sorted_by_arrival(self, synthetic):
        arrivals = [r.arrival_time for r in synthetic.requests]
        assert arrivals == sorted(arrivals)

    def test_request_volume_plausible(self, synthetic):
        # 40 servers x 4 slots, ~30 s mean service, modest slot load.
        per_second = len(synthetic.requests) / days(1)
        assert 0.4 < per_second < 6.0

    def test_reconstruction_same_length_as_target(self, synthetic):
        assert len(synthetic.reconstructed_power) == len(synthetic.target_power)

    def test_validate_rejects_bad_mape(self, synthetic):
        bad = SyntheticTrace(
            requests=synthetic.requests,
            target_power=synthetic.target_power,
            reconstructed_power=synthetic.reconstructed_power,
            mape=0.10,
        )
        with pytest.raises(TraceError):
            bad.validate()

    def test_empty_trace_rejected(self):
        from repro.analysis.timeseries import TimeSeries
        generator = SyntheticTraceGenerator()
        empty = TimeSeries(start=0, interval=300, values=np.empty(0))
        with pytest.raises(ConfigurationError):
            generator.generate(empty)

    def test_provisioning_constant(self):
        generator = SyntheticTraceGenerator(n_servers=40)
        assert generator.provisioned_power_w == \
            40 * INFERENCE_PROVISIONED_PER_SERVER_W
