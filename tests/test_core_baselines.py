"""The Section 6.6 baseline policies."""

import pytest

from repro.cluster.policy_base import GroupCaps
from repro.core.baselines import (
    NoCapPolicy,
    SingleThresholdAllPolicy,
    SingleThresholdLowPriPolicy,
    all_policies,
)
from repro.errors import ConfigurationError


class TestSingleThresholdLowPri:
    def test_caps_lp_directly_to_deep_clock(self):
        """No gradual reduction — straight to 1110 MHz (why it misses the
        low-priority SLOs, Section 6.6)."""
        policy = SingleThresholdLowPriPolicy()
        caps = policy.desired_caps(0.90)
        assert caps.low_clock_mhz == 1110.0
        assert caps.high_clock_mhz is None

    def test_hysteresis(self):
        policy = SingleThresholdLowPriPolicy()
        policy.desired_caps(0.90)
        assert policy.desired_caps(0.86).low_clock_mhz == 1110.0
        assert policy.desired_caps(0.83) == GroupCaps.uncapped()

    def test_below_threshold_uncapped(self):
        assert SingleThresholdLowPriPolicy().desired_caps(0.70) == \
            GroupCaps.uncapped()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            SingleThresholdLowPriPolicy(threshold=1.5)


class TestSingleThresholdAll:
    def test_caps_both_groups_aggressively(self):
        policy = SingleThresholdAllPolicy()
        caps = policy.desired_caps(0.90)
        assert caps.low_clock_mhz == 1110.0
        assert caps.high_clock_mhz == 1110.0

    def test_reset(self):
        policy = SingleThresholdAllPolicy()
        policy.desired_caps(0.95)
        policy.reset()
        assert policy.desired_caps(0.86) == GroupCaps.uncapped()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            SingleThresholdAllPolicy(threshold=0.0)


class TestNoCap:
    def test_never_caps(self):
        policy = NoCapPolicy()
        for utilization in (0.5, 0.9, 0.99, 1.2):
            assert policy.desired_caps(utilization) == GroupCaps.uncapped()

    def test_still_carries_the_brake(self):
        """All baselines include the brake fallback (Section 6.6)."""
        policy = NoCapPolicy()
        assert policy.wants_brake(1.0)


class TestRegistry:
    def test_four_policies_of_figure17(self):
        policies = all_policies()
        assert set(policies) == {
            "POLCA", "1-Thresh-Low-Pri", "1-Thresh-All", "No-cap",
        }

    def test_factories_produce_fresh_instances(self):
        factory = all_policies()["POLCA"]
        assert factory() is not factory()

    def test_names_match_keys(self):
        for name, factory in all_policies().items():
            assert factory().name == name
