"""Report rendering helpers."""

import numpy as np
import pytest

from repro.analysis.report import polca_report, render_table
from repro.analysis.timeseries import TimeSeries
from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.errors import ConfigurationError
from repro.workloads.spec import Priority


class TestRenderTable:
    def test_plain_text_alignment(self):
        text = render_table(["name", "w"], [["gpus", 3200], ["fans", 1625]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines if line)) == 1

    def test_markdown_shape(self):
        text = render_table(["a", "b"], [[1, 2]], markdown=True)
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}
        assert lines[2].startswith("| 1")

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_allowed(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestMarkdownEscaping:
    """Regression tests: no cell value can break the table grammar."""

    @staticmethod
    def cell_grid(text):
        """Parse the rendered Markdown back into rows of cell texts."""
        rows = []
        for line in text.splitlines():
            if set(line) <= {"|", "-"}:
                continue  # the separator row
            # Split on unescaped pipes only.
            cells, current, escaped = [], "", False
            for ch in line:
                if escaped:
                    current += ch
                    escaped = False
                elif ch == "\\":
                    current += ch
                    escaped = True
                elif ch == "|":
                    cells.append(current)
                    current = ""
                else:
                    current += ch
            rows.append([c.strip() for c in cells[1:]])
        return rows

    def test_pipes_escaped(self):
        text = render_table(
            ["expr", "n"], [["a | b", 1], ["|x|", 2]], markdown=True,
        )
        grid = self.cell_grid(text)
        # The column structure survives: every row still has 2 cells.
        assert all(len(row) == 2 for row in grid)
        assert grid[1][0] == "a \\| b"
        assert "\\|x\\|" in text

    def test_backslashes_escaped_before_pipes(self):
        text = render_table(["p"], [["a\\|b"]], markdown=True)
        assert "a\\\\\\|b" in text

    def test_edge_whitespace_preserved_as_nbsp(self):
        text = render_table(
            ["name"], [["  padded"], ["trailing  "]], markdown=True,
        )
        assert "&nbsp;&nbsp;padded" in text
        assert "trailing&nbsp;&nbsp;" in text

    def test_all_space_cell_keeps_its_width(self):
        text = render_table(["gap"], [["  "]], markdown=True)
        assert "&nbsp;&nbsp;" in text
        assert "&nbsp;&nbsp;&nbsp;" not in text

    def test_interior_whitespace_untouched(self):
        text = render_table(["name"], [["a  b"]], markdown=True)
        assert "a  b" in text
        assert "&nbsp;" not in text

    def test_plain_text_mode_never_escapes(self):
        text = render_table(["name"], [["a | b"], ["  padded"]])
        assert "\\|" not in text
        assert "&nbsp;" not in text


def _result(p50, brakes=0):
    metrics = {
        p: PriorityMetrics(latencies=[p50] * 100, served=100)
        for p in Priority
    }
    return SimulationResult(
        per_priority=metrics,
        power_series=TimeSeries(start=0, interval=2,
                                values=np.full(10, 150_000.0)),
        provisioned_power_w=200_000.0,
        power_brake_events=brakes,
        capping_actions=0,
        duration_s=20.0,
    )


class TestPolcaReport:
    def test_report_contains_all_runs(self):
        baseline = _result(10.0)
        report = polca_report(
            {"POLCA": _result(10.5), "No-cap": _result(12.0, brakes=3)},
            baseline,
        )
        assert "POLCA" in report and "No-cap" in report
        assert "1.050" in report  # normalized p50
        assert "3" in report      # brake count

    def test_markdown_mode(self):
        baseline = _result(10.0)
        report = polca_report({"POLCA": _result(10.0)}, baseline,
                              markdown=True)
        assert report.startswith("| run")
