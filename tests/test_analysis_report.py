"""Report rendering helpers."""

import numpy as np
import pytest

from repro.analysis.report import polca_report, render_table
from repro.analysis.timeseries import TimeSeries
from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.errors import ConfigurationError
from repro.workloads.spec import Priority


class TestRenderTable:
    def test_plain_text_alignment(self):
        text = render_table(["name", "w"], [["gpus", 3200], ["fans", 1625]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines if line)) == 1

    def test_markdown_shape(self):
        text = render_table(["a", "b"], [[1, 2]], markdown=True)
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}
        assert lines[2].startswith("| 1")

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_allowed(self):
        text = render_table(["a"], [])
        assert "a" in text


def _result(p50, brakes=0):
    metrics = {
        p: PriorityMetrics(latencies=[p50] * 100, served=100)
        for p in Priority
    }
    return SimulationResult(
        per_priority=metrics,
        power_series=TimeSeries(start=0, interval=2,
                                values=np.full(10, 150_000.0)),
        provisioned_power_w=200_000.0,
        power_brake_events=brakes,
        capping_actions=0,
        duration_s=20.0,
    )


class TestPolcaReport:
    def test_report_contains_all_runs(self):
        baseline = _result(10.0)
        report = polca_report(
            {"POLCA": _result(10.5), "No-cap": _result(12.0, brakes=3)},
            baseline,
        )
        assert "POLCA" in report and "No-cap" in report
        assert "1.050" in report  # normalized p50
        assert "3" in report      # brake count

    def test_markdown_mode(self):
        baseline = _result(10.0)
        report = polca_report({"POLCA": _result(10.0)}, baseline,
                              markdown=True)
        assert report.startswith("| run")
