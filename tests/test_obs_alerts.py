"""Alerting semantics: for-duration, hysteresis, dedup, lifecycles.

The rule engine is exercised on synthetic event streams where the
expected incident timeline can be stated exactly, then against real
simulator runs for determinism (live == replay) and for the snapshot
path into ``SimulationResult.observability``.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import result_from_dict, result_to_dict
from repro.obs import AlertEngine, Incident, MemoryRecorder, TeeRecorder
from repro.obs.alerts import (
    RateRule,
    SloViolationRule,
    ThresholdRule,
    default_rules,
    incident_table,
    merge_incident_snapshots,
)
from tests.test_obs import run_reference


def control(t, utilization):
    return {"kind": "control", "t": t, "utilization": utilization}


def sustained_rule(**overrides):
    params = dict(
        kind="control", field="utilization",
        above=1.0, for_s=30.0, clear_below=0.9,
    )
    params.update(overrides)
    return ThresholdRule("over", **params)


# ----------------------------------------------------------------------
# Threshold rules: for-duration and hysteresis
# ----------------------------------------------------------------------
class TestThresholdRule:
    def test_for_duration_requires_continuous_breach(self):
        engine = AlertEngine([sustained_rule()])
        # Breach at t=0..20, one in-range sample at t=25 resets the
        # pending timer, then a fresh sustained breach from t=30.
        for t, u in [(0, 1.05), (10, 1.2), (20, 1.1), (25, 0.5),
                     (30, 1.1), (50, 1.15), (60, 1.2)]:
            engine.emit(control(float(t), u))
        assert len(engine.incidents) == 1
        incident = engine.incidents[0]
        assert incident.opened_at == 60.0
        assert incident.breached_at == 30.0
        assert incident.trigger_value == 1.2
        assert incident.open

    def test_too_short_breach_never_fires(self):
        engine = AlertEngine([sustained_rule()])
        for t, u in [(0, 1.5), (20, 1.5), (29, 1.5), (30, 0.5), (70, 0.5)]:
            engine.emit(control(float(t), u))
        assert engine.incidents == []

    def test_hysteresis_holds_between_clear_and_fire_thresholds(self):
        engine = AlertEngine([sustained_rule()])
        for t, u in [(0, 1.2), (30, 1.2)]:
            engine.emit(control(float(t), u))
        assert len(engine.open_incidents) == 1
        engine.emit(control(40.0, 0.95))  # below fire, above clear
        assert len(engine.open_incidents) == 1
        engine.emit(control(50.0, 0.85))  # at/below clear: resolves
        incident = engine.incidents[0]
        assert incident.resolved_at == 50.0
        assert not incident.open
        assert incident.duration_s == pytest.approx(20.0)

    def test_dedup_updates_peak_instead_of_duplicating(self):
        engine = AlertEngine([sustained_rule(for_s=0.0)])
        engine.emit(control(0.0, 1.1))
        engine.emit(control(5.0, 1.8))   # worse, while already open
        engine.emit(control(10.0, 1.3))
        assert len(engine.incidents) == 1
        assert engine.incidents[0].peak_value == 1.8
        # After resolving, a fresh breach opens a second incident.
        engine.emit(control(20.0, 0.5))
        engine.emit(control(30.0, 1.4))
        assert len(engine.incidents) == 2
        assert engine.incidents[0].resolved_at == 20.0
        assert engine.incidents[1].opened_at == 30.0

    def test_signal_persists_between_matching_events(self):
        # The last utilization sample keeps counting toward for_s even
        # while unrelated events arrive: the signal is piecewise
        # constant, and any event advances the rule clock.
        engine = AlertEngine([sustained_rule()])
        engine.emit(control(0.0, 1.2))
        engine.emit({"kind": "serve", "t": 35.0, "latency_s": 0.1})
        assert len(engine.incidents) == 1
        assert engine.incidents[0].opened_at == 35.0

    def test_clear_above_fire_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            sustained_rule(clear_below=1.5)


# ----------------------------------------------------------------------
# Rate rules (brake storms, flapping, churn)
# ----------------------------------------------------------------------
class TestRateRule:
    def make_engine(self, **overrides):
        params = dict(kind="brake_request", window_s=10.0, max_count=2)
        params.update(overrides)
        return AlertEngine([RateRule("storm", **params)])

    def brake(self, t):
        return {"kind": "brake_request", "t": t}

    def test_fires_on_count_exceeding_max_within_window(self):
        engine = self.make_engine()
        engine.emit(self.brake(0.0))
        engine.emit(self.brake(1.0))
        assert engine.incidents == []  # 2 events == max_count: not yet
        engine.emit(self.brake(2.0))
        assert len(engine.incidents) == 1
        assert engine.incidents[0].opened_at == 2.0
        assert engine.incidents[0].trigger_value == 3.0

    def test_spread_out_events_never_fire(self):
        engine = self.make_engine()
        for t in (0.0, 20.0, 40.0, 60.0):
            engine.emit(self.brake(t))
        assert engine.incidents == []

    def test_finalize_resolves_once_the_window_drains(self):
        engine = self.make_engine()
        for t in (0.0, 1.0, 2.0):
            engine.emit(self.brake(t))
        assert len(engine.open_incidents) == 1
        engine.finalize(50.0)  # window long empty by the end
        assert engine.incidents[0].resolved_at == 50.0
        assert engine.open_incidents == []

    def test_still_breached_at_finalize_stays_open(self):
        engine = self.make_engine()
        for t in (0.0, 1.0, 2.0):
            engine.emit(self.brake(t))
        engine.finalize(5.0)  # all three still inside the window
        assert engine.incidents[0].open

    @pytest.mark.parametrize("overrides", [
        dict(window_s=0.0),
        dict(max_count=-1),
        dict(clear_count=5),
    ])
    def test_invalid_parameters_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            self.make_engine(**overrides)


# ----------------------------------------------------------------------
# SLO violation-rate rule
# ----------------------------------------------------------------------
class TestSloViolationRule:
    def make_engine(self, **overrides):
        params = dict(
            slo_latency_s=1.0, window_s=100.0, max_fraction=0.5,
            min_samples=4,
        )
        params.update(overrides)
        return AlertEngine([SloViolationRule("slo", **params)])

    def serve(self, t, latency_s, priority="high"):
        return {"kind": "serve", "t": t, "latency_s": latency_s,
                "priority": priority}

    def test_min_samples_gates_firing(self):
        engine = self.make_engine()
        for t in (0.0, 1.0, 2.0):
            engine.emit(self.serve(t, 5.0))  # 100% violating, n=3 < 4
        assert engine.incidents == []
        engine.emit(self.serve(3.0, 5.0))
        assert len(engine.incidents) == 1

    def test_fraction_counts_only_window_serves(self):
        engine = self.make_engine()
        for t in (0.0, 1.0, 2.0, 3.0):
            engine.emit(self.serve(t, 0.1))  # healthy
        engine.emit(self.serve(4.0, 5.0))   # 1/5 violating
        assert engine.incidents == []
        for t in (5.0, 6.0, 7.0, 8.0):
            engine.emit(self.serve(t, 5.0))  # 5/9 violating > 0.5
        assert len(engine.incidents) == 1

    def test_priority_scope_filters_serves(self):
        engine = self.make_engine(priority="low")
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            engine.emit(self.serve(t, 9.0, priority="high"))
        assert engine.incidents == []  # out-of-scope serves ignored
        for t in (10.0, 11.0, 12.0, 13.0):
            engine.emit(self.serve(t, 9.0, priority="low"))
        assert len(engine.incidents) == 1

    @pytest.mark.parametrize("overrides", [
        dict(slo_latency_s=0.0),
        dict(window_s=-1.0),
        dict(max_fraction=1.5),
        dict(clear_fraction=0.9),
        dict(min_samples=0),
    ])
    def test_invalid_parameters_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            self.make_engine(**overrides)


# ----------------------------------------------------------------------
# Engine lifecycle, validation, snapshots
# ----------------------------------------------------------------------
class TestAlertEngine:
    def test_default_rules_cover_the_emergency_set(self):
        names = {rule.name for rule in default_rules()}
        assert names == {
            "over-budget", "brake-storm", "fallback-flapping",
            "cap-churn", "slo-violations", "trip-risk", "capacity-loss",
        }

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ConfigurationError):
            AlertEngine([
                RateRule("x", kind="serve", window_s=1.0, max_count=1),
                RateRule("x", kind="drop", window_s=1.0, max_count=1),
            ])

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(name="x", severity="fatal"),
        dict(name="x", for_s=-1.0),
    ])
    def test_base_rule_validation(self, kwargs):
        params = dict(kind="control", field="utilization", above=1.0)
        params.update(kwargs)
        name = params.pop("name")
        with pytest.raises(ConfigurationError):
            ThresholdRule(name, **params)

    def test_events_without_time_are_ignored(self):
        engine = AlertEngine([sustained_rule(for_s=0.0)])
        engine.emit({"kind": "control", "utilization": 5.0})  # no "t"
        assert engine.incidents == []

    def test_counts_and_snapshot_shape(self):
        engine = AlertEngine([sustained_rule(for_s=0.0)])
        engine.emit(control(0.0, 1.5))
        engine.emit(control(10.0, 0.5))
        engine.emit(control(20.0, 1.5))
        counts = engine.counts()
        assert counts["opened"] == 2
        assert counts["resolved"] == 1
        assert counts["open"] == 1
        assert counts["by_rule"] == {"over": 2}
        assert counts["by_severity"] == {"warning": 2}
        snapshot = engine.observability_snapshot()
        assert [i["rule"] for i in snapshot["incidents"]] == ["over", "over"]
        assert snapshot["alerts"] == counts
        json.dumps(snapshot)  # JSON-serializable by construction

    def test_incident_round_trips_through_dict(self):
        incident = Incident(
            rule="over", severity="critical", opened_at=60.0,
            breached_at=30.0, trigger_value=1.2, peak_value=1.8,
            description="u > 1", resolved_at=90.0,
        )
        assert Incident.from_dict(incident.to_dict()) == incident
        still_open = Incident.from_dict(
            {**incident.to_dict(), "resolved_at": None}
        )
        assert still_open.open and still_open.duration_s is None

    def test_replay_of_recorded_trace_matches_live(self):
        trace = MemoryRecorder()
        live = AlertEngine()
        run_reference(
            "nocap-stale-telemetry", recorder=TeeRecorder([trace, live]),
        )
        replayed = AlertEngine().replay(trace.events)
        replayed.finalize(240.0)  # the simulator finalizes the live one
        assert [i.to_dict() for i in replayed.incidents] == \
            [i.to_dict() for i in live.incidents]

    def test_two_identical_runs_yield_identical_incidents(self):
        snapshots = []
        for _ in range(2):
            result = run_reference(
                "nocap-power-scaled", recorder=AlertEngine()
            )
            snapshots.append(result.observability)
        assert snapshots[0]["incidents"] == snapshots[1]["incidents"]
        assert snapshots[0]["alerts"] == snapshots[1]["alerts"]

    def test_incidents_survive_the_result_codec(self):
        result = run_reference("nocap-stale-telemetry",
                               recorder=AlertEngine())
        decoded = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert decoded.observability["incidents"] == \
            result.observability["incidents"]
        assert decoded.observability["alerts"] == \
            result.observability["alerts"]


# ----------------------------------------------------------------------
# Merging across sweeps and rendering
# ----------------------------------------------------------------------
class TestMergeAndRender:
    def snapshot(self, *rules_and_resolved):
        incidents = [
            Incident(
                rule=rule, severity=severity, opened_at=10.0,
                breached_at=5.0, trigger_value=1.0, peak_value=2.0,
                resolved_at=resolved,
            ).to_dict()
            for rule, severity, resolved in rules_and_resolved
        ]
        return {"incidents": incidents}

    def test_merge_concatenates_and_rederives_counters(self):
        merged = merge_incident_snapshots([
            self.snapshot(("storm", "critical", None)),
            None,
            {"counters": {"requests.served": 3}},  # no incidents key
            self.snapshot(("storm", "critical", 50.0),
                          ("slo", "warning", None)),
        ])
        assert len(merged["incidents"]) == 3
        assert merged["alerts"] == {
            "opened": 3,
            "resolved": 1,
            "open": 2,
            "by_rule": {"slo": 1, "storm": 2},
            "by_severity": {"critical": 2, "warning": 1},
        }

    def test_merge_of_nothing_is_empty(self):
        merged = merge_incident_snapshots([None, {"counters": {}}])
        assert merged["incidents"] == []
        assert merged["alerts"]["opened"] == 0

    def test_incident_table_renders_objects_and_dicts(self):
        incident = Incident(
            rule="brake-storm", severity="critical", opened_at=146.0,
            breached_at=146.0, trigger_value=3.0, peak_value=5.0,
            description="too many brakes",
        )
        lines = incident_table([incident, incident.to_dict()])
        assert lines[0].split() == [
            "rule", "severity", "opened", "resolved", "peak", "condition",
        ]
        assert len(lines) == 4  # header, underline, two rows
        for row in lines[2:]:
            assert "brake-storm" in row and "open" in row

    def test_incident_table_empty(self):
        lines = incident_table([])
        assert len(lines) == 2  # header and underline only
