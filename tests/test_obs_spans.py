"""Per-request span trees: reconstruction, causal stamping, rendering.

The hand-written streams pin down the exact semantics — interval
boundaries, the brake-release-over-a-capped-pool case, fallback-tainted
cap generations — and the simulator-driven tests check that a live
:class:`SpanBuilder` (teed with a storage sink) reconstructs the same
trees as a post-hoc replay of the recorded trace.
"""

import pytest

from repro.obs import (
    JsonlRecorder,
    MemoryRecorder,
    SpanBuilder,
    TeeRecorder,
    build_spans,
    render_span_tree,
)
from tests.test_obs import (
    REFERENCE_CONFIGS,
    assert_results_bit_identical,
    run_reference,
)


def meta_event(**overrides):
    event = {
        "t": 0.0, "kind": "run_meta", "duration_s": 100.0,
        "n_servers": 1, "concurrency": 2, "provisioned_power_w": 1000.0,
        "idle_server_power_w": 250.0, "brake_ratio": 0.5,
        "servers": {"s0": "low"},
    }
    event.update(overrides)
    return event


def simple_request_events():
    """One request served under a cap, a brake pulse, then the cap again."""
    return [
        meta_event(),
        {"t": 1.0, "kind": "req_arrival", "request_id": 0,
         "priority": "low", "workload": "Chat", "input_tokens": 100,
         "output_tokens": 50, "server": "s0", "queued": False},
        {"t": 1.0, "kind": "phase_start", "request_id": 0, "server": "s0",
         "slot": 0, "phase": "prompt", "phase_index": 0, "ratio": 1.0,
         "full_clock_s": 2.0, "compute_fraction": 1.0, "planned_end": 3.0},
        {"t": 2.0, "kind": "cap_issue", "priority": "low", "generation": 1,
         "attempts": 0},
        {"t": 2.0, "kind": "cap_land", "priority": "low", "generation": 1,
         "ratio": 0.8, "clock_mhz": 1100.0},
        {"t": 2.0, "kind": "phase_rescale", "request_id": 0, "server": "s0",
         "slot": 0, "phase": "prompt", "old_ratio": 1.0, "new_ratio": 0.8,
         "cause": "cap", "priority": "low", "generation": 1},
        {"t": 3.5, "kind": "brake_request", "version": 1, "source": "policy"},
        {"t": 3.5, "kind": "brake_land", "version": 1, "on": True},
        {"t": 3.5, "kind": "phase_rescale", "request_id": 0, "server": "s0",
         "slot": 0, "phase": "prompt", "old_ratio": 0.8, "new_ratio": 0.5,
         "cause": "brake", "version": 1, "on": True},
        {"t": 4.5, "kind": "brake_land", "version": 1, "on": False},
        {"t": 4.5, "kind": "phase_rescale", "request_id": 0, "server": "s0",
         "slot": 0, "phase": "prompt", "old_ratio": 0.5, "new_ratio": 0.8,
         "cause": "brake", "version": 1, "on": False},
        {"t": 6.0, "kind": "serve", "request_id": 0, "priority": "low",
         "workload": "Chat", "latency_s": 5.0, "server": "s0"},
    ]


class TestSpanReconstruction:
    def test_simple_request_span_shape(self):
        spans = build_spans(simple_request_events())
        assert len(spans) == 1
        span = spans[0]
        assert span.request_id == 0
        assert span.outcome == "served"
        assert span.priority == "low" and span.workload == "Chat"
        assert span.server == "s0" and span.queued is False
        assert span.arrival_t == 1.0 and span.end_t == 6.0
        assert span.realized_s == 5.0
        assert span.queue_wait_s == 0.0
        assert len(span.phases) == 1
        phase = span.phases[0]
        assert phase.phase == "prompt"
        assert phase.full_clock_s == 2.0
        assert phase.start == 1.0 and phase.end == 6.0

    def test_intervals_tile_the_phase(self):
        (span,) = build_spans(simple_request_events())
        intervals = span.phases[0].intervals
        assert [(iv.start, iv.end, iv.ratio) for iv in intervals] == [
            (1.0, 2.0, 1.0),
            (2.0, 3.5, 0.8),
            (3.5, 4.5, 0.5),
            (4.5, 6.0, 0.8),
        ]
        # Contiguity: each interval begins where the previous ended.
        for previous, current in zip(intervals, intervals[1:]):
            assert previous.end == current.start
        assert intervals[0].start == span.phases[0].start
        assert intervals[-1].end == span.phases[0].end

    def test_causal_stamps(self):
        (span,) = build_spans(simple_request_events())
        full, capped, braked, recapped = span.phases[0].intervals
        assert full.cause is None and full.stamp == {}
        assert capped.cause == "cap"
        assert capped.stamp == {
            "priority": "low", "generation": 1, "fallback": False,
        }
        assert braked.cause == "brake"
        assert braked.stamp == {"version": 1, "source": "policy"}
        # The brake *release* re-exposes the still-capped pool: the new
        # interval is the cap's fault, not the brake's.
        assert recapped.cause == "cap"
        assert recapped.stamp["generation"] == 1

    def test_fallback_generation_is_tainted(self):
        events = simple_request_events()
        events.insert(3, {"t": 1.5, "kind": "fallback_enter"})
        (span,) = build_spans(events)
        capped = span.phases[0].intervals[1]
        assert capped.cause == "cap"
        assert capped.stamp["fallback"] is True

    def test_cap_issued_outside_fallback_is_untainted(self):
        events = simple_request_events()
        # Fallback exits before the cap is issued: no taint.
        events.insert(1, {"t": 0.5, "kind": "fallback_enter"})
        events.insert(2, {"t": 0.8, "kind": "fallback_exit"})
        (span,) = build_spans(events)
        assert span.phases[0].intervals[1].stamp["fallback"] is False

    def test_brake_source_fallback_is_stamped(self):
        events = simple_request_events()
        for event in events:
            if event["kind"] == "brake_request":
                event["source"] = "fallback"
        (span,) = build_spans(events)
        braked = span.phases[0].intervals[2]
        assert braked.stamp == {"version": 1, "source": "fallback"}

    def test_cancel_release_inherits_engagement_source(self):
        builder = SpanBuilder()
        builder.emit({"t": 1.0, "kind": "brake_request", "version": 1,
                      "source": "fallback"})
        builder.emit({"t": 1.5, "kind": "brake_land", "version": 1,
                      "on": True})
        builder.emit({"t": 2.0, "kind": "brake_cancel_release",
                      "version": 2})
        builder.emit({"t": 2.5, "kind": "brake_land", "version": 2,
                      "on": True})
        cause, stamp = builder._current_cause("s0", 0.5)
        assert cause == "brake"
        assert stamp == {"version": 2, "source": "fallback"}

    def test_drop_closes_the_span(self):
        events = simple_request_events()[:3] + [
            {"t": 4.0, "kind": "drop", "request_id": 0, "priority": "low",
             "reason": "churn", "server": "s0"},
        ]
        (span,) = build_spans(events)
        assert span.outcome == "dropped"
        assert span.drop_reason == "churn"
        assert span.end_t == 4.0
        assert span.phases[0].end == 4.0
        assert span.phases[0].intervals[-1].end == 4.0

    def test_routing_drop_has_no_phases(self):
        events = [
            meta_event(),
            {"t": 1.0, "kind": "req_arrival", "request_id": 7,
             "priority": "high", "workload": "Search", "server": None,
             "queued": False},
            {"t": 1.0, "kind": "drop", "request_id": 7, "priority": "high",
             "reason": "saturated"},
        ]
        (span,) = build_spans(events)
        assert span.outcome == "dropped" and span.phases == []
        assert span.start_t is None and span.queue_wait_s is None

    def test_truncated_trace_leaves_span_in_flight(self):
        events = simple_request_events()[:3]
        (span,) = build_spans(events)
        assert span.outcome == "in_flight"
        assert span.end_t is None and span.realized_s is None
        assert span.phases[0].end is None
        assert span.phases[0].intervals[-1].end is None

    def test_pre_span_traces_are_ignored_gracefully(self):
        """Events recorded before the span layer produce no spans."""
        events = [
            {"t": 1.0, "kind": "serve", "latency_s": 2.0,
             "priority": "low", "workload": "Chat"},
            {"t": 2.0, "kind": "drop", "priority": "low",
             "reason": "saturated"},
            {"t": 3.0, "kind": "cap_land", "priority": "low",
             "generation": 1, "clock_mhz": 1100.0},
        ]
        assert build_spans(events) == []

    def test_unknown_event_kinds_are_skipped(self):
        events = simple_request_events()
        events.insert(4, {"t": 2.0, "kind": "from_the_future", "x": 1})
        assert len(build_spans(events)) == 1

    def test_from_source_accepts_builder_recorder_and_path(self, tmp_path):
        events = simple_request_events()
        builder = SpanBuilder.from_source(events)
        assert SpanBuilder.from_source(builder) is builder
        recorder = MemoryRecorder()
        for event in events:
            recorder.emit(event)
        path = str(tmp_path / "trace.jsonl")
        with JsonlRecorder(path) as sink:
            for event in events:
                sink.emit(event)
        for source in (recorder, path):
            assert build_spans(source) == builder.build()

    def test_get_returns_one_span(self):
        builder = SpanBuilder.from_source(simple_request_events())
        assert builder.get(0).request_id == 0
        assert builder.get(99) is None

    def test_control_events_are_retained(self):
        builder = SpanBuilder.from_source(simple_request_events())
        kinds = [e["kind"] for e in builder.control_events]
        assert kinds == ["cap_land", "brake_land", "brake_land"]

    def test_finalize_records_t_end(self):
        builder = SpanBuilder()
        assert builder.t_end is None
        builder.finalize(240.0)
        assert builder.t_end == 240.0

    def test_builder_is_an_enabled_recorder(self):
        assert SpanBuilder().enabled is True


class TestRenderSpanTree:
    def test_served_request_rendering(self):
        (span,) = build_spans(simple_request_events())
        text = "\n".join(render_span_tree(span))
        assert "request 0 [low/Chat] - served" in text
        assert "queue-wait 0.000s" in text
        assert "<- cap low gen 1" in text
        assert "<- brake v1 (policy)" in text
        assert "(latency 5.000s)" in text

    def test_fallback_annotation(self):
        events = simple_request_events()
        events.insert(3, {"t": 1.5, "kind": "fallback_enter"})
        (span,) = build_spans(events)
        assert "[fallback]" in "\n".join(render_span_tree(span))

    def test_dropped_request_rendering(self):
        events = simple_request_events()[:3] + [
            {"t": 4.0, "kind": "drop", "request_id": 0, "priority": "low",
             "reason": "churn", "server": "s0"},
        ]
        (span,) = build_spans(events)
        assert "dropped" in "\n".join(render_span_tree(span))
        assert "(churn)" in "\n".join(render_span_tree(span))


class TestSimulatorSpans:
    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_live_builder_matches_posthoc_replay(self, name):
        builder = SpanBuilder()
        memory = MemoryRecorder()
        run_reference(name, recorder=TeeRecorder([memory, builder]))
        assert builder.build() == build_spans(memory.events)

    def test_span_recording_does_not_perturb_the_run(self):
        bare = run_reference("polca-adversarial")
        traced = run_reference("polca-adversarial", recorder=SpanBuilder())
        assert_results_bit_identical(bare, traced)

    def test_span_counts_match_result_accounting(self):
        builder = SpanBuilder()
        result = run_reference("polca-oversubscribed", recorder=builder)
        spans = builder.build()
        served = [s for s in spans if s.outcome == "served"]
        dropped = [s for s in spans if s.outcome == "dropped"]
        assert len(served) == result.total_served
        assert len(dropped) == sum(
            m.dropped for m in result.per_priority.values()
        )
        assert not [s for s in spans if s.outcome == "in_flight"]

    def test_simulated_phases_tile_and_order(self):
        builder = SpanBuilder()
        run_reference("polca-default", recorder=builder)
        for span in builder.build():
            for phase in span.phases:
                intervals = phase.intervals
                assert intervals[0].start == phase.start
                if phase.end is not None:
                    assert intervals[-1].end == phase.end
                for previous, current in zip(intervals, intervals[1:]):
                    assert previous.end == current.start
            for previous, current in zip(span.phases, span.phases[1:]):
                assert previous.end == current.start

    def test_observability_snapshot_sections(self):
        builder = SpanBuilder()
        result = run_reference("polca-default", recorder=builder)
        snapshot = result.observability
        assert snapshot["spans"]["requests"] == len(builder.build())
        outcomes = snapshot["spans"]["outcomes"]
        assert outcomes["served"] == result.total_served
        assert snapshot["attribution"]["conservation_ok"] is True
