"""Power-brake state machine: latency, idempotence, event counting."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.brake import BrakeState, PowerBrake, DEFAULT_BRAKE_LATENCY_S
from repro.gpu.specs import A100_80GB


def test_default_latency_matches_table2():
    assert DEFAULT_BRAKE_LATENCY_S == 5.0


def test_negative_latency_rejected():
    with pytest.raises(ConfigurationError):
        PowerBrake(A100_80GB, latency_s=-1.0)


class TestLifecycle:
    def test_starts_released(self):
        brake = PowerBrake(A100_80GB)
        assert brake.state(0.0) is BrakeState.RELEASED
        assert not brake.is_engaged(0.0)

    def test_engage_takes_effect_after_latency(self):
        brake = PowerBrake(A100_80GB)
        brake.engage(10.0)
        assert brake.state(12.0) is BrakeState.ENGAGING
        assert not brake.is_engaged(14.9)
        assert brake.is_engaged(15.0)

    def test_clock_ceiling_drops_only_once_engaged(self):
        brake = PowerBrake(A100_80GB)
        brake.engage(0.0)
        assert brake.clock_ceiling_mhz(1.0) == A100_80GB.max_sm_clock_mhz
        assert brake.clock_ceiling_mhz(6.0) == A100_80GB.brake_clock_mhz

    def test_release_restores_immediately(self):
        brake = PowerBrake(A100_80GB)
        brake.engage(0.0)
        assert brake.is_engaged(6.0)
        brake.release()
        assert not brake.is_engaged(7.0)
        assert brake.clock_ceiling_mhz(7.0) == A100_80GB.max_sm_clock_mhz


class TestEventCounting:
    def test_distinct_engagements_counted(self):
        brake = PowerBrake(A100_80GB)
        brake.engage(0.0)
        brake.release()
        brake.engage(100.0)
        assert brake.engage_count == 2

    def test_reengage_while_pending_is_idempotent(self):
        """Figure 18 counts distinct brake events, not repeated commands."""
        brake = PowerBrake(A100_80GB)
        brake.engage(0.0)
        brake.engage(1.0)
        brake.engage(2.0)
        assert brake.engage_count == 1

    def test_reengage_while_engaged_is_idempotent(self):
        brake = PowerBrake(A100_80GB)
        brake.engage(0.0)
        assert brake.is_engaged(10.0)
        brake.engage(11.0)
        assert brake.engage_count == 1
