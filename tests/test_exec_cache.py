"""Run memoization: digests, the memo cache, and shared-work accounting."""

import os

import pytest

from repro.cluster.simulator import ClusterConfig
from repro.core.policy import POLCA_DEFAULTS, PolcaThresholds
from repro.core.sweeps import (
    EvaluationHarness,
    added_servers_sweep,
    compare_policies,
)
from repro.errors import ConfigurationError
from repro.exec import (
    PolicySpec,
    RunCache,
    RunSpec,
    SweepEngine,
    execute_spec,
    policy_spec_for,
    result_from_dict,
    result_to_dict,
)
from repro.exec import traces
from repro.exec.profile import profile_call, timed
from repro.units import hours


def small_spec(seed: int = 1, added_fraction: float = 0.0,
               policy: str = "No-cap") -> RunSpec:
    return RunSpec(
        config=ClusterConfig(
            n_base_servers=10, added_fraction=added_fraction, seed=seed
        ),
        policy=PolicySpec(policy),
        duration_s=hours(2),
    )


class TestDigests:
    def test_digest_is_stable_across_instances(self):
        assert small_spec().digest() == small_spec().digest()

    def test_digest_distinguishes_every_knob(self):
        base = small_spec()
        assert base.digest() != small_spec(seed=2).digest()
        assert base.digest() != small_spec(added_fraction=0.30).digest()
        assert base.digest() != small_spec(policy="POLCA").digest()

    def test_polca_thresholds_normalize(self):
        explicit = RunSpec(
            config=ClusterConfig(n_base_servers=10, seed=1),
            policy=PolicySpec("POLCA", POLCA_DEFAULTS),
            duration_s=hours(2),
        )
        implicit = RunSpec(
            config=ClusterConfig(n_base_servers=10, seed=1),
            policy=PolicySpec("POLCA"),
            duration_s=hours(2),
        )
        assert explicit.digest() == implicit.digest()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicySpec("Round-Robin")

    def test_thresholds_only_for_polca(self):
        with pytest.raises(ConfigurationError):
            PolicySpec("No-cap", PolcaThresholds())


class TestPolicyRecognition:
    def test_named_policies_round_trip(self):
        from repro.core.baselines import all_policies

        for name, factory in all_policies().items():
            spec = policy_spec_for(factory())
            assert spec is not None and spec.name == name

    def test_custom_thresholds_recognized(self):
        from repro.core.policy import DualThresholdPolicy

        thresholds = PolcaThresholds(t1=0.7, t2=0.8)
        spec = policy_spec_for(DualThresholdPolicy(thresholds))
        assert spec is not None and spec.thresholds == thresholds

    def test_unrecognized_policy_returns_none(self):
        from repro.core.baselines import SingleThresholdAllPolicy

        class Custom(SingleThresholdAllPolicy):
            pass

        assert policy_spec_for(Custom()) is None


class TestRunCache:
    def test_engine_memoizes(self):
        engine = SweepEngine(workers=1)
        spec = small_spec()
        first = engine.run(spec)
        assert engine.last_stats.simulated == 1
        second = engine.run(spec)
        assert second is first
        assert engine.last_stats.simulated == 0
        assert engine.last_stats.cache_hits == 1

    def test_in_batch_duplicates_simulated_once(self):
        engine = SweepEngine(workers=1)
        results = engine.run_specs([small_spec(), small_spec()])
        assert engine.last_stats.requested == 2
        assert engine.last_stats.unique == 1
        assert engine.last_stats.simulated == 1
        assert results[0] is results[1]

    def test_disk_cache_round_trips(self, tmp_path):
        spec = small_spec()
        writer = SweepEngine(workers=1, cache=RunCache(cache_dir=tmp_path))
        original = writer.run(spec)
        # A fresh process would start with an empty memory layer; a new
        # cache over the same directory stands in for that here.
        reader = SweepEngine(workers=1, cache=RunCache(cache_dir=tmp_path))
        recalled = reader.run(spec)
        assert reader.last_stats.simulated == 0
        assert reader.cache.disk_hits == 1
        assert (
            recalled.power_series.values == original.power_series.values
        ).all()
        assert recalled.total_energy_j == original.total_energy_j

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        spec = small_spec()
        cache = RunCache(cache_dir=tmp_path)
        SweepEngine(workers=1, cache=cache).run(spec)
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("{not json")
        fresh = RunCache(cache_dir=tmp_path)
        assert fresh.get(spec.digest()) is None


class TestBoundedDisk:
    def test_budget_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunCache(cache_dir=tmp_path, max_disk_bytes=0)

    def test_lru_eviction_order_and_counter(self, tmp_path):
        cache = RunCache(cache_dir=tmp_path, max_disk_bytes=250)
        cache.put_blob("a", b"x" * 100)
        cache.put_blob("b", b"y" * 100)
        # Touch "a" so "b" becomes the least-recently-used entry.
        assert cache.get_blob("a") == b"x" * 100
        cache.put_blob("c", b"z" * 100)
        assert cache.evictions == 1
        assert (tmp_path / "a.bin").exists()
        assert not (tmp_path / "b.bin").exists()
        assert (tmp_path / "c.bin").exists()
        assert cache.disk_bytes == 200
        # The evicted blob is still served from the memory layer.
        assert cache.get_blob("b") == b"y" * 100

    def test_oversized_entry_stays_memory_only(self, tmp_path):
        cache = RunCache(cache_dir=tmp_path, max_disk_bytes=50)
        cache.put_blob("big", b"x" * 100)
        assert not (tmp_path / "big.bin").exists()
        assert cache.evictions == 0
        assert cache.get_blob("big") == b"x" * 100

    def test_blob_round_trips_across_processes(self, tmp_path):
        RunCache(cache_dir=tmp_path).put_blob("ckpt", b"\x00\x01state")
        fresh = RunCache(cache_dir=tmp_path)
        assert fresh.get_blob("ckpt") == b"\x00\x01state"
        assert fresh.disk_hits == 1
        assert fresh.get_blob("missing") is None
        assert fresh.misses == 1

    def test_lru_seeded_from_mtimes(self, tmp_path):
        writer = RunCache(cache_dir=tmp_path)
        writer.put_blob("old", b"a" * 100)
        writer.put_blob("new", b"b" * 100)
        os.utime(tmp_path / "old.bin", (1, 1))
        os.utime(tmp_path / "new.bin", (2, 2))
        fresh = RunCache(cache_dir=tmp_path, max_disk_bytes=250)
        assert fresh.disk_bytes == 200
        fresh.put_blob("third", b"c" * 100)
        # The oldest-modified file is evicted first by a fresh process.
        assert not (tmp_path / "old.bin").exists()
        assert (tmp_path / "new.bin").exists()

    def test_json_results_count_against_budget(self, tmp_path):
        spec = small_spec()
        cache = RunCache(cache_dir=tmp_path, max_disk_bytes=64)
        SweepEngine(workers=1, cache=cache).run(spec)
        # A full result is far larger than 64 bytes: memory-only.
        assert list(tmp_path.glob("*.json")) == []
        assert cache.get(spec.digest()) is not None

    def test_stats_has_disk_counters(self, tmp_path):
        cache = RunCache(cache_dir=tmp_path, max_disk_bytes=100)
        cache.put_blob("a", b"x" * 60)
        cache.put_blob("b", b"y" * 60)
        stats = cache.stats
        assert stats["evictions"] == 1
        assert stats["blobs"] == 2
        assert stats["disk_bytes"] == 60
        assert stats["stores"] == 2

    def test_clear_disk_drops_blobs_and_accounting(self, tmp_path):
        cache = RunCache(cache_dir=tmp_path)
        cache.put_blob("a", b"x" * 10)
        cache.clear(disk=True)
        assert cache.disk_bytes == 0
        assert list(tmp_path.iterdir()) == []
        assert cache.get_blob("a") is None


class TestSharedBaseline:
    def test_baseline_simulated_once_across_sweeps(self):
        harness = EvaluationHarness(
            n_base_servers=10, duration_s=hours(2), seed=1
        )
        added_servers_sweep(harness, PolcaThresholds(), [0.0, 0.30])
        stores_after_sweep = harness.cache.stores
        compare_policies(harness, added_fraction=0.30, power_scales=(1.0,))
        # The comparison reuses the sweep's baseline: only the three
        # policies not already simulated (POLCA@30 is shared too) are new.
        assert harness.cache.stores == stores_after_sweep + 3

    def test_harness_run_hits_sweep_cache(self):
        from repro.core.policy import DualThresholdPolicy

        harness = EvaluationHarness(
            n_base_servers=10, duration_s=hours(2), seed=1
        )
        points = added_servers_sweep(harness, PolcaThresholds(), [0.30])
        del points
        stores = harness.cache.stores
        harness.run(DualThresholdPolicy(), added_fraction=0.30)
        assert harness.cache.stores == stores


class TestCodec:
    def test_round_trip_is_value_identical(self):
        original = execute_spec(small_spec(policy="POLCA",
                                           added_fraction=0.30))
        decoded = result_from_dict(result_to_dict(original))
        assert (
            decoded.power_series.values == original.power_series.values
        ).all()
        assert decoded.power_series.interval == original.power_series.interval
        assert decoded.total_energy_j == original.total_energy_j
        assert decoded.capping_actions == original.capping_actions
        assert decoded.power_brake_events == original.power_brake_events
        assert decoded.duration_s == original.duration_s
        for priority, metrics in original.per_priority.items():
            assert decoded.per_priority[priority].latencies == \
                metrics.latencies
            assert decoded.per_priority[priority].served == metrics.served
            assert decoded.per_priority[priority].dropped == metrics.dropped

    def test_schema_mismatch_rejected(self):
        encoded = result_to_dict(execute_spec(small_spec()))
        encoded["schema"] = -1
        with pytest.raises(ConfigurationError):
            result_from_dict(encoded)

    def test_schema_v2_snapshot_still_decodes(self):
        """A checked-in schema-2 result file must stay loadable.

        Version 2 predates the live-layer (incidents/alerts/stream) and
        causal (spans/attribution) observability sections; consumers
        treat the missing sections as empty, so the codec accepts the
        old layout rather than invalidating every old cache entry.
        """
        import json
        from pathlib import Path

        path = Path(__file__).parent / "data" / "result_v2.json"
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["schema"] == 2
        decoded = result_from_dict(data)
        assert decoded.total_served > 0
        assert decoded.duration_s == data["duration_s"]
        obs = decoded.observability
        assert set(obs) == {"counters", "gauges", "histograms"}
        assert "incidents" not in obs and "spans" not in obs
        # The v2 metrics snapshot aggregates alongside current ones.
        from repro.obs import aggregate_snapshots

        merged = aggregate_snapshots([obs, None, obs])
        assert merged["counters"] == {
            name: 2 * value for name, value in obs["counters"].items()
        }

    def test_schema_v3_still_decodes(self):
        encoded = result_to_dict(execute_spec(small_spec()))
        encoded["schema"] = 3
        decoded = result_from_dict(encoded)
        assert decoded.duration_s == encoded["duration_s"]

    def test_schema_v4_still_decodes(self):
        encoded = result_to_dict(execute_spec(small_spec()))
        encoded["schema"] = 4
        del encoded["powerfail"]
        decoded = result_from_dict(encoded)
        assert decoded.duration_s == encoded["duration_s"]
        assert decoded.powerfail is None

    def test_schema_v5_still_decodes(self):
        # v5 lacks only the optional sim_core kernel-timer section
        # inside observability, which is pass-through — the checked-in
        # golden_reference_results_v5.json exercises the same shim
        # against real pre-SoA captures.
        encoded = result_to_dict(execute_spec(small_spec()))
        encoded["schema"] = 5
        decoded = result_from_dict(encoded)
        assert decoded.duration_s == encoded["duration_s"]
        assert decoded.observability is None

    def test_current_schema_is_v6(self):
        from repro.exec.codec import SCHEMA_VERSION

        assert SCHEMA_VERSION == 6
        encoded = result_to_dict(execute_spec(small_spec()))
        assert encoded["schema"] == 6
        # An unprotected run serializes an explicitly empty section.
        assert encoded["powerfail"] is None

    def test_kernel_timer_section_round_trips(self):
        from repro.cluster.simulator import ClusterSimulator
        from repro.exec import traces

        spec = small_spec()
        requests = traces.requests_for(spec.trace_key())
        result = ClusterSimulator(
            spec.config, spec.policy.build(), kernel_timers=True
        ).run(requests, spec.duration_s)
        decoded = result_from_dict(result_to_dict(result))
        timers = decoded.observability["sim_core"]["kernel_timers"]
        assert timers == result.observability["sim_core"]["kernel_timers"]
        assert timers["tick"]["calls"] > 0


class TestTraceCache:
    def test_traces_shared_by_key(self):
        key = traces.TraceKey(seed=1, n_servers=10, duration_s=hours(2))
        assert traces.requests_for(key) is traces.requests_for(key)

    def test_trace_cache_is_bounded(self):
        for seed in range(traces._MAX_TRACES + 4):
            traces.utilization_trace(seed=seed + 1000, duration_s=hours(2))
        assert traces.cache_sizes()["utilization_traces"] <= \
            traces._MAX_TRACES


class TestProfileHelpers:
    def test_profile_call_returns_result_and_hotspots(self):
        result, report = profile_call(sum, range(1000), top=5)
        assert result == sum(range(1000))
        assert report.wall_s >= 0
        assert len(report.top) <= 5
        assert all(spot.tottime_s >= 0 for spot in report.top)
        assert "cumtime" in report.text

    def test_profile_kernels_surfaces_event_loop_counters(self):
        from repro.exec import kernel_stats, profile_kernels

        result, stats = profile_kernels(small_spec())
        assert stats  # at least ticks ran
        kinds = {stat.kind for stat in stats}
        assert "tick" in kinds
        assert all(stat.calls > 0 and stat.seconds >= 0 for stat in stats)
        assert stats == kernel_stats(result)
        # The counters ride in observability, so they survive the codec.
        decoded = result_from_dict(result_to_dict(result))
        assert kernel_stats(decoded) == stats
        # Untimed runs read back empty rather than raising.
        assert kernel_stats(execute_spec(small_spec())) == ()

    def test_timed_freezes_at_block_exit(self):
        with timed() as elapsed:
            during = elapsed()
        after = elapsed()
        assert during >= 0
        assert after == elapsed()
