"""The regression sentinel: tolerance policies and baseline diffs.

The acceptance bar from the issue: the sentinel must flag a 10%
wall-time drift under the default relative tolerance, and *any* drift
at all in a deterministic (exact) metric — digests, counters, energy
integrals. Ignored paths (host identity) must never flag, and the
noise floor must keep micro-benchmarks from crying wolf.
"""

import json

import pytest

from repro.cluster.simulator import ClusterConfig
from repro.errors import ConfigurationError
from repro.exec import PolicySpec, RunSpec, SweepEngine
from repro.obs import (
    DEFAULT_POLICIES,
    ExperimentLedger,
    Tolerance,
    check_bench,
    check_bench_dir,
    check_ledger,
    compare_metrics,
)
from repro.obs.regress import main, resolve_tolerance

#: A small but realistic benchmark report (the shape of BENCH_sweeps).
BASELINE = {
    "grid": {"combos": 3, "added_fractions": 4, "unique_runs": 13},
    "serial": {"workers": 1, "wall_s": 10.0, "runs_per_s": 1.3},
    "parallel": {"workers": 4, "wall_s": 3.0, "runs_per_s": 4.3},
    "speedup": 3.3,
    "cpu_count": 8,
}


def fresh(**overrides):
    report = json.loads(json.dumps(BASELINE))
    for path, value in overrides.items():
        node = report
        *parents, leaf = path.split(".")
        for key in parents:
            node = node[key]
        node[leaf] = value
    return report


# ----------------------------------------------------------------------
# Tolerance semantics
# ----------------------------------------------------------------------
class TestTolerance:
    def test_exact_is_equality(self):
        tol = Tolerance.exact()
        assert tol.within(3, 3)
        assert not tol.within(3, 3.0000001)
        assert tol.within("abc", "abc")
        assert not tol.within("abc", "abd")

    def test_relative_allows_the_band(self):
        tol = Tolerance.relative(rel_tol=0.05, noise_floor=0.0)
        assert tol.within(100.0, 104.9)
        assert tol.within(100.0, 95.1)
        assert not tol.within(100.0, 106.0)
        assert not tol.within(100.0, 94.0)

    def test_noise_floor_absorbs_small_absolute_moves(self):
        """0.1 s -> 0.3 s is a 3x relative change but under the floor."""
        tol = Tolerance.relative(rel_tol=0.05, noise_floor=0.25)
        assert tol.within(0.1, 0.3)
        assert not tol.within(0.1, 0.4)

    def test_zero_baseline_requires_zero(self):
        tol = Tolerance.relative(rel_tol=0.05, noise_floor=0.0)
        assert tol.within(0.0, 0.0)
        assert not tol.within(0.0, 0.001)

    def test_relative_on_non_numeric_falls_back_to_equality(self):
        tol = Tolerance.relative()
        assert tol.within("linux", "linux")
        assert not tol.within("linux", "darwin")
        assert not tol.within(True, 1.04)  # bools are not numeric here

    def test_ignore_accepts_anything(self):
        assert Tolerance.ignore().within(1, "banana")

    def test_invalid_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            Tolerance("fuzzy")
        with pytest.raises(ConfigurationError):
            Tolerance("relative", rel_tol=-0.1)

    def test_default_policy_resolution(self):
        assert resolve_tolerance("serial.wall_s").mode == "relative"
        assert resolve_tolerance("speedup").mode == "relative"
        assert resolve_tolerance("cpu_count").mode == "ignore"
        assert resolve_tolerance("ledger.x.env.python").mode == "ignore"
        assert resolve_tolerance("grid.unique_runs").mode == "exact"
        # First match wins over later patterns.
        assert resolve_tolerance(
            "x", [("x", Tolerance.ignore()), ("*", Tolerance.exact())]
        ).mode == "ignore"


# ----------------------------------------------------------------------
# compare_metrics verdicts
# ----------------------------------------------------------------------
class TestCompareMetrics:
    def test_identical_reports_are_clean(self):
        report = compare_metrics(BASELINE, fresh())
        assert report.ok
        assert report.diffs == []
        assert report.checked > 0
        assert report.first_divergence() is None

    def test_ten_percent_wall_drift_flags(self):
        """The issue's acceptance bar: +10% wall time must flag under
        the default 5% tolerance."""
        report = compare_metrics(BASELINE, fresh(**{
            "serial.wall_s": 11.0, "parallel.wall_s": 3.3,
        }))
        assert not report.ok
        paths = {d.path for d in report.regressions}
        assert paths == {"serial.wall_s", "parallel.wall_s"}
        assert all(d.status == "drift" for d in report.regressions)

    def test_four_percent_wall_drift_passes(self):
        report = compare_metrics(BASELINE, fresh(**{
            "serial.wall_s": 10.4,
        }))
        assert report.ok

    def test_any_exact_metric_drift_flags(self):
        """Deterministic counters tolerate nothing."""
        report = compare_metrics(BASELINE, fresh(**{
            "grid.unique_runs": 14,
        }))
        assert not report.ok
        (diff,) = report.regressions
        assert diff.path == "grid.unique_runs"
        assert diff.mode == "exact"
        assert "14" in diff.describe()

    def test_ignored_paths_never_flag_or_count(self):
        clean = compare_metrics(BASELINE, fresh())
        wild = compare_metrics(BASELINE, fresh(cpu_count=128))
        assert wild.ok
        assert wild.checked == clean.checked

    def test_missing_metric_is_a_regression(self):
        current = fresh()
        del current["speedup"]
        report = compare_metrics(BASELINE, current)
        (diff,) = report.regressions
        assert diff.path == "speedup"
        assert diff.status == "missing"
        assert "missing" in diff.describe()

    def test_added_metric_is_informational(self):
        report = compare_metrics(BASELINE, fresh(new_metric=1.0))
        assert report.ok
        (diff,) = report.diffs
        assert diff.status == "added"
        assert not diff.is_regression

    def test_lists_diff_by_index(self):
        report = compare_metrics(
            {"series": [1, 2, 3]}, {"series": [1, 9, 3]},
        )
        (diff,) = report.regressions
        assert diff.path == "series[1]"

    def test_first_divergence_reuses_the_trace_differ(self):
        report = compare_metrics(BASELINE, fresh(**{
            "grid.unique_runs": 14,
        }))
        divergence = report.first_divergence()
        assert divergence is not None
        assert "unique_runs" in divergence.field

    def test_summary_lines_name_the_verdict(self):
        ok = compare_metrics(BASELINE, fresh(), name="BENCH_x.json")
        assert "BENCH_x.json" in ok.summary_lines()[0]
        assert "ok" in ok.summary_lines()[0]
        bad = compare_metrics(BASELINE, fresh(speedup=1.0))
        lines = bad.summary_lines()
        assert "1 regression(s)" in lines[0]
        assert any(line.lstrip().startswith("!") for line in lines[1:])


# ----------------------------------------------------------------------
# The baselines directory workflow
# ----------------------------------------------------------------------
class TestCheckBenchDir:
    @pytest.fixture()
    def tree(self, tmp_path):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        (baselines / "BENCH_a.json").write_text(json.dumps(BASELINE))
        (tmp_path / "BENCH_a.json").write_text(json.dumps(fresh()))
        return tmp_path

    def test_clean_tree_passes(self, tree):
        reports = check_bench_dir(str(tree), str(tree / "baselines"))
        assert [r.ok for r in reports] == [True]

    def test_drifted_report_fails(self, tree):
        (tree / "BENCH_a.json").write_text(json.dumps(
            fresh(**{"grid.unique_runs": 99})
        ))
        (report,) = check_bench_dir(str(tree), str(tree / "baselines"))
        assert not report.ok

    def test_absent_fresh_report_is_a_regression(self, tree):
        (tree / "BENCH_a.json").unlink()
        (report,) = check_bench_dir(str(tree), str(tree / "baselines"))
        assert not report.ok
        assert report.regressions[0].path == "<report-file>"
        assert report.regressions[0].status == "missing"

    def test_update_refreshes_baselines(self, tree):
        drifted = fresh(**{"grid.unique_runs": 99})
        (tree / "BENCH_a.json").write_text(json.dumps(drifted))
        check_bench_dir(
            str(tree), str(tree / "baselines"), update=True,
        )
        committed = json.loads(
            (tree / "baselines" / "BENCH_a.json").read_text()
        )
        assert committed == drifted
        (report,) = check_bench_dir(str(tree), str(tree / "baselines"))
        assert report.ok

    def test_missing_baselines_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            check_bench_dir(str(tmp_path), str(tmp_path / "nope"))

    def test_unreadable_report_rejected(self, tree):
        (tree / "BENCH_a.json").write_text("not json")
        with pytest.raises(ConfigurationError):
            check_bench(
                str(tree / "BENCH_a.json"),
                str(tree / "baselines" / "BENCH_a.json"),
            )


# ----------------------------------------------------------------------
# Ledger-to-ledger comparison
# ----------------------------------------------------------------------
class TestCheckLedger:
    @staticmethod
    def journal(seed=1, duration_s=3600.0):
        ledger = ExperimentLedger()
        spec = RunSpec(
            config=ClusterConfig(n_base_servers=4, seed=seed),
            policy=PolicySpec("No-cap"),
            duration_s=duration_s,
        )
        SweepEngine(workers=1, ledger=ledger).run(spec)
        return ledger.entries

    def test_identical_runs_compare_clean(self):
        report = check_ledger(self.journal(), self.journal())
        assert report.ok
        assert report.checked > 0

    def test_digest_drift_flags_exactly(self):
        current = self.journal()
        current[0]["digest"] = "0" * 64
        report = check_ledger(current, self.journal())
        assert not report.ok
        assert any(d.path.endswith(".digest")
                   for d in report.regressions)

    def test_metric_drift_flags(self):
        current = self.journal()
        current[0]["metrics"]["total_energy_j"] *= 1.001
        report = check_ledger(current, self.journal())
        assert any(d.path.endswith("total_energy_j") and
                   d.mode == "exact" for d in report.regressions)

    def test_wall_time_tolerated_within_band(self):
        baseline = self.journal()
        current = self.journal()
        current[0]["wall_s"] = baseline[0]["wall_s"] * 1.04 + 0.1
        assert check_ledger(current, baseline).ok

    def test_latest_entry_wins_per_key(self):
        """A later cache-hit entry supersedes the executed one, so a
        doctored earlier entry is invisible."""
        baseline = self.journal()
        current = [dict(baseline[0]), dict(baseline[0])]
        current[0] = dict(current[0], digest="0" * 64)
        assert check_ledger(current, baseline).ok

    def test_missing_run_is_a_regression(self):
        baseline = self.journal() + self.journal(seed=2)
        report = check_ledger(self.journal(), baseline)
        assert not report.ok
        assert all(d.status == "missing" for d in report.regressions)

    def test_host_identity_never_compares(self):
        current = self.journal()
        current[0]["env"]["python"] = "9.9.9"
        current[0]["worker"] = 1
        assert check_ledger(current, self.journal()).ok


# ----------------------------------------------------------------------
# The CLI contract (exit codes 0 / 1 / 2)
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture()
    def tree(self, tmp_path):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        (baselines / "BENCH_a.json").write_text(json.dumps(BASELINE))
        (tmp_path / "BENCH_a.json").write_text(json.dumps(fresh()))
        return tmp_path

    @staticmethod
    def run(tree, *extra):
        return main([
            "--bench-dir", str(tree),
            "--baselines", str(tree / "baselines"),
            *extra,
        ])

    def test_clean_exit_zero(self, tree, capsys):
        assert self.run(tree) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_exit_one_names_first_divergence(
        self, tree, capsys
    ):
        (tree / "BENCH_a.json").write_text(json.dumps(
            fresh(**{"grid.unique_runs": 99})
        ))
        assert self.run(tree) == 1
        out = capsys.readouterr().out
        assert "unique_runs" in out
        assert "first divergent leaf" in out

    def test_wider_tolerance_forgives_wall_drift(self, tree):
        (tree / "BENCH_a.json").write_text(json.dumps(
            fresh(**{"serial.wall_s": 14.0})
        ))
        assert self.run(tree) == 1
        assert self.run(tree, "--rel-tol", "0.5") == 0

    def test_missing_baselines_exit_two(self, tmp_path, capsys):
        assert main([
            "--bench-dir", str(tmp_path),
            "--baselines", str(tmp_path / "nope"),
        ]) == 2
        assert "error:" in capsys.readouterr().out

    def test_update_exit_zero(self, tree, capsys):
        (tree / "BENCH_a.json").write_text(json.dumps(
            fresh(**{"grid.unique_runs": 99})
        ))
        assert self.run(tree, "--update") == 0
        assert "updated BENCH_a.json" in capsys.readouterr().out
        assert self.run(tree) == 0

    def test_name_filter_selects_baselines(self, tree):
        (tree / "baselines" / "BENCH_b.json").write_text(
            json.dumps(BASELINE)
        )
        # BENCH_b has no fresh report: checking everything fails ...
        assert self.run(tree) == 1
        # ... but selecting only BENCH_a passes.
        assert self.run(tree, "BENCH_a.json") == 0

    def test_ledger_flags_go_together(self, tree, tmp_path):
        ledger = tmp_path / "l.jsonl"
        ledger.write_text("")
        with pytest.raises(SystemExit):
            self.run(tree, "--ledger", str(ledger))

    def test_ledger_comparison_wired_through(self, tree, tmp_path):
        entries = TestCheckLedger.journal()
        current = tmp_path / "cur.jsonl"
        baseline = tmp_path / "base.jsonl"
        for path in (current, baseline):
            path.write_text("".join(
                json.dumps(e, sort_keys=True) + "\n" for e in entries
            ))
        assert self.run(
            tree, "--ledger", str(current),
            "--ledger-baseline", str(baseline),
        ) == 0
        doctored = [dict(entries[0], digest="0" * 64)]
        current.write_text("".join(
            json.dumps(e, sort_keys=True) + "\n" for e in doctored
        ))
        assert self.run(
            tree, "--ledger", str(current),
            "--ledger-baseline", str(baseline),
        ) == 1

    def test_default_policies_are_the_documented_set(self):
        assert resolve_tolerance("anything.wall_s",
                                 DEFAULT_POLICIES).mode == "relative"
        assert DEFAULT_POLICIES[0][0] == "cpu_count"
