"""Unit-conversion helpers."""

from repro import units


def test_power_conversions_roundtrip():
    assert units.kilowatts(6.5) == 6500.0
    assert units.watts_to_kilowatts(6500.0) == 6.5


def test_frequency_conversions():
    assert units.gigahertz(1.41) == 1410.0
    assert units.megahertz_to_ghz(1275.0) == 1.275


def test_memory_and_bandwidth():
    assert units.gigabytes(80) == 80e9
    assert units.gigabytes_per_second(2039) == 2.039e12


def test_compute_units():
    assert units.teraflops(312) == 3.12e14
    assert units.billions(176) == 176e9
    assert units.millions(355) == 355e6


def test_time_units_compose():
    assert units.minutes(1) == 60.0
    assert units.hours(1) == 60 * units.minutes(1)
    assert units.days(1) == 24 * units.hours(1)
    assert units.weeks(1) == 7 * units.days(1)
    assert units.milliseconds(100) == 0.1


def test_week_constant_matches_paper_trace_length():
    # The paper's trace spans six weeks (June 21 - August 2, 2023).
    assert units.weeks(6) == 6 * 7 * 86400
