"""Trace and result diffing: localize the first divergent event.

The acceptance check for the tool is real: two simulator runs that
differ only in their seed are diffed, and the reported divergence must
be the true first difference — every event before it equal, the event
at it unequal — with the differing field and both values surfaced.
"""

import pytest

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy
from repro.obs import MemoryRecorder, diff_traces
from repro.obs.diff import Divergence, diff_results, format_divergence
from tests.test_obs import make_requests, run_reference


def seeded_run(seed, record=True):
    config = ClusterConfig(n_base_servers=8, seed=seed, power_scale=1.05)
    recorder = MemoryRecorder() if record else None
    requests = make_requests(4.0, 120.0, seed=0)  # same workload
    if recorder is None:
        result = ClusterSimulator(config, NoCapPolicy()).run(
            requests, 120.0
        )
    else:
        result = ClusterSimulator(
            config, NoCapPolicy(), recorder=recorder
        ).run(requests, 120.0)
    return recorder, result


class TestDiffTraces:
    def test_identical_traces_diff_to_none(self):
        events = [{"kind": "serve", "t": 1.0, "latency_s": 2.0}]
        assert diff_traces(events, [dict(events[0])]) is None
        assert diff_traces([], []) is None

    def test_reports_first_differing_field_with_both_values(self):
        a = [
            {"kind": "control", "t": 2.0, "utilization": 0.8},
            {"kind": "serve", "t": 3.0, "latency_s": 1.0, "server": 4},
        ]
        b = [
            {"kind": "control", "t": 2.0, "utilization": 0.8},
            {"kind": "serve", "t": 3.0, "latency_s": 1.5, "server": 4},
        ]
        divergence = diff_traces(a, b)
        assert divergence == Divergence(
            index=1, field="latency_s", a=1.0, b=1.5, t=3.0, kind="serve",
        )

    def test_kind_mismatch_wins_over_payload(self):
        a = [{"kind": "serve", "t": 1.0, "latency_s": 9.9}]
        b = [{"kind": "drop", "t": 1.0, "reason": "saturated"}]
        divergence = diff_traces(a, b)
        assert divergence.field == "<kind>"
        assert (divergence.a, divergence.b) == ("serve", "drop")

    def test_missing_key_reported(self):
        a = [{"kind": "serve", "t": 1.0, "latency_s": 1.0}]
        b = [{"kind": "serve", "t": 1.0}]
        divergence = diff_traces(a, b)
        assert divergence.field == "<missing>"
        assert divergence.a == 1.0

    def test_prefix_trace_reports_end_of_trace(self):
        a = [{"kind": "serve", "t": 1.0}]
        b = [{"kind": "serve", "t": 1.0}, {"kind": "drop", "t": 2.0}]
        divergence = diff_traces(a, b)
        assert divergence.field == "<end-of-trace>"
        assert (divergence.a, divergence.b) == (1, 2)
        assert divergence.index == 1
        assert divergence.kind == "drop"
        assert divergence.t == 2.0

    def test_seed_differing_runs_localize_the_true_first_divergence(self):
        trace_a, _ = seeded_run(seed=0)
        trace_b, _ = seeded_run(seed=1)
        divergence = diff_traces(trace_a.events, trace_b.events)
        assert divergence is not None
        index = divergence.index
        # Correctness of "first": everything before it is identical,
        # the event at it differs in exactly the reported field.
        assert trace_a.events[:index] == trace_b.events[:index]
        ea, eb = trace_a.events[index], trace_b.events[index]
        assert ea != eb
        if divergence.field not in ("<kind>", "<missing>"):
            assert ea[divergence.field] == divergence.a
            assert eb[divergence.field] == divergence.b
            assert ea["kind"] == eb["kind"] == divergence.kind
        assert divergence.t == ea.get("t")

    def test_same_seed_runs_diff_to_none(self):
        trace_a, _ = seeded_run(seed=0)
        trace_b, _ = seeded_run(seed=0)
        assert diff_traces(trace_a.events, trace_b.events) is None


class TestDiffResults:
    def test_identical_results_diff_to_none(self):
        _, a = seeded_run(seed=0, record=False)
        _, b = seeded_run(seed=0, record=False)
        assert diff_results(a, b) is None

    def test_seed_differing_results_report_a_dotted_path(self):
        _, a = seeded_run(seed=0, record=False)
        _, b = seeded_run(seed=1, record=False)
        divergence = diff_results(a, b)
        assert divergence is not None
        assert divergence.index == -1
        assert divergence.field  # a dotted path into the codec dict
        assert divergence.a != divergence.b

    def test_observability_differences_are_visible(self):
        _, bare = seeded_run(seed=0, record=False)
        recorder, traced = seeded_run(seed=0)
        divergence = diff_results(bare, traced)
        assert divergence is not None
        assert divergence.field.startswith("observability")


class TestFormatDivergence:
    def test_identical(self):
        assert format_divergence(None) == ["streams are identical"]

    def test_event_divergence_lines(self):
        lines = format_divergence(
            Divergence(index=3, field="latency_s", a=1.0, b=2.0,
                       t=7.5, kind="serve"),
            label_a="run-a.jsonl", label_b="run-b.jsonl",
        )
        assert lines[0] == \
            "first divergence at event [3] t=7.500s kind=serve"
        assert lines[1:] == [
            "  field: latency_s",
            "  run-a.jsonl: 1.0",
            "  run-b.jsonl: 2.0",
        ]

    def test_end_of_trace_lines(self):
        lines = format_divergence(
            Divergence(index=5, field="<end-of-trace>", a=5, b=9,
                       t=12.0, kind="drop"),
        )
        assert lines[0] == "A ends early: A has 5 events, B has 9"
        assert lines[1] == "first unmatched event: [5] drop (t=12.000s)"

    def test_result_divergence_lines(self):
        lines = format_divergence(
            Divergence(index=-1, field="total_energy_j", a=1.0, b=2.0),
        )
        assert lines[0] == "results diverge"
        assert "  field: total_energy_j" in lines
