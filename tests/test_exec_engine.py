"""SweepEngine worker robustness: crashes, hangs, and quarantine.

A sweep worker can die (OOM killer, segfault in a native dependency) or
wedge (runaway allocation thrashing swap). The engine must survive
both without corrupting the batch: the offending spec is retried on a
fresh pool, then — retries exhausted — quarantined to serial in-parent
execution, and every result stays bit-identical to a healthy run.

The failure is injected through the ``REPRO_EXEC_FAIL_*`` environment
hook in :func:`repro.exec.engine._maybe_fail_for_test`, which only
fires inside pool workers for the spec whose seed matches — the
quarantine path and unrelated specs are untouched.
"""

import pytest

from repro.cluster.simulator import ClusterConfig
from repro.errors import ConfigurationError
from repro.exec import PolicySpec, RunSpec, SweepEngine, execute_spec
from repro.exec.engine import fork_available
from repro.obs import MemoryRecorder
from repro.units import hours

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires fork start method"
)

#: A seed no other test uses: the injected failure keys off it.
DOOMED_SEED = 424_242


def tiny_spec(seed):
    return RunSpec(
        config=ClusterConfig(n_base_servers=4, seed=seed),
        policy=PolicySpec("No-cap"),
        duration_s=hours(1),
    )


def retry_events(recorder):
    return [e for e in recorder.events
            if e.get("kind") == "engine_worker_retry"]


def assert_results_healthy(results, specs):
    """Every slot matches a clean serial execution, bit for bit."""
    for result, spec in zip(results, specs):
        clean = execute_spec(spec)
        assert (result.power_series.values ==
                clean.power_series.values).all()
        assert result.total_energy_j == clean.total_energy_j
        assert result.total_served == clean.total_served


@needs_fork
class TestWorkerFailures:
    def test_crashed_worker_is_retried_and_batch_completes(
        self, monkeypatch, tmp_path
    ):
        """A worker killed mid-run costs one retry, nothing else."""
        sentinel = tmp_path / "failed-once"
        monkeypatch.setenv("REPRO_EXEC_FAIL_SEED", str(DOOMED_SEED))
        monkeypatch.setenv("REPRO_EXEC_FAIL_ONCE", str(sentinel))
        recorder = MemoryRecorder()
        engine = SweepEngine(workers=2, recorder=recorder)
        specs = [tiny_spec(DOOMED_SEED), tiny_spec(7), tiny_spec(8)]
        results = engine.run_specs(specs)
        assert sentinel.exists()  # the injected crash actually fired
        assert engine.last_stats.retried == 1
        assert engine.last_stats.quarantined == 0
        assert engine.last_stats.simulated == 3
        events = retry_events(recorder)
        assert len(events) == 1
        assert events[0]["reason"] == "crash"
        assert events[0]["action"] == "retry"
        assert events[0]["attempts"] == 1
        assert events[0]["digest"] == specs[0].digest()
        assert_results_healthy(results, specs)

    def test_poisoned_spec_is_quarantined_to_serial(self, monkeypatch):
        """Retries exhausted: the spec falls back to the parent, where
        the run still succeeds (the failure only fires in workers)."""
        monkeypatch.setenv("REPRO_EXEC_FAIL_SEED", str(DOOMED_SEED))
        recorder = MemoryRecorder()
        engine = SweepEngine(workers=2, recorder=recorder, retries=1)
        specs = [tiny_spec(DOOMED_SEED), tiny_spec(7)]
        results = engine.run_specs(specs)
        assert engine.last_stats.retried == 1
        assert engine.last_stats.quarantined == 1
        actions = [e["action"] for e in retry_events(recorder)]
        assert actions == ["retry", "quarantine"]
        assert_results_healthy(results, specs)

    def test_hung_worker_times_out_and_is_quarantined(self, monkeypatch):
        """A wedged worker trips ``run_timeout_s`` instead of stalling
        the sweep forever."""
        monkeypatch.setenv("REPRO_EXEC_FAIL_SEED", str(DOOMED_SEED))
        monkeypatch.setenv("REPRO_EXEC_FAIL_MODE", "hang")
        recorder = MemoryRecorder()
        engine = SweepEngine(
            workers=2, recorder=recorder, run_timeout_s=5.0, retries=0
        )
        specs = [tiny_spec(DOOMED_SEED), tiny_spec(7)]
        results = engine.run_specs(specs)
        assert engine.last_stats.quarantined == 1
        assert engine.last_stats.retried == 0
        events = retry_events(recorder)
        assert len(events) == 1
        assert events[0]["reason"] == "timeout"
        assert events[0]["action"] == "quarantine"
        assert_results_healthy(results, specs)

    def test_survivors_behind_the_offender_are_resubmitted(
        self, monkeypatch, tmp_path
    ):
        """Specs queued behind a dying worker are re-run on the fresh
        pool and still land in their original slots."""
        sentinel = tmp_path / "failed-once"
        monkeypatch.setenv("REPRO_EXEC_FAIL_SEED", str(DOOMED_SEED))
        monkeypatch.setenv("REPRO_EXEC_FAIL_ONCE", str(sentinel))
        engine = SweepEngine(workers=2)
        specs = [tiny_spec(seed) for seed in
                 (5, DOOMED_SEED, 7, 8, 9)]
        results = engine.run_specs(specs)
        assert engine.last_stats.retried == 1
        assert engine.last_stats.simulated == 5
        assert_results_healthy(results, specs)


class TestConfigValidation:
    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(workers=1, run_timeout_s=0.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(workers=1, retries=-1)

    def test_hook_is_inert_without_env(self):
        from repro.exec.engine import _maybe_fail_for_test

        _maybe_fail_for_test(tiny_spec(DOOMED_SEED))  # must not raise
