"""Training power: iteration shapes, knob trade-offs, cluster patterns."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.specs import A100_40GB
from repro.models.registry import get_model
from repro.training.capping import frequency_lock_tradeoff, power_cap_tradeoff
from repro.training.cluster import TrainingClusterModel
from repro.training.iteration import TrainingIterationModel


@pytest.fixture()
def flan():
    return TrainingIterationModel(get_model("Flan-T5-XXL"), noise_std=0.0)


@pytest.fixture()
def roberta():
    return TrainingIterationModel(get_model("RoBERTa-355M"), noise_std=0.0)


class TestIterationModel:
    def test_inference_only_model_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingIterationModel(get_model("BLOOM-176B"))

    def test_segments_cover_iteration(self, flan):
        total = sum(seg.duration_fraction for seg in flan.segments())
        assert total == pytest.approx(1.0)

    def test_figure4_peak_levels(self, flan, roberta):
        """GPT-NeoX/Flan-T5 exceed TDP; RoBERTa stays below (Insight 1)."""
        tdp = A100_40GB.tdp_w
        assert flan.peak_power_w() > tdp
        assert roberta.peak_power_w() < tdp

    def test_figure4_trough_levels(self, flan, roberta):
        """Flan-T5 drops to idle; RoBERTa stays at ~75% of TDP."""
        assert flan.trough_power_w() == pytest.approx(A100_40GB.idle_w)
        assert roberta.trough_power_w() / A100_40GB.tdp_w == pytest.approx(
            0.75, abs=0.06
        )

    def test_power_series_spans_iterations(self, flan):
        series = flan.power_series(n_iterations=3)
        expected = 3 * flan.iteration_seconds(1.0)
        assert series.duration == pytest.approx(expected, abs=0.2)

    def test_power_series_periodicity(self, roberta):
        """Big power swings repeat every iteration (Insight 2)."""
        series = roberta.power_series(n_iterations=4)
        swing = series.peak() - series.trough()
        assert swing > 0.15 * A100_40GB.tdp_w

    def test_frequency_lock_stretches_iteration(self, flan):
        assert flan.iteration_seconds(0.8) > flan.iteration_seconds(1.0)

    def test_clock_sensitivity_uses_compute_fraction(self, flan):
        c = flan.model.training.compute_fraction
        expected = flan.model.training.iteration_seconds * ((1 - c) + c / 0.8)
        assert flan.iteration_seconds(0.8) == pytest.approx(expected)

    def test_both_knobs_at_once_rejected(self, flan):
        with pytest.raises(ConfigurationError):
            flan.power_series(frequency_lock_mhz=1100.0, power_cap_w=325.0)

    def test_invalid_clock_ratio_rejected(self, flan):
        with pytest.raises(ConfigurationError):
            flan.iteration_seconds(0.0)

    def test_activity_pattern_repeats(self, flan):
        period = flan.iteration_seconds(1.0)
        assert flan.activity_at(0.1) == flan.activity_at(0.1 + period)


class TestKnobTradeoffs:
    def test_figure5a_shape(self, flan):
        """~22% peak-power reduction for ~10% throughput (Section 4.1)."""
        points = frequency_lock_tradeoff(flan, [1100.0])
        assert points[0].peak_power_reduction == pytest.approx(0.22, abs=0.04)
        assert points[0].performance_reduction == pytest.approx(0.10, abs=0.04)

    def test_frequency_curves_monotone(self, flan):
        points = frequency_lock_tradeoff(flan, [1400, 1300, 1200, 1100])
        reductions = [p.peak_power_reduction for p in points]
        perfs = [p.performance_reduction for p in points]
        assert reductions == sorted(reductions)
        assert perfs == sorted(perfs)

    def test_power_capping_leaves_troughs(self, flan):
        """Insight 3: capping clips peaks without touching troughs."""
        points = power_cap_tradeoff(flan, [400, 350, 300])
        assert all(p.trough_power_reduction == pytest.approx(0.0)
                   for p in points)
        assert all(p.peak_power_reduction > 0 for p in points)

    def test_frequency_locking_lowers_troughs_when_nonidle(self, roberta):
        """RoBERTa's trough is active work, so locking lowers it too."""
        points = frequency_lock_tradeoff(roberta, [1100.0])
        assert points[0].trough_power_reduction > 0.05

    def test_capping_is_reactive_hence_variable(self, flan):
        a = power_cap_tradeoff(flan, [340.0], seed=1)[0]
        b = power_cap_tradeoff(flan, [340.0], seed=2)[0]
        assert a.performance_reduction != b.performance_reduction

    def test_empty_sweeps_rejected(self, flan):
        with pytest.raises(ConfigurationError):
            frequency_lock_tradeoff(flan, [])
        with pytest.raises(ConfigurationError):
            power_cap_tradeoff(flan, [])


class TestTrainingCluster:
    @pytest.fixture(scope="class")
    def stats(self):
        return TrainingClusterModel(seed=0).stats()

    def test_table4_peak_utilization(self, stats):
        assert stats.peak_utilization == pytest.approx(0.97, abs=0.02)

    def test_table4_swing_2s(self, stats):
        assert stats.max_swing_2s == pytest.approx(0.375, abs=0.06)

    def test_headroom_about_3pct(self, stats):
        assert stats.headroom == pytest.approx(0.03, abs=0.02)

    def test_training_has_high_mean_utilization(self, stats):
        """Table 4: training has high peak AND average draw."""
        assert stats.mean_utilization > 0.8

    def test_frequency_lock_reduces_cluster_power(self):
        cluster = TrainingClusterModel(n_servers=8, seed=0)
        free = cluster.power_series(duration_s=20.0)
        locked = cluster.power_series(duration_s=20.0, clock_ratio=0.8)
        assert locked.peak() < free.peak()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingClusterModel(n_servers=0)
        with pytest.raises(ConfigurationError):
            TrainingClusterModel(model=get_model("OPT-30B"))
        with pytest.raises(ConfigurationError):
            TrainingClusterModel().power_series(duration_s=0.0)
