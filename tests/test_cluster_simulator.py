"""The discrete-event cluster simulator."""

import pytest

from repro.cluster.policy_base import GroupCaps, PowerPolicy
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy
from repro.errors import ConfigurationError
from repro.workloads.requests import RequestSampler
from repro.workloads.spec import Priority


def make_requests(rate_per_s, duration_s, seed=0):
    """A simple homogeneous-Poisson request trace."""
    import numpy as np
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


def small_config(**overrides):
    defaults = dict(n_base_servers=8, telemetry_interval_s=2.0, seed=0)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestClusterConfig:
    def test_added_fraction_math(self):
        config = ClusterConfig(n_base_servers=40, added_fraction=0.30)
        assert config.n_servers == 52

    def test_budget_fixed_at_base(self):
        base = ClusterConfig(n_base_servers=40, added_fraction=0.0)
        over = ClusterConfig(n_base_servers=40, added_fraction=0.30)
        assert over.provisioned_power_w == base.provisioned_power_w

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_base_servers=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(added_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            ClusterConfig(telemetry_interval_s=0.0)


class TestBasicRuns:
    def test_all_requests_served_under_light_load(self):
        simulator = ClusterSimulator(small_config(), NoCapPolicy())
        requests = make_requests(rate_per_s=0.2, duration_s=600.0)
        result = simulator.run(requests, 600.0)
        total_served = sum(m.served for m in result.per_priority.values())
        total_dropped = sum(m.dropped for m in result.per_priority.values())
        assert total_served == len(requests)
        assert total_dropped == 0

    def test_latencies_at_least_service_time(self):
        simulator = ClusterSimulator(small_config(), NoCapPolicy())
        requests = make_requests(rate_per_s=0.1, duration_s=600.0)
        result = simulator.run(requests, 600.0)
        for metrics in result.per_priority.values():
            assert all(latency > 1.0 for latency in metrics.latencies)

    def test_power_series_sampled_at_telemetry_interval(self):
        simulator = ClusterSimulator(small_config(), NoCapPolicy())
        result = simulator.run(make_requests(0.1, 100.0), 100.0)
        assert result.power_series.interval == 2.0
        assert len(result.power_series) == 50

    def test_power_never_below_idle_floor(self):
        simulator = ClusterSimulator(small_config(), NoCapPolicy())
        result = simulator.run(make_requests(0.1, 200.0), 200.0)
        idle_floor = 8 * simulator.servers[0].power_model.server_power(0.0, 1.0)
        assert result.power_series.trough() >= idle_floor - 1e-6

    def test_deterministic_for_seed(self):
        a = ClusterSimulator(small_config(), NoCapPolicy()).run(
            make_requests(0.2, 300.0, seed=1), 300.0
        )
        b = ClusterSimulator(small_config(), NoCapPolicy()).run(
            make_requests(0.2, 300.0, seed=1), 300.0
        )
        assert a.power_series.values.tolist() == b.power_series.values.tolist()
        assert a.latency_summary(Priority.HIGH).p50 == \
            b.latency_summary(Priority.HIGH).p50

    def test_invalid_duration_rejected(self):
        simulator = ClusterSimulator(small_config(), NoCapPolicy())
        with pytest.raises(ConfigurationError):
            simulator.run([], 0.0)

    def test_saturated_pool_drops(self):
        simulator = ClusterSimulator(small_config(), NoCapPolicy())
        requests = make_requests(rate_per_s=5.0, duration_s=300.0)
        result = simulator.run(requests, 300.0)
        dropped = sum(m.dropped for m in result.per_priority.values())
        assert dropped > 0


class _AlwaysCapLow(PowerPolicy):
    """Test policy: caps the low-priority pool from the first tick."""

    name = "always-cap-low"

    def desired_caps(self, utilization, now=0.0):
        return GroupCaps(low_clock_mhz=1110.0)


class _BrakeHappy(PowerPolicy):
    """Test policy: demands the brake at any utilization."""

    name = "brake-happy"
    brake_threshold = 0.0

    def desired_caps(self, utilization, now=0.0):
        return GroupCaps.uncapped()

    def wants_brake(self, utilization):
        return True

    def brake_release_ok(self, utilization):
        return False


class TestPolicyInteraction:
    def test_caps_land_after_oob_latency(self):
        """The cap is issued at t=0 but power only falls after ~40 s."""
        simulator = ClusterSimulator(small_config(), _AlwaysCapLow())
        requests = make_requests(rate_per_s=1.0, duration_s=300.0)
        result = simulator.run(requests, 300.0)
        assert result.capping_actions == 1
        # Compare per-tick power before and after the cap lands: the LP
        # half of the row slows down, so early power >= later power at
        # equal load is hard to assert directly; instead check latency
        # impact exists for LP but not HP.
        uncapped = ClusterSimulator(small_config(), NoCapPolicy()).run(
            requests, 300.0
        )
        lp_ratio = (result.latency_summary(Priority.LOW).p50
                    / uncapped.latency_summary(Priority.LOW).p50)
        hp_ratio = (result.latency_summary(Priority.HIGH).p50
                    / uncapped.latency_summary(Priority.HIGH).p50)
        assert lp_ratio > 1.01
        assert hp_ratio == pytest.approx(1.0, abs=0.01)

    def test_brake_engages_and_counts_once(self):
        simulator = ClusterSimulator(small_config(), _BrakeHappy())
        requests = make_requests(rate_per_s=0.5, duration_s=120.0)
        result = simulator.run(requests, 120.0)
        assert result.power_brake_events == 1  # never released, one event

    def test_brake_slows_everything(self):
        braked = ClusterSimulator(small_config(), _BrakeHappy()).run(
            make_requests(0.3, 200.0), 200.0
        )
        free = ClusterSimulator(small_config(), NoCapPolicy()).run(
            make_requests(0.3, 200.0), 200.0
        )
        # At 288 MHz the token phase stretches ~1.7x (its clock
        # sensitivity is 0.18), so end-to-end p50 rises well above 1.5x.
        assert braked.latency_summary(Priority.HIGH).p50 > \
            1.5 * free.latency_summary(Priority.HIGH).p50
