"""The fault-injection layer: plans, injector, hardened control loop.

Covers the tentpole guarantees of the robustness work:

* an all-zeros plan leaves the rewired simulator bit-identical to the
  fault-free path;
* telemetry dropout triggers the safe-cap fallback and, past the UPS
  deadline, the brake;
* silent actuation failures are detected by the verify layer and
  recovered by capped-backoff re-issue;
* server churn drops in-flight work, removes power, and recovers;
* the brake state machine cancels a pending release on a spike
  (the re-engage race fix).
"""

import numpy as np
import pytest

from repro.cluster.policy_base import GroupCaps, PowerPolicy
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy
from repro.core.policy import DualThresholdPolicy
from repro.errors import ConfigurationError
from repro.faults import (
    ActuationFaultSpec,
    ChurnSpec,
    FaultInjector,
    FaultPlan,
    OverBudgetTracker,
    ReliabilityConfig,
    ServerChurnEvent,
    TelemetryFate,
    TelemetryFaultSpec,
)
from repro.workloads.requests import RequestSampler
from repro.workloads.spec import Priority


def make_requests(rate_per_s, duration_s, seed=0):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


def small_config(**overrides):
    defaults = dict(n_base_servers=8, telemetry_interval_s=2.0, seed=0)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


# ----------------------------------------------------------------------
# Plan validation and presets
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_none_is_trivial(self):
        assert FaultPlan.none().is_trivial

    def test_adversarial_is_not_trivial(self):
        plan = FaultPlan.adversarial()
        assert not plan.is_trivial
        assert plan.actuation.silent_failure_rate == pytest.approx(0.10)
        assert plan.churn.events

    def test_invalid_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetryFaultSpec(dropout_windows=((10.0, 5.0),))
        with pytest.raises(ConfigurationError):
            TelemetryFaultSpec(dropout_windows=((-1.0, 5.0),))

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetryFaultSpec(noise_std=-0.1)
        with pytest.raises(ConfigurationError):
            ActuationFaultSpec(silent_failure_rate=1.0)
        with pytest.raises(ConfigurationError):
            ActuationFaultSpec(delay_prob=1.5)
        with pytest.raises(ConfigurationError):
            ChurnSpec(failures_per_hour=-1.0)

    def test_invalid_churn_event_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerChurnEvent(server_index=-1, fail_at_s=0.0)
        with pytest.raises(ConfigurationError):
            ServerChurnEvent(server_index=0, fail_at_s=10.0, recover_at_s=5.0)


class TestReliabilityConfig:
    def test_backoff_is_capped_exponential(self):
        reliability = ReliabilityConfig(retry_base_s=2.0, retry_cap_s=32.0)
        assert [reliability.backoff_s(k) for k in range(1, 7)] == \
            [2.0, 4.0, 8.0, 16.0, 32.0, 32.0]

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(retry_base_s=0.0)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(retry_cap_s=1.0, retry_base_s=2.0)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(fallback_after_ticks=0)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig().backoff_s(0)


class TestClusterConfigValidation:
    @pytest.mark.parametrize("overrides", [
        dict(low_priority_fraction=-0.1),
        dict(low_priority_fraction=1.1),
        dict(power_scale=0.0),
        dict(power_scale=-1.0),
        dict(brake_latency_s=-1.0),
        dict(brake_hold_s=-1.0),
        dict(oob_latency_s=-1.0),
        dict(provisioned_per_server_w=0.0),
    ])
    def test_invalid_fields_named(self, overrides):
        with pytest.raises(ConfigurationError) as excinfo:
            ClusterConfig(**overrides)
        (field_name,) = overrides
        assert field_name in str(excinfo.value)


# ----------------------------------------------------------------------
# Injector schedules
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_window_fate_lookup(self):
        plan = FaultPlan(telemetry=TelemetryFaultSpec(
            dropout_windows=((10.0, 20.0),),
            freeze_windows=((30.0, 40.0),),
        ))
        injector = FaultInjector(plan, duration_s=100.0, n_servers=4)
        assert injector.telemetry_fate(5.0) is TelemetryFate.OK
        assert injector.telemetry_fate(10.0) is TelemetryFate.DROPPED
        assert injector.telemetry_fate(19.9) is TelemetryFate.DROPPED
        assert injector.telemetry_fate(20.0) is TelemetryFate.OK
        assert injector.telemetry_fate(35.0) is TelemetryFate.FROZEN
        assert injector.dropped_ticks == 2
        assert injector.frozen_ticks == 1

    def test_overlapping_windows_merge(self):
        plan = FaultPlan(telemetry=TelemetryFaultSpec(
            dropout_windows=((10.0, 20.0), (15.0, 30.0), (50.0, 60.0)),
        ))
        injector = FaultInjector(plan, duration_s=100.0, n_servers=4)
        assert injector.dropout_windows == [(10.0, 30.0), (50.0, 60.0)]
        assert injector.dropout_window_count == 2

    def test_stochastic_schedule_deterministic(self):
        plan = FaultPlan(
            telemetry=TelemetryFaultSpec(dropouts_per_hour=10.0),
            churn=ChurnSpec(failures_per_hour=5.0),
            seed=7,
        )
        a = FaultInjector(plan, duration_s=7200.0, n_servers=8)
        b = FaultInjector(plan, duration_s=7200.0, n_servers=8)
        assert a.dropout_windows == b.dropout_windows
        assert a.churn_events == b.churn_events
        assert a.dropout_windows  # 20 expected, vanishingly unlikely zero

    def test_churn_target_bounds_checked(self):
        plan = FaultPlan(churn=ChurnSpec(
            events=(ServerChurnEvent(server_index=9, fail_at_s=1.0),)
        ))
        with pytest.raises(ConfigurationError):
            FaultInjector(plan, duration_s=100.0, n_servers=4)


class TestOverBudgetTracker:
    def test_runs_and_totals(self):
        tracker = OverBudgetTracker(budget_w=100.0)
        tracker.account(90.0, 10.0)
        tracker.account(110.0, 5.0)
        tracker.account(120.0, 3.0)
        tracker.account(90.0, 2.0)
        tracker.account(101.0, 4.0)
        assert tracker.time_at_risk_s == pytest.approx(12.0)
        assert tracker.longest_overbudget_s == pytest.approx(8.0)


# ----------------------------------------------------------------------
# Zero-fault equivalence: the integration must not change the POLCA
# reproduction.
# ----------------------------------------------------------------------
class TestTrivialPlanEquivalence:
    def test_all_zeros_plan_bit_identical(self):
        requests = make_requests(1.0, 600.0, seed=3)
        bare = ClusterSimulator(
            small_config(), DualThresholdPolicy()
        ).run(requests, 600.0)
        planned = ClusterSimulator(
            small_config(fault_plan=FaultPlan.none()), DualThresholdPolicy()
        ).run(requests, 600.0)
        assert bare.power_series.values.tolist() == \
            planned.power_series.values.tolist()
        assert bare.total_energy_j == planned.total_energy_j
        assert bare.capping_actions == planned.capping_actions
        assert bare.power_brake_events == planned.power_brake_events
        for priority in Priority:
            assert bare.per_priority[priority].latencies == \
                planned.per_priority[priority].latencies
            assert bare.per_priority[priority].served == \
                planned.per_priority[priority].served

    def test_report_attached_and_clean_without_faults(self):
        result = ClusterSimulator(small_config(), NoCapPolicy()).run(
            make_requests(0.5, 200.0), 200.0
        )
        report = result.robustness
        assert report is not None
        assert report.faults_injected == 0
        assert report.commands_unrecovered == 0
        assert report.fallback_entries == 0
        assert report.all_faults_accounted
        # Nothing ever fails silently on a perfect actuation path (and
        # verification is elided entirely for trivial plans).
        assert report.failures_detected == 0
        assert report.reissues == 0


# ----------------------------------------------------------------------
# Telemetry dropout -> graceful degradation
# ----------------------------------------------------------------------
class TestGracefulDegradation:
    def test_dropout_enters_fallback_then_brakes(self):
        plan = FaultPlan(telemetry=TelemetryFaultSpec(
            dropout_windows=((10.0, 200.0),)
        ))
        reliability = ReliabilityConfig(
            fallback_after_ticks=3, brake_after_stale_s=10.0
        )
        config = small_config(fault_plan=plan, reliability=reliability)
        simulator = ClusterSimulator(config, NoCapPolicy())
        result = simulator.run(make_requests(0.5, 300.0), 300.0)
        report = result.robustness
        assert report.fallback_entries == 1
        assert report.fallback_brakes == 1
        assert result.power_brake_events == 1
        assert report.max_missed_ticks >= 90
        # Recovery: telemetry returns at t=200, the brake is released
        # through the normal hysteresis path and the caps lift.
        assert not simulator.servers[0].braked
        assert all(s.clock_ratio == 1.0 for s in simulator.servers)

    def test_short_dropout_tolerated_without_fallback(self):
        plan = FaultPlan(telemetry=TelemetryFaultSpec(
            dropout_windows=((10.0, 16.0),)
        ))
        config = small_config(
            fault_plan=plan,
            reliability=ReliabilityConfig(fallback_after_ticks=5),
        )
        result = ClusterSimulator(config, NoCapPolicy()).run(
            make_requests(0.5, 100.0), 100.0
        )
        assert result.robustness.telemetry_dropped_ticks > 0
        assert result.robustness.fallback_entries == 0
        assert result.power_brake_events == 0

    def test_frozen_sensor_detected_when_enabled(self):
        plan = FaultPlan(telemetry=TelemetryFaultSpec(
            freeze_windows=((10.0, 200.0),)
        ))
        reliability = ReliabilityConfig(
            detect_frozen=True, frozen_after_ticks=3, fallback_after_ticks=3
        )
        config = small_config(fault_plan=plan, reliability=reliability)
        result = ClusterSimulator(config, NoCapPolicy()).run(
            make_requests(0.5, 300.0), 300.0
        )
        assert result.robustness.telemetry_frozen_ticks > 0
        assert result.robustness.fallback_entries >= 1


# ----------------------------------------------------------------------
# Silent actuation failure -> verify + re-issue
# ----------------------------------------------------------------------
class _AlwaysCapLow(PowerPolicy):
    """Caps the low-priority pool from the first tick."""

    name = "always-cap-low"

    def desired_caps(self, utilization, now=0.0):
        return GroupCaps(low_clock_mhz=1110.0)


class TestReliableCommands:
    def test_silent_failures_detected_and_recovered(self):
        plan = FaultPlan(
            actuation=ActuationFaultSpec(silent_failure_rate=0.7), seed=2
        )
        config = small_config(fault_plan=plan)
        simulator = ClusterSimulator(config, _AlwaysCapLow())
        result = simulator.run(make_requests(0.5, 400.0), 400.0)
        report = result.robustness
        assert report.silent_actuation_failures >= 1
        assert report.failures_detected >= 1
        assert report.reissues >= 1
        assert report.commands_recovered >= 1
        assert report.commands_unrecovered == 0
        # The cap eventually landed despite the lossy interface.
        expected = 1110.0 / 1410.0
        for index in simulator._index_by_priority[Priority.LOW]:
            assert simulator.servers[index].clock_ratio == \
                pytest.approx(expected)

    def test_delayed_actuation_counted(self):
        plan = FaultPlan(
            actuation=ActuationFaultSpec(delay_prob=1.0, extra_delay_s=5.0),
            seed=1,
        )
        config = small_config(fault_plan=plan)
        result = ClusterSimulator(config, _AlwaysCapLow()).run(
            make_requests(0.5, 300.0), 300.0
        )
        assert result.robustness.delayed_actuations >= 1
        assert result.robustness.commands_unrecovered == 0


# ----------------------------------------------------------------------
# Server churn
# ----------------------------------------------------------------------
class TestServerChurn:
    def test_crash_drops_requests_and_power_recovers(self):
        plan = FaultPlan(churn=ChurnSpec(events=(
            ServerChurnEvent(server_index=0, fail_at_s=60.0,
                             recover_at_s=160.0),
        )))
        config = small_config(fault_plan=plan)
        simulator = ClusterSimulator(config, NoCapPolicy())
        requests = make_requests(2.0, 300.0, seed=5)
        result = simulator.run(requests, 300.0)
        report = result.robustness
        assert report.server_failures == 1
        assert report.server_recoveries == 1
        assert report.requests_lost_to_churn >= 1
        assert not simulator.servers[0].failed
        # The same trace without churn serves strictly more requests.
        clean = ClusterSimulator(small_config(), NoCapPolicy()).run(
            requests, 300.0
        )
        assert result.total_served < clean.total_served

    def test_permanent_loss(self):
        plan = FaultPlan(churn=ChurnSpec(events=(
            ServerChurnEvent(server_index=1, fail_at_s=50.0),
        )))
        config = small_config(fault_plan=plan)
        simulator = ClusterSimulator(config, NoCapPolicy())
        result = simulator.run(make_requests(0.5, 200.0), 200.0)
        assert result.robustness.server_failures == 1
        assert result.robustness.server_recoveries == 0
        assert simulator.servers[1].failed
        # A dead server contributes zero power.
        assert simulator.servers[1].current_power() == 0.0


# ----------------------------------------------------------------------
# Brake re-engage race (version-stamped brake events)
# ----------------------------------------------------------------------
class _SpikeDuringRelease(PowerPolicy):
    """Requests the brake always; allows release exactly once.

    The single release enters ``pending_off``; the still-spiking
    utilization on the next tick must cancel the pending release instead
    of being ignored (the pre-fix race let the release land regardless).
    """

    name = "spike-during-release"

    def __init__(self):
        self._release_calls = 0

    def reset(self):
        self._release_calls = 0

    def desired_caps(self, utilization, now=0.0):
        return GroupCaps.uncapped()

    def wants_brake(self, utilization):
        return True

    def brake_release_ok(self, utilization):
        self._release_calls += 1
        return self._release_calls == 1


class _OneShotBrake(PowerPolicy):
    """Brakes once, releases as soon as the hold allows, never re-arms."""

    name = "one-shot-brake"

    def __init__(self):
        self._armed = True

    def reset(self):
        self._armed = True

    def desired_caps(self, utilization, now=0.0):
        return GroupCaps.uncapped()

    def wants_brake(self, utilization):
        if self._armed:
            self._armed = False
            return True
        return False

    def brake_release_ok(self, utilization):
        return True


class TestBrakeReEngageRace:
    def test_spike_cancels_pending_release(self):
        config = small_config(brake_hold_s=2.0, brake_latency_s=5.0)
        simulator = ClusterSimulator(config, _SpikeDuringRelease())
        result = simulator.run([], 40.0)
        # The release was cancelled: the brake never disengaged, so there
        # is exactly one engagement and the row ends braked.
        assert result.power_brake_events == 1
        assert all(s.braked for s in simulator.servers)

    def test_normal_release_still_lands(self):
        config = small_config(brake_hold_s=2.0, brake_latency_s=5.0)
        simulator = ClusterSimulator(config, _OneShotBrake())
        result = simulator.run([], 40.0)
        assert result.power_brake_events == 1
        assert not any(s.braked for s in simulator.servers)


# ----------------------------------------------------------------------
# Combined adversarial scenario (the small-scale acceptance check; the
# full-size run lives in benchmarks/test_ext_fault_tolerance.py)
# ----------------------------------------------------------------------
class TestAdversarialScenario:
    def test_polca_survives_combined_faults(self):
        plan = FaultPlan(
            telemetry=TelemetryFaultSpec(
                noise_std=0.02,
                dropout_windows=((100.0, 140.0), (400.0, 440.0)),
            ),
            actuation=ActuationFaultSpec(silent_failure_rate=0.10),
            churn=ChurnSpec(events=(
                ServerChurnEvent(server_index=2, fail_at_s=250.0,
                                 recover_at_s=350.0),
            )),
            seed=4,
        )
        config = small_config(fault_plan=plan)
        simulator = ClusterSimulator(config, DualThresholdPolicy())
        result = simulator.run(make_requests(1.5, 600.0, seed=6), 600.0)
        report = result.robustness
        assert report.faults_injected > 0
        assert report.all_faults_accounted
        assert report.longest_overbudget_s <= 40.0
        # The report ledgers every channel it injected on.
        assert report.telemetry_dropped_ticks >= 40
        assert report.server_failures == 1
