"""Simulation result accounting."""

import numpy as np
import pytest

from repro.analysis.timeseries import TimeSeries
from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.errors import ConfigurationError
from repro.workloads.spec import Priority


def make_result(low_latencies, high_latencies, power, provisioned=1000.0,
                brakes=0):
    per_priority = {
        Priority.LOW: PriorityMetrics(latencies=list(low_latencies),
                                      served=len(low_latencies)),
        Priority.HIGH: PriorityMetrics(latencies=list(high_latencies),
                                       served=len(high_latencies)),
    }
    return SimulationResult(
        per_priority=per_priority,
        power_series=TimeSeries(start=0, interval=2.0,
                                values=np.asarray(power, dtype=float)),
        provisioned_power_w=provisioned,
        power_brake_events=brakes,
        capping_actions=0,
        duration_s=100.0,
    )


class TestPriorityMetrics:
    def test_served_fraction(self):
        metrics = PriorityMetrics(served=90, dropped=10)
        assert metrics.offered == 100
        assert metrics.served_fraction == pytest.approx(0.9)

    def test_served_fraction_with_no_traffic_is_one(self):
        assert PriorityMetrics().served_fraction == 1.0

    def test_summary_requires_completions(self):
        with pytest.raises(ConfigurationError):
            PriorityMetrics().summary()


class TestSimulationResult:
    def test_normalized_latencies(self):
        baseline = make_result([10.0] * 100, [20.0] * 100, [500.0] * 10)
        mine = make_result([12.0] * 100, [20.0] * 100, [600.0] * 10)
        ratios = mine.normalized_latencies(Priority.LOW, baseline)
        assert ratios["p50"] == pytest.approx(1.2)
        assert mine.normalized_latencies(Priority.HIGH, baseline)["p50"] == \
            pytest.approx(1.0)

    def test_normalized_throughput(self):
        baseline = make_result([1.0] * 10, [1.0] * 10, [1.0])
        mine = make_result([1.0] * 10, [1.0] * 10, [1.0])
        mine.per_priority[Priority.LOW].dropped = 10  # 50% served
        assert mine.normalized_throughput(Priority.LOW, baseline) == \
            pytest.approx(0.5)

    def test_utilizations(self):
        result = make_result([1.0], [1.0], [500.0, 800.0], provisioned=1000.0)
        assert result.peak_utilization == pytest.approx(0.8)
        assert result.mean_utilization == pytest.approx(0.65)

    def test_max_swing_fraction(self):
        result = make_result([1.0], [1.0], [500.0, 700.0, 600.0],
                             provisioned=1000.0)
        assert result.max_swing_fraction(2.0) == pytest.approx(0.2)

    def test_brake_count_surfaces(self):
        result = make_result([1.0], [1.0], [1.0], brakes=3)
        assert result.power_brake_events == 3
