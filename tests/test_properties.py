"""Cross-module property-based tests on the library's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.policy_base import GroupCaps
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy
from repro.core.policy import DualThresholdPolicy
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB
from repro.models.inference import InferenceRequest, request_timeline
from repro.models.registry import MODEL_ZOO, get_model
from repro.workloads.requests import RequestSampler


# ---------------------------------------------------------------------------
# Policy invariants
# ---------------------------------------------------------------------------
class TestPolicyProperties:
    @settings(max_examples=50)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.2), min_size=1,
                    max_size=100))
    def test_level_always_in_range(self, utilizations):
        policy = DualThresholdPolicy()
        for index, utilization in enumerate(utilizations):
            policy.desired_caps(utilization, now=2.0 * index)
            assert 0 <= policy.level <= 3

    @settings(max_examples=50)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.2), min_size=1,
                    max_size=100))
    def test_caps_consistent_with_level(self, utilizations):
        policy = DualThresholdPolicy()
        for index, utilization in enumerate(utilizations):
            caps = policy.desired_caps(utilization, now=2.0 * index)
            if policy.level == 0:
                assert caps == GroupCaps.uncapped()
            if policy.level >= 2:
                assert caps.low_clock_mhz == 1110.0
            if policy.level == 3:
                assert caps.high_clock_mhz == 1305.0
            else:
                assert caps.high_clock_mhz is None

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.2), min_size=1,
                    max_size=60))
    def test_deterministic_replay(self, utilizations):
        a, b = DualThresholdPolicy(), DualThresholdPolicy()
        for index, utilization in enumerate(utilizations):
            assert a.desired_caps(utilization, 2.0 * index) == \
                b.desired_caps(utilization, 2.0 * index)

    @settings(max_examples=30)
    @given(st.floats(min_value=0.0, max_value=0.74))
    def test_low_utilization_never_caps(self, utilization):
        policy = DualThresholdPolicy()
        assert policy.desired_caps(utilization, 0.0) == GroupCaps.uncapped()


# ---------------------------------------------------------------------------
# Timeline / power invariants across the model zoo
# ---------------------------------------------------------------------------
class TestTimelineProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(sorted(MODEL_ZOO)),
        st.integers(min_value=64, max_value=8192),
        st.integers(min_value=16, max_value=2048),
    )
    def test_timeline_durations_positive_and_phase_ordering(
        self, model_name, inputs, outputs
    ):
        spec = get_model(model_name)
        timeline = request_timeline(
            spec, A100_80GB,
            InferenceRequest(model_name, inputs, outputs),
        )
        prompt, token = timeline.segments
        assert prompt.duration_seconds > 0
        assert token.duration_seconds > 0
        assert prompt.activity > token.activity  # Insight 4, always

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(sorted(MODEL_ZOO)),
        st.floats(min_value=0.3, max_value=1.0),
    )
    def test_locking_never_speeds_up_or_raises_power(self, model_name, ratio):
        spec = get_model(model_name)
        timeline = request_timeline(
            spec, A100_80GB, InferenceRequest(model_name, 1024, 128),
        )
        assert timeline.total_seconds(ratio) >= \
            timeline.total_seconds(1.0) - 1e-12
        power_model = GpuPowerModel(A100_80GB)
        clock = ratio * A100_80GB.max_sm_clock_mhz
        for segment in timeline.segments:
            assert power_model.power(segment.activity, clock) <= \
                power_model.power(segment.activity,
                                  A100_80GB.max_sm_clock_mhz) + 1e-9


# ---------------------------------------------------------------------------
# Simulator conservation laws
# ---------------------------------------------------------------------------
def _poisson_requests(rate, duration, seed):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= duration:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


class TestSimulatorConservation:
    @settings(max_examples=8, deadline=None)
    @given(st.floats(min_value=0.05, max_value=2.0),
           st.integers(min_value=0, max_value=1000))
    def test_requests_conserved(self, rate, seed):
        """Every offered request is either served or dropped."""
        requests = _poisson_requests(rate, 240.0, seed)
        config = ClusterConfig(n_base_servers=6, seed=seed)
        result = ClusterSimulator(config, NoCapPolicy()).run(requests, 240.0)
        accounted = sum(
            m.served + m.dropped for m in result.per_priority.values()
        )
        assert accounted == len(requests)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_power_within_physical_bounds(self, seed):
        requests = _poisson_requests(0.5, 240.0, seed)
        config = ClusterConfig(n_base_servers=6, seed=seed)
        simulator = ClusterSimulator(config, NoCapPolicy())
        result = simulator.run(requests, 240.0)
        model = simulator.servers[0].power_model
        floor = config.n_servers * model.server_power(0.0, 1.0)
        ceiling = config.n_servers * model.server_power(1.0, 1.0)
        assert result.power_series.trough() >= floor - 1e-6
        assert result.power_series.peak() <= ceiling + 1e-6

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_latencies_nonnegative_and_finite(self, seed):
        requests = _poisson_requests(0.5, 240.0, seed)
        config = ClusterConfig(n_base_servers=6, seed=seed)
        result = ClusterSimulator(config, NoCapPolicy()).run(requests, 240.0)
        for metrics in result.per_priority.values():
            for latency in metrics.latencies:
                assert 0.0 < latency < 1e5


# ---------------------------------------------------------------------------
# Capping can only slow the cluster down, never break accounting
# ---------------------------------------------------------------------------
class TestCappingMonotonicity:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_polca_never_loses_requests(self, seed):
        requests = _poisson_requests(1.0, 400.0, seed)
        config = ClusterConfig(n_base_servers=6, seed=seed)
        capped = ClusterSimulator(config, DualThresholdPolicy()).run(
            requests, 400.0
        )
        accounted = sum(
            m.served + m.dropped for m in capped.per_priority.values()
        )
        assert accounted == len(requests)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_polca_power_never_exceeds_uncapped_peak(self, seed):
        requests = _poisson_requests(1.0, 400.0, seed)
        config = ClusterConfig(n_base_servers=6, seed=seed)
        free = ClusterSimulator(config, NoCapPolicy()).run(requests, 400.0)
        capped = ClusterSimulator(config, DualThresholdPolicy()).run(
            requests, 400.0
        )
        # Identical load; capping may shift power in time but the capped
        # run's peak cannot exceed the uncapped ceiling by more than the
        # telemetry sampling jitter.
        assert capped.power_series.peak() <= \
            free.power_series.peak() * 1.05


# ---------------------------------------------------------------------------
# Attribution decomposition is conservative under arbitrary faults
# ---------------------------------------------------------------------------
def _random_fault_plan(draw_noise, dropout_start, dropout_len, churn_rate,
                       actuation_fail, seed):
    from repro.faults import (
        ActuationFaultSpec,
        ChurnSpec,
        FaultPlan,
        TelemetryFaultSpec,
    )

    return FaultPlan(
        telemetry=TelemetryFaultSpec(
            noise_std=draw_noise,
            dropout_windows=(
                (dropout_start, dropout_start + dropout_len),
            ) if dropout_len >= 1.0 else (),
        ),
        actuation=ActuationFaultSpec(silent_failure_rate=actuation_fail),
        churn=ChurnSpec(failures_per_hour=churn_rate),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Power-delivery protection: accumulators and the exact energy ledger
# ---------------------------------------------------------------------------
def _random_topology(n_servers, servers_per_rack, spec=None):
    from repro.powerfail import PowerTopology, ProtectionSpec, TripCurve

    spec = spec or ProtectionSpec(
        servers_per_rack=servers_per_rack,
        rack_headroom=1.05,
        server_headroom=1.2,
        curve=TripCurve(tau_trip_s=5.0, tau_cool_s=60.0),
        cooldown_s=10.0,
        restore_batch=1,
        restore_stagger_s=5.0,
    )
    return PowerTopology.build(
        n_servers=n_servers,
        provisioned_power_w=1000.0 * n_servers,
        peak_server_w=1000.0,
        spec=spec,
    ), spec


def _drive_protection(runtime, updates, horizon, idle_w=100.0):
    """A miniature event loop around :class:`ProtectionRuntime`.

    Plays a schedule of server power changes against the runtime the
    same way the simulator does — projection events fire in time order,
    trips drain their subtree to zero, restores re-power at idle —
    while asserting, at every event time, that no device's settled
    accumulator is ever negative.
    """
    import heapq
    import math

    heap, seq = [], 0

    def push(items):
        nonlocal seq
        for fire_t, payload in items:
            heapq.heappush(heap, (fire_t, seq, payload))
            seq += 1

    push(runtime.initial_events())
    cursor = 0
    while True:
        update_t = updates[cursor][0] if cursor < len(updates) else math.inf
        event_t = heap[0][0] if heap else math.inf
        t = min(update_t, event_t)
        if t > horizon or t == math.inf:
            break
        if update_t <= event_t:
            _, index, power = updates[cursor]
            cursor += 1
            if not runtime.is_deenergized(index):
                push(runtime.update_server_power(t, index, power))
        else:
            _, _, payload = heapq.heappop(heap)
            if payload[0] == "prot":
                outcome = runtime.on_projection(
                    t, payload[1], payload[2], payload[3]
                )
                if outcome is None:
                    continue
                fired, _info, pushes = outcome
                push(pushes)
                if fired == "trip":
                    for index in runtime.begin_trip(payload[1], t):
                        push(runtime.update_server_power(t, index, 0.0))
                    _record, restore = runtime.commit_trip(
                        payload[1], t, dropped=0
                    )
                    push([restore])
            elif payload[0] == "prot_restore":
                outcome = runtime.restore_step(
                    payload[1], payload[2], payload[3], t
                )
                if outcome is None:
                    continue
                restored, next_push, _done = outcome
                for index in restored:
                    push(runtime.update_server_power(t, index, idle_w))
                if next_push is not None:
                    push([next_push])
        for device in runtime.topology.devices:
            assert runtime.accumulator(device.device_id, t) >= 0.0
    return runtime.finalize(horizon)


class TestProtectionProperties:
    @settings(max_examples=40)
    @given(
        n_servers=st.integers(min_value=1, max_value=24),
        servers_per_rack=st.integers(min_value=1, max_value=6),
    )
    def test_random_topology_is_a_partition(
        self, n_servers, servers_per_rack
    ):
        """Racks partition the row; every chain runs fuse → rack → row."""
        topology, _spec = _random_topology(n_servers, servers_per_rack)
        by_id = topology.by_id
        row = by_id["row"]
        assert row.servers == tuple(range(n_servers))
        racks = [d for d in topology.devices if d.level == "rack"]
        covered = sorted(i for rack in racks for i in rack.servers)
        assert covered == list(range(n_servers))
        assert all(d.capacity_w > 0 for d in topology.devices)
        for index, chain in enumerate(topology.chains):
            fuse, rack, top = (by_id[device_id] for device_id in chain)
            assert fuse.servers == (index,)
            assert index in rack.servers and top is row
            assert fuse.parent == rack.device_id
            assert rack.parent == "row"

    @settings(max_examples=25, deadline=None)
    @given(
        n_servers=st.integers(min_value=1, max_value=10),
        servers_per_rack=st.integers(min_value=1, max_value=4),
        schedule=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=600.0),
                st.integers(min_value=0, max_value=9),
                st.floats(min_value=0.0, max_value=3000.0),
            ),
            min_size=1,
            max_size=40,
        ),
    )
    def test_accumulators_never_negative_and_energy_conserved(
        self, n_servers, servers_per_rack, schedule
    ):
        """Any power schedule — including ones hot enough to trip fuses,
        racks, and the row — leaves every accumulator non-negative and
        the exact energy ledger balanced: row == Σracks == Σfuses in ℚ,
        across any pattern of trips and staged restores."""
        from repro.powerfail.protection import ProtectionRuntime

        topology, spec = _random_topology(n_servers, servers_per_rack)
        updates = sorted(
            (t, index % n_servers, power) for t, index, power in schedule
        )
        runtime = ProtectionRuntime(
            topology, spec, duration_s=700.0,
            initial_powers=[100.0] * n_servers,
        )
        report = _drive_protection(runtime, updates, horizon=700.0)
        assert report.peak_accumulator >= 0.0
        assert report.cascade_trips <= report.trips
        assert report.reenergizations <= report.trips
        assert report.offline_server_seconds >= 0.0
        assert report.energy_conserved_exactly
        assert report.energy_row_j == report.energy_racks_j
        assert report.energy_racks_j == report.energy_servers_j

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_protected_run_conserves_requests_across_trips(self, seed):
        """With a deliberately fragile topology the simulator still
        accounts for every request per priority *and* workload tier —
        the end-of-run conservation invariant raises if a trip loses
        one — and the energy ledger stays exact."""
        from repro.powerfail import ProtectionSpec, TripCurve

        requests = _poisson_requests(1.5, 240.0, seed)
        config = ClusterConfig(
            n_base_servers=4, added_fraction=0.5, seed=seed,
            protection=ProtectionSpec(
                servers_per_rack=2,
                row_headroom=0.55,
                rack_headroom=1.02,
                curve=TripCurve(tau_trip_s=5.0, tau_cool_s=60.0),
                cooldown_s=20.0,
                restore_stagger_s=2.0,
            ),
        )
        result = ClusterSimulator(config, NoCapPolicy()).run(
            requests, 240.0
        )
        accounted = sum(
            m.served + m.dropped for m in result.per_priority.values()
        )
        assert accounted == len(requests)
        by_workload = sum(
            m.served + m.dropped for m in result.per_workload.values()
        )
        assert by_workload == len(requests)
        assert result.powerfail is not None
        assert result.powerfail.energy_conserved_exactly


class TestAttributionConservation:
    """Random faulted workloads: the causal decomposition is exact.

    The span layer's counterfactual accounting must be *conservative*
    under any fault plan, load level, or policy: the five components sum
    to the realized latency exactly (Fraction arithmetic, no tolerance),
    no component is negative, and every request the simulator finished
    is attributed (no unfinished spans on a complete trace).
    """

    @settings(max_examples=10, deadline=None)
    @given(
        rate=st.floats(min_value=0.2, max_value=2.5),
        seed=st.integers(min_value=0, max_value=10_000),
        noise=st.floats(min_value=0.0, max_value=0.05),
        dropout_start=st.floats(min_value=0.0, max_value=120.0),
        dropout_len=st.floats(min_value=0.0, max_value=120.0),
        churn_rate=st.floats(min_value=0.0, max_value=30.0),
        actuation_fail=st.floats(min_value=0.0, max_value=0.3),
        use_polca=st.booleans(),
    )
    def test_decomposition_is_exact_and_nonnegative(
        self, rate, seed, noise, dropout_start, dropout_len, churn_rate,
        actuation_fail, use_polca,
    ):
        from fractions import Fraction

        from repro.faults import ReliabilityConfig
        from repro.obs import COMPONENTS, SpanBuilder, attribute_run

        plan = _random_fault_plan(
            noise, dropout_start, dropout_len, churn_rate,
            actuation_fail, seed,
        )
        requests = _poisson_requests(rate, 240.0, seed)
        config = ClusterConfig(
            n_base_servers=6, seed=seed, fault_plan=plan,
            reliability=ReliabilityConfig(
                fallback_after_ticks=3, brake_after_stale_s=20.0
            ),
        )
        policy = DualThresholdPolicy() if use_polca else NoCapPolicy()
        builder = SpanBuilder()
        result = ClusterSimulator(config, policy, recorder=builder).run(
            requests, 240.0
        )
        report = attribute_run(builder)
        assert report.unfinished == 0
        assert report.latency_mismatches == 0
        assert len(report.requests) == result.total_served
        assert report.dropped == sum(
            m.dropped for m in result.per_priority.values()
        )
        for request in report.requests:
            total = sum(
                (request.exact[name] for name in COMPONENTS), Fraction(0)
            )
            assert total == request.exact_realized
            for name in COMPONENTS:
                assert request.exact[name] >= 0
            assert request.exact_excess >= 0
