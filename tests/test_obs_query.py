"""Trace query engine (repro.obs.query).

Filtering, projection, aggregation, and span joins over event streams
must be deterministic (stable row order, interpolated quantiles) and
reject malformed query specifications with ``ConfigurationError`` — the
CLI maps that to its usage-error exit code.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    filter_events,
    group_aggregate,
    parse_agg,
    project,
    quantile,
    shard_of_server,
    span_join,
)

EVENTS = [
    {"kind": "control", "t": 0.0, "utilization": 0.5},
    {"kind": "serve", "t": 1.0, "server": "s0", "latency_s": 2.0},
    {"kind": "serve", "t": 2.0, "server": "s1", "latency_s": 4.0},
    {"kind": "serve", "t": 3.0, "server": "s2", "latency_s": 6.0},
    {"kind": "drop", "t": 4.0, "server": "s1", "reason": "queue"},
    {"kind": "engine_run", "digest": "abc"},  # no t
]


class TestShardOfServer:
    def test_round_robin_by_trailing_index(self):
        assert shard_of_server("s12", 5) == 2
        assert shard_of_server("s0", 3) == 0
        assert shard_of_server(7, 3) == 1

    def test_no_index_means_no_shard(self):
        assert shard_of_server(None, 2) is None
        assert shard_of_server("controller", 2) is None
        assert shard_of_server(True, 2) is None

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            shard_of_server("s1", 0)


class TestFilterEvents:
    def test_kind_filter(self):
        out = filter_events(EVENTS, kinds=["serve"])
        assert [e["t"] for e in out] == [1.0, 2.0, 3.0]

    def test_time_window_is_half_open_and_drops_untimed(self):
        out = filter_events(EVENTS, t_min=1.0, t_max=3.0)
        assert [e["t"] for e in out] == [1.0, 2.0]

    def test_server_filter(self):
        out = filter_events(EVENTS, server="s1")
        assert [e["kind"] for e in out] == ["serve", "drop"]

    def test_shard_filter_routes_servers(self):
        out = filter_events(EVENTS, shard=1, n_shards=2)
        assert [e["server"] for e in out] == ["s1", "s1"]

    def test_shard_requires_n_shards(self):
        with pytest.raises(ConfigurationError):
            filter_events(EVENTS, shard=1)
        with pytest.raises(ConfigurationError):
            filter_events(EVENTS, shard=5, n_shards=2)

    def test_where_is_field_equality(self):
        out = filter_events(EVENTS, where={"reason": "queue"})
        assert [e["kind"] for e in out] == ["drop"]

    def test_empty_kinds_rejected(self):
        with pytest.raises(ConfigurationError):
            filter_events(EVENTS, kinds=[])

    def test_input_order_is_preserved(self):
        assert filter_events(EVENTS) == EVENTS


class TestProject:
    def test_keeps_only_named_fields(self):
        rows = project(EVENTS[1:3], ["t", "latency_s"])
        assert rows == [
            {"t": 1.0, "latency_s": 2.0},
            {"t": 2.0, "latency_s": 4.0},
        ]

    def test_missing_fields_stay_absent(self):
        rows = project(EVENTS[:1], ["kind", "latency_s"])
        assert rows == [{"kind": "control"}]

    def test_empty_projection_rejected(self):
        with pytest.raises(ConfigurationError):
            project(EVENTS, [])


class TestQuantile:
    def test_interpolates_linearly(self):
        assert quantile([0.0, 10.0], 0.5) == 5.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.25) == 1.75

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 5.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            quantile([1.0], 1.5)
        with pytest.raises(ConfigurationError):
            quantile([], 0.5)


class TestParseAgg:
    def test_specs(self):
        assert parse_agg("count") == ("count", None, None)
        assert parse_agg("mean:latency_s") == ("mean", "latency_s", None)
        assert parse_agg("p95:latency_s") == ("quantile", "latency_s", 0.95)

    def test_rejects_malformed(self):
        for bad in ("mean", "p95", "median:x", "p101:x", "sum:"):
            with pytest.raises(ConfigurationError):
                parse_agg(bad)


class TestGroupAggregate:
    def test_counts_per_group_sorted_by_key(self):
        rows = group_aggregate(EVENTS, by="kind")
        assert [(r["kind"], r["count"]) for r in rows] == [
            ("control", 1), ("drop", 1), ("engine_run", 1), ("serve", 3),
        ]

    def test_numeric_aggregations(self):
        rows = group_aggregate(
            EVENTS, by="kind",
            aggs=("count", "sum:latency_s", "mean:latency_s",
                  "p50:latency_s"),
        )
        serve = next(r for r in rows if r["kind"] == "serve")
        assert serve["sum:latency_s"] == 12.0
        assert serve["mean:latency_s"] == 4.0
        assert serve["p50:latency_s"] == 4.0
        control = next(r for r in rows if r["kind"] == "control")
        assert control["sum:latency_s"] is None

    def test_multi_field_group_key_sorts_deterministically(self):
        rows = group_aggregate(EVENTS, by=("kind", "server"))
        assert [(r["kind"], r["server"]) for r in rows] == [
            ("control", None), ("drop", "s1"), ("engine_run", None),
            ("serve", "s0"), ("serve", "s1"), ("serve", "s2"),
        ]

    def test_rejects_empty_specs(self):
        with pytest.raises(ConfigurationError):
            group_aggregate(EVENTS, by=[])
        with pytest.raises(ConfigurationError):
            group_aggregate(EVENTS, by="kind", aggs=())


class TestSpanJoin:
    SPANS = [
        {"kind": "brake_request", "t": 1.0, "source": "a"},
        {"kind": "brake_request", "t": 2.0, "source": "b"},
        {"kind": "brake_release", "t": 3.0, "source": "a"},
        {"kind": "brake_request", "t": 4.0, "source": "a"},
        {"kind": "brake_release", "t": 9.0, "source": "a"},
    ]

    def test_fifo_pairing_per_key(self):
        rows = span_join(
            self.SPANS, "brake_request", "brake_release", key=("source",)
        )
        assert [(r["source"], r["t_start"], r["t_end"]) for r in rows] == [
            ("a", 1.0, 3.0), ("b", 2.0, None), ("a", 4.0, 9.0),
        ]
        assert rows[0]["duration_s"] == 2.0
        assert rows[1]["duration_s"] is None

    def test_unkeyed_join_pairs_globally(self):
        rows = span_join(self.SPANS, "brake_request", "brake_release")
        assert [(r["t_start"], r["t_end"]) for r in rows] == [
            (1.0, 3.0), (2.0, 9.0), (4.0, None),
        ]

    def test_unmatched_close_is_ignored(self):
        rows = span_join(
            [{"kind": "close", "t": 1.0}], "open", "close"
        )
        assert rows == []

    def test_same_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            span_join(self.SPANS, "x", "x")
