"""Pearson correlation utilities (Figure 7 backend)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.correlation import (
    correlation_matrix,
    correlations_with,
    pearson,
)
from repro.errors import ConfigurationError


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        # Matches the "uncorrelated" reading of flat token-phase counters.
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson([1, 2], [1, 2, 3])

    def test_single_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson([1], [2])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2,
                    max_size=40))
    def test_bounded_in_unit_interval(self, xs):
        rng = np.random.default_rng(0)
        ys = rng.normal(size=len(xs)).tolist()
        assert -1.0 - 1e-9 <= pearson(xs, ys) <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2,
                    max_size=40))
    def test_symmetric(self, xs):
        ys = [x * 0.5 + 1 for x in xs]
        assert pearson(xs, ys) == pytest.approx(pearson(ys, xs))


class TestCorrelationMatrix:
    def test_diagonal_is_one(self):
        names, matrix = correlation_matrix({
            "a": [1, 2, 3], "b": [3, 1, 2],
        })
        assert np.allclose(np.diag(matrix), 1.0)

    def test_symmetric_matrix(self):
        _, matrix = correlation_matrix({
            "a": [1, 2, 3], "b": [3, 1, 2], "c": [1, 3, 2],
        })
        assert np.allclose(matrix, matrix.T)

    def test_names_preserve_insertion_order(self):
        names, _ = correlation_matrix({"power": [1, 2], "sm": [2, 1]})
        assert names == ["power", "sm"]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            correlation_matrix({})


class TestCorrelationsWith:
    def test_excludes_target(self):
        result = correlations_with("a", {"a": [1, 2, 3], "b": [1, 2, 3]})
        assert set(result) == {"b"}
        assert result["b"] == pytest.approx(1.0)

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError):
            correlations_with("missing", {"a": [1, 2]})
