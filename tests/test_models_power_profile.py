"""Phase activity profiles (the power side of Figure 8)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.models.datatypes import FP16, INT8
from repro.models.power_profile import PhasePowerProfile, TOKEN_ACTIVITY_CEILING
from repro.models.registry import MODEL_ZOO, get_model


@pytest.fixture()
def bloom_profile():
    return PhasePowerProfile(model=get_model("BLOOM-176B"))


class TestPromptActivity:
    def test_rises_with_input_size(self, bloom_profile):
        """Figure 8a: peak power drastically increases with input size."""
        assert bloom_profile.prompt_activity(8192) > \
            bloom_profile.prompt_activity(256)

    def test_batch_multiplies_effective_tokens(self, bloom_profile):
        """Figure 8c: batch raises peak like a larger prompt."""
        assert bloom_profile.prompt_activity(512, batch_size=8) == \
            pytest.approx(bloom_profile.prompt_activity(4096, batch_size=1))

    def test_saturates_at_model_maximum(self, bloom_profile):
        huge = bloom_profile.prompt_activity(100_000)
        cal = get_model("BLOOM-176B").calibration
        assert huge <= cal.prompt_activity_max + 1e-9

    def test_larger_models_spike_higher(self):
        """Figure 8a: BLOOM shows the largest peaks, Flan-T5 the smallest
        of the five inference models."""
        bloom = PhasePowerProfile(model=get_model("BLOOM-176B"))
        flan = PhasePowerProfile(model=get_model("Flan-T5-XXL"))
        assert bloom.prompt_activity(4096) > flan.prompt_activity(4096)

    def test_invalid_inputs_rejected(self, bloom_profile):
        with pytest.raises(ConfigurationError):
            bloom_profile.prompt_activity(0)
        with pytest.raises(ConfigurationError):
            bloom_profile.prompt_activity(128, 0)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_always_in_unit_interval(self, tokens):
        profile = PhasePowerProfile(model=get_model("Llama2-70B"))
        assert 0.0 <= profile.prompt_activity(tokens) <= 1.0


class TestTokenActivity:
    def test_below_prompt_activity(self, bloom_profile):
        """Insight 4: token phases draw less power than prompt phases."""
        assert bloom_profile.token_activity() < \
            bloom_profile.prompt_activity(2048)

    def test_gradual_batch_increase(self, bloom_profile):
        """Figure 8c: mean power rises gradually with batch size."""
        a1 = bloom_profile.token_activity(1)
        a16 = bloom_profile.token_activity(16)
        assert a1 < a16 < a1 + 0.15

    def test_ceiling_enforced(self):
        for spec in MODEL_ZOO.values():
            profile = PhasePowerProfile(model=spec)
            assert profile.token_activity(1024) <= TOKEN_ACTIVITY_CEILING

    def test_idle_activity_is_zero(self, bloom_profile):
        assert bloom_profile.idle_activity() == 0.0

    @given(st.integers(min_value=1, max_value=64))
    def test_monotone_in_batch(self, batch):
        profile = PhasePowerProfile(model=get_model("OPT-30B"))
        assert profile.token_activity(batch + 1) >= profile.token_activity(batch)


class TestDatatypeEffect:
    def test_int8_reduces_prompt_activity(self):
        """Section 4.2: quantized kernels drive the chip less hard."""
        model = get_model("Llama2-70B")
        fp16 = PhasePowerProfile(model=model, dtype=FP16)
        int8 = PhasePowerProfile(model=model, dtype=INT8)
        assert int8.prompt_activity(2048) < fp16.prompt_activity(2048)
