"""Exception hierarchy contracts."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.ModelNotFoundError,
    errors.FrequencyError,
    errors.PowerCapError,
    errors.CapacityError,
    errors.ActuationError,
    errors.TelemetryError,
    errors.SimulationError,
    errors.TraceError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_model_not_found_is_configuration_error():
    assert issubclass(errors.ModelNotFoundError, errors.ConfigurationError)


def test_frequency_and_power_cap_are_configuration_errors():
    assert issubclass(errors.FrequencyError, errors.ConfigurationError)
    assert issubclass(errors.PowerCapError, errors.ConfigurationError)


def test_catching_base_class_catches_subsystem_errors():
    with pytest.raises(errors.ReproError):
        raise errors.TelemetryError("sample failed")
