"""The observability layer: recorders, metrics, and run parity.

The tentpole guarantee is zero overhead *and zero perturbation* when
disabled: a simulation handed the NullRecorder (or no recorder at all)
must be bit-identical — power series, energy integral, latency lists,
every counter — to the pre-observability simulator, across the
reference configurations (policies, fault plans, power scale, pool
split). Recording, in turn, must not change any result either: the
recorder only observes.
"""

import json
import math

import numpy as np
import pytest

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy, SingleThresholdLowPriPolicy
from repro.core.policy import DualThresholdPolicy
from repro.errors import ConfigurationError
from repro.exec import SweepEngine, result_from_dict, result_to_dict
from repro.faults import FaultPlan, ReliabilityConfig, TelemetryFaultSpec
from repro.obs import (
    NULL_RECORDER,
    CsvRecorder,
    JsonlRecorder,
    MemoryRecorder,
    MetricsRegistry,
    NullRecorder,
    aggregate_snapshots,
    read_jsonl,
)
from repro.workloads.requests import RequestSampler
from repro.workloads.spec import Priority


def make_requests(rate_per_s, duration_s, seed=0):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


#: The six reference configurations the parity guarantee is checked on:
#: policy x fault plan x oversubscription x power scale x pool split.
REFERENCE_CONFIGS = {
    "polca-default": (
        dict(n_base_servers=8, seed=0),
        DualThresholdPolicy,
    ),
    "polca-oversubscribed": (
        dict(n_base_servers=8, seed=1, added_fraction=0.30),
        DualThresholdPolicy,
    ),
    "polca-adversarial": (
        dict(n_base_servers=8, seed=2, fault_plan=FaultPlan.adversarial()),
        DualThresholdPolicy,
    ),
    "nocap-power-scaled": (
        dict(n_base_servers=8, seed=3, power_scale=1.05),
        NoCapPolicy,
    ),
    "single-thresh-lp-heavy": (
        dict(n_base_servers=8, seed=4, low_priority_fraction=0.75),
        SingleThresholdLowPriPolicy,
    ),
    "nocap-stale-telemetry": (
        dict(
            n_base_servers=8,
            seed=5,
            fault_plan=FaultPlan(telemetry=TelemetryFaultSpec(
                dropout_windows=((10.0, 180.0),)
            )),
            reliability=ReliabilityConfig(
                fallback_after_ticks=3, brake_after_stale_s=10.0
            ),
        ),
        NoCapPolicy,
    ),
}


def run_reference(name, recorder=None, duration_s=240.0, rate_per_s=4.0):
    overrides, policy_factory = REFERENCE_CONFIGS[name]
    config = ClusterConfig(**overrides)
    requests = make_requests(rate_per_s, duration_s, seed=config.seed)
    if recorder is None:
        simulator = ClusterSimulator(config, policy_factory())
    else:
        simulator = ClusterSimulator(
            config, policy_factory(), recorder=recorder
        )
    return simulator.run(requests, duration_s)


def assert_results_bit_identical(a, b):
    assert (a.power_series.values == b.power_series.values).all()
    assert a.total_energy_j == b.total_energy_j
    assert a.power_brake_events == b.power_brake_events
    assert a.capping_actions == b.capping_actions
    for priority in Priority:
        assert a.per_priority[priority].served == \
            b.per_priority[priority].served
        assert a.per_priority[priority].dropped == \
            b.per_priority[priority].dropped
        assert a.per_priority[priority].latencies == \
            b.per_priority[priority].latencies
    assert a.per_workload.keys() == b.per_workload.keys()
    ra, rb = a.robustness, b.robustness
    assert ra.commands_issued == rb.commands_issued
    assert ra.commands_verified == rb.commands_verified
    assert ra.reissues == rb.reissues
    assert ra.fallback_entries == rb.fallback_entries
    assert ra.fallback_brakes == rb.fallback_brakes
    assert ra.requests_lost_to_churn == rb.requests_lost_to_churn
    assert ra.time_at_risk_s == rb.time_at_risk_s
    assert ra.longest_overbudget_s == rb.longest_overbudget_s


# ----------------------------------------------------------------------
# Parity: disabled recording is invisible, enabled recording is inert
# ----------------------------------------------------------------------
class TestRecorderParity:
    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_null_recorder_bit_identical_to_bare_run(self, name):
        bare = run_reference(name)
        nulled = run_reference(name, recorder=NULL_RECORDER)
        assert_results_bit_identical(bare, nulled)
        assert bare.observability is None
        assert nulled.observability is None

    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_recording_does_not_perturb_the_simulation(self, name):
        bare = run_reference(name)
        recorder = MemoryRecorder()
        traced = run_reference(name, recorder=recorder)
        assert_results_bit_identical(bare, traced)
        assert len(recorder) > 0
        assert traced.observability is not None

    def test_fresh_null_recorder_instance_is_disabled(self):
        assert NullRecorder().enabled is False
        assert NULL_RECORDER.enabled is False


# ----------------------------------------------------------------------
# Recorder sinks
# ----------------------------------------------------------------------
class TestRecorderSinks:
    def test_memory_recorder_keeps_emission_order(self):
        recorder = MemoryRecorder()
        recorder.emit({"kind": "a", "t": 1.0})
        recorder.emit({"kind": "b", "t": 0.5})
        assert [e["kind"] for e in recorder.events] == ["a", "b"]
        assert len(recorder) == 2

    def test_memory_recorder_kind_filter(self):
        recorder = MemoryRecorder(kinds=["serve"])
        recorder.emit({"kind": "serve", "t": 1.0})
        recorder.emit({"kind": "drop", "t": 2.0})
        assert [e["kind"] for e in recorder.events] == ["serve"]

    def test_empty_kind_filter_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryRecorder(kinds=[])

    def test_memory_recorder_max_events_bounds_the_buffer(self):
        recorder = MemoryRecorder(max_events=3)
        for i in range(10):
            recorder.emit({"kind": "serve", "t": float(i)})
        assert [e["t"] for e in recorder.events] == [0.0, 1.0, 2.0]
        assert recorder.dropped_events == 7

    def test_memory_recorder_bound_census_in_snapshot(self):
        recorder = MemoryRecorder(max_events=2)
        for i in range(5):
            recorder.emit({"kind": "serve", "t": float(i)})
        snapshot = recorder.observability_snapshot()
        assert snapshot["trace_buffer"] == {
            "max_events": 2,
            "recorded_events": 2,
            "dropped_events": 3,
        }

    def test_unbounded_memory_recorder_has_no_snapshot(self):
        recorder = MemoryRecorder()
        recorder.emit({"kind": "serve", "t": 1.0})
        assert recorder.observability_snapshot() is None
        assert recorder.dropped_events == 0

    def test_memory_recorder_bound_counts_only_stored_kinds(self):
        recorder = MemoryRecorder(kinds=["serve"], max_events=1)
        recorder.emit({"kind": "drop", "t": 0.0})   # filtered, not dropped
        recorder.emit({"kind": "serve", "t": 1.0})
        recorder.emit({"kind": "serve", "t": 2.0})  # over the bound
        assert len(recorder.events) == 1
        assert recorder.dropped_events == 1

    def test_memory_recorder_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            MemoryRecorder(max_events=0)

    def test_jsonl_round_trip_is_exact(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        events = [
            {"kind": "serve", "t": 0.30000000000000004, "latency_s": 1.5},
            {"kind": "drop", "t": 2.0, "reason": "saturated"},
        ]
        with JsonlRecorder(path) as recorder:
            for event in events:
                recorder.emit(event)
            assert recorder.events_written == 2
        assert read_jsonl(path) == events

    def test_jsonl_emit_after_close_raises(self, tmp_path):
        recorder = JsonlRecorder(str(tmp_path / "t.jsonl"))
        recorder.close()
        recorder.close()  # idempotent
        with pytest.raises(ConfigurationError):
            recorder.emit({"kind": "serve"})

    def test_read_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "a"}\nnot json\n')
        with pytest.raises(ConfigurationError):
            read_jsonl(str(path))
        path.write_text('[1, 2]\n')
        with pytest.raises(ConfigurationError):
            read_jsonl(str(path))

    def test_csv_recorder_writes_payload_column(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        with CsvRecorder(path) as recorder:
            recorder.emit({"kind": "serve", "t": 1.0, "latency_s": 2.5})
        lines = open(path).read().strip().splitlines()
        assert lines[0] == "t,kind,payload"
        t, kind, payload = lines[1].split(",", 2)
        assert (t, kind) == ("1.0", "serve")
        assert json.loads(payload.strip('"').replace('""', '"')) == {
            "latency_s": 2.5
        }

    def test_jsonl_survives_a_mid_run_fault(self, tmp_path):
        """A trace recorded up to an exception is still valid JSONL."""
        path = str(tmp_path / "faulted.jsonl")
        with pytest.raises(RuntimeError, match="mid-run fault"):
            with JsonlRecorder(path) as recorder:
                recorder.emit({"kind": "serve", "t": 1.0, "latency_s": 2.0})
                recorder.emit({"kind": "control", "t": 2.0,
                               "utilization": 0.9})
                raise RuntimeError("mid-run fault")
        # __exit__ flushed and closed despite the exception ...
        with pytest.raises(ConfigurationError):
            recorder.emit({"kind": "serve", "t": 3.0})
        # ... so the partial artifact parses completely.
        events = read_jsonl(path)
        assert [e["kind"] for e in events] == ["serve", "control"]
        assert events[0]["latency_s"] == 2.0

    def test_csv_survives_a_mid_run_fault(self, tmp_path):
        path = str(tmp_path / "faulted.csv")
        with pytest.raises(RuntimeError):
            with CsvRecorder(path) as recorder:
                recorder.emit({"kind": "serve", "t": 1.0, "latency_s": 2.0})
                raise RuntimeError("mid-run fault")
        import csv

        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["t", "kind", "payload"]
        assert rows[1][:2] == ["1.0", "serve"]
        assert json.loads(rows[1][2]) == {"latency_s": 2.0}
        assert len(rows) == 2  # nothing torn after the fault

    def test_simulation_trace_streams_to_jsonl(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JsonlRecorder(path) as recorder:
            run_reference("polca-adversarial", recorder=recorder)
        events = read_jsonl(path)
        kinds = {event["kind"] for event in events}
        assert "control" in kinds
        assert "serve" in kinds
        # JSONL floats round-trip exactly.
        memory = MemoryRecorder()
        run_reference("polca-adversarial", recorder=memory)
        assert events == memory.events


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("served").inc()
        registry.counter("served").inc(2)
        registry.gauge("peak").max(5.0)
        registry.gauge("peak").max(3.0)
        registry.histogram("util", bounds=(0.5, 1.0)).observe(0.4)
        registry.histogram("util", bounds=(0.5, 1.0)).observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["served"] == 3
        assert snapshot["gauges"]["peak"] == 5.0
        hist = snapshot["histograms"]["util"]
        assert hist["counts"] == [1, 0, 1]
        assert hist["count"] == 2
        assert hist["min"] == 0.4 and hist["max"] == 1.5

    def test_gauge_unset_state_is_explicit(self):
        from repro.obs.metrics import Gauge

        gauge = Gauge()
        assert gauge.value is None
        assert gauge.is_set is False
        gauge.set(0.0)
        assert gauge.is_set is True
        assert gauge.value == 0.0  # set-to-zero != never-set

    def test_gauge_max_seeds_from_all_negative_signals(self):
        from repro.obs.metrics import Gauge

        gauge = Gauge()
        gauge.max(-5.0)
        assert gauge.value == -5.0  # not clamped by an implicit 0.0
        gauge.max(-3.0)
        assert gauge.value == -3.0
        gauge.max(-10.0)
        assert gauge.value == -3.0

    def test_unset_gauge_appears_in_snapshot_as_none(self):
        registry = MetricsRegistry()
        registry.gauge("touched").set(0.0)
        registry.gauge("untouched")
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["touched"] == 0.0
        assert snapshot["gauges"]["untouched"] is None

    def test_aggregate_keeps_unset_gauges_without_outranking_set_ones(self):
        a = MetricsRegistry()
        a.gauge("peak")  # never written
        a.gauge("floor").max(-4.0)
        b = MetricsRegistry()
        b.gauge("peak").set(-2.0)
        b.gauge("floor")
        merged = aggregate_snapshots([a.snapshot(), b.snapshot()])
        assert merged["gauges"]["peak"] == -2.0  # the set run wins
        assert merged["gauges"]["floor"] == -4.0
        only_unset = aggregate_snapshots([a.snapshot()])
        assert only_unset["gauges"]["peak"] is None

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("x").inc(-1)

    def test_name_collision_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_histogram_bounds_must_match_on_reuse(self):
        registry = MetricsRegistry()
        registry.histogram("util", bounds=(0.5, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("util", bounds=(0.25, 1.0))

    def test_histogram_mean_and_validation(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ConfigurationError):
            Histogram(bounds=())
        with pytest.raises(ConfigurationError):
            Histogram(bounds=(1.0, 0.5))
        hist = Histogram(bounds=(1.0,))
        assert hist.mean == 0.0
        hist.observe(0.5)
        hist.observe(1.5)
        assert hist.mean == pytest.approx(1.0)

    def test_histogram_observe_many_matches_observe(self):
        from repro.obs.metrics import Histogram

        bounds = (0.5, 1.0, 2.0)
        values = [0.25, 0.5, 0.75, 1.0, 1.5, 2.5, 0.5, 2.0]
        batched = Histogram(bounds=bounds)
        batched.observe_many(values)
        looped = Histogram(bounds=bounds)
        for value in values:
            looped.observe(value)
        assert batched.counts == looped.counts
        assert batched.count == looped.count
        assert batched.min == looped.min
        assert batched.max == looped.max
        assert batched.total == pytest.approx(looped.total)
        # A second batch accumulates on top of the first.
        batched.observe_many([3.0])
        assert batched.count == len(values) + 1
        assert batched.counts[-1] == looped.counts[-1] + 1
        assert batched.max == 3.0

    def test_histogram_observe_many_empty_is_noop(self):
        from repro.obs.metrics import Histogram

        hist = Histogram(bounds=(1.0,))
        hist.observe_many([])
        assert hist.count == 0
        assert hist.counts == [0, 0]
        assert hist.mean == 0.0

    def test_aggregate_snapshots(self):
        a = MetricsRegistry()
        a.counter("served").inc(2)
        a.gauge("peak").set(3.0)
        a.histogram("util", bounds=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("served").inc(5)
        b.gauge("peak").set(7.0)
        b.histogram("util", bounds=(1.0,)).observe(2.0)
        merged = aggregate_snapshots([a.snapshot(), None, b.snapshot()])
        assert merged["counters"]["served"] == 7
        assert merged["gauges"]["peak"] == 7.0
        hist = merged["histograms"]["util"]
        assert hist["counts"] == [1, 1]
        assert hist["min"] == 0.5 and hist["max"] == 2.0

    def test_aggregate_rejects_mismatched_bounds(self):
        a = MetricsRegistry()
        a.histogram("util", bounds=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("util", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError):
            aggregate_snapshots([a.snapshot(), b.snapshot()])

    def test_aggregate_of_nothing_is_empty(self):
        merged = aggregate_snapshots([None, None])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# Simulator observability snapshot
# ----------------------------------------------------------------------
class TestSimulatorObservability:
    def test_snapshot_counters_match_result(self):
        recorder = MemoryRecorder()
        result = run_reference("polca-adversarial", recorder=recorder)
        counters = result.observability["counters"]
        assert counters["requests.served"] == result.total_served
        assert counters["brake.engagements"] == result.power_brake_events
        assert counters["commands.cap_actions"] == result.capping_actions
        report = result.robustness
        assert counters["commands.issued"] == report.commands_issued
        assert counters["requests.lost_to_churn"] == \
            report.requests_lost_to_churn
        assert counters["churn.failures"] == report.server_failures
        hist = result.observability["histograms"]["control.utilization"]
        assert hist["count"] > 0
        assert math.isfinite(hist["sum"])
        gauges = result.observability["gauges"]
        assert gauges["power.peak_row_w"] == result.power_series.peak()
        assert gauges["energy.total_j"] == result.total_energy_j

    def test_snapshot_survives_the_result_codec(self):
        recorder = MemoryRecorder()
        result = run_reference("polca-default", recorder=recorder)
        decoded = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert decoded.observability == result.observability

    def test_codec_preserves_absent_snapshot(self):
        result = run_reference("polca-default")
        decoded = result_from_dict(result_to_dict(result))
        assert decoded.observability is None

    def test_aggregate_across_reference_runs(self):
        snaps = []
        for name in ("polca-default", "nocap-power-scaled"):
            recorder = MemoryRecorder()
            snaps.append(
                run_reference(name, recorder=recorder).observability
            )
        merged = aggregate_snapshots(snaps)
        assert merged["counters"]["requests.served"] == sum(
            s["counters"]["requests.served"] for s in snaps
        )
        assert merged["gauges"]["power.peak_row_w"] == max(
            s["gauges"]["power.peak_row_w"] for s in snaps
        )


# ----------------------------------------------------------------------
# Engine-level recording
# ----------------------------------------------------------------------
class TestEngineRecording:
    def make_specs(self, seeds=(1, 2, 1)):
        from repro.exec import PolicySpec, RunSpec
        from repro.units import hours

        return [
            RunSpec(
                config=ClusterConfig(n_base_servers=10, seed=seed),
                policy=PolicySpec("No-cap"),
                duration_s=hours(1),
            )
            for seed in seeds
        ]

    def test_engine_emits_run_and_batch_events(self):
        recorder = MemoryRecorder()
        engine = SweepEngine(workers=1, recorder=recorder)
        specs = self.make_specs()
        engine.run_specs(specs)
        engine.run_specs(specs[:1])
        kinds = [event["kind"] for event in recorder.events]
        assert kinds.count("engine_run") == 2  # seed 1 deduped in-batch
        assert kinds.count("engine_batch") == 2
        assert kinds.count("engine_cache_hit") == 1
        run_events = [
            e for e in recorder.events if e["kind"] == "engine_run"
        ]
        digests = {spec.digest() for spec in specs}
        for event in run_events:
            assert event["digest"] in digests
            assert event["wall_s"] > 0
            assert isinstance(event["worker"], int)
        counters = engine.metrics.snapshot()["counters"]
        assert counters["engine.simulated"] == 2
        assert counters["engine.requested"] == 4
        assert counters["engine.cache_hits"] == 2  # 1 in-batch + 1 cached
        assert counters["engine.batches"] == 2

    def test_engine_recording_results_identical_to_unrecorded(self):
        specs = self.make_specs(seeds=(1, 2))
        plain = SweepEngine(workers=1).run_specs(specs)
        recorded = SweepEngine(
            workers=1, recorder=MemoryRecorder()
        ).run_specs(specs)
        for a, b in zip(plain, recorded):
            assert a.total_energy_j == b.total_energy_j
            assert (a.power_series.values == b.power_series.values).all()

    def test_engine_emits_live_progress_events(self):
        recorder = MemoryRecorder()
        engine = SweepEngine(workers=1, recorder=recorder)
        specs = self.make_specs(seeds=(1, 2, 1))  # 2 unique + 1 dupe
        engine.run_specs(specs)
        progress = [
            e for e in recorder.events if e["kind"] == "engine_progress"
        ]
        assert [e["done"] for e in progress] == [1, 2]
        assert all(e["total"] == 2 for e in progress)
        assert all(e["cache_hits"] == 1 for e in progress)
        assert all(e["workers"] == 1 for e in progress)
        elapsed = [e["elapsed_s"] for e in progress]
        assert elapsed == sorted(elapsed)
        assert progress[-1]["eta_s"] == 0.0  # batch complete
        assert progress[0]["eta_s"] > 0.0
        gauges = engine.metrics.snapshot()["gauges"]
        assert gauges["engine.progress_done"] == 2.0

    def test_parallel_engine_emits_progress_per_completion(self):
        from repro.exec import fork_available

        if not fork_available():
            pytest.skip("platform has no fork start method")
        recorder = MemoryRecorder()
        engine = SweepEngine(workers=2, recorder=recorder)
        engine.run_specs(self.make_specs(seeds=(1, 2)))
        progress = [
            e for e in recorder.events if e["kind"] == "engine_progress"
        ]
        assert [e["done"] for e in progress] == [1, 2]
        assert all(e["workers"] == 2 for e in progress)

    def test_engine_export_metrics_textfile(self, tmp_path):
        import re

        engine = SweepEngine(workers=1, recorder=MemoryRecorder())
        engine.run_specs(self.make_specs(seeds=(1, 2)))
        path = tmp_path / "engine.prom"
        text = engine.export_metrics(
            str(path), labels={"sweep": "unit"}
        )
        assert path.read_text(encoding="utf-8") == text
        assert text.endswith("# EOF\n")
        assert ('repro_engine_engine_simulated_total{sweep="unit"} 2'
                in text)
        assert re.search(
            r'repro_engine_engine_run_wall_s_bucket'
            r'\{le="\+Inf",sweep="unit"\} 2', text
        )

    def test_parallel_engine_recording_matches_serial(self):
        from repro.exec import fork_available

        if not fork_available():
            pytest.skip("platform has no fork start method")
        specs = self.make_specs(seeds=(1, 2))
        serial_rec = MemoryRecorder()
        parallel_rec = MemoryRecorder()
        serial = SweepEngine(workers=1, recorder=serial_rec)
        parallel = SweepEngine(workers=2, recorder=parallel_rec)
        for a, b in zip(serial.run_specs(specs), parallel.run_specs(specs)):
            assert a.total_energy_j == b.total_energy_j
        assert parallel.last_stats.workers_used == 2
        workers = {
            e["worker"] for e in parallel_rec.events
            if e["kind"] == "engine_run"
        }
        assert workers  # pids of pool workers
        assert parallel.metrics.snapshot()["counters"][
            "engine.simulated"
        ] == 2


# ----------------------------------------------------------------------
# Serve-time latency histograms and span-layer parity
# ----------------------------------------------------------------------
class TestLatencyHistograms:
    def test_snapshot_has_per_priority_and_per_workload_latency(self):
        result = run_reference(
            "polca-oversubscribed", recorder=MemoryRecorder()
        )
        histograms = result.observability["histograms"]
        from repro.obs import LATENCY_BUCKETS

        for priority in Priority:
            data = histograms[f"latency.priority.{priority.value}"]
            assert data["bounds"] == list(LATENCY_BUCKETS)
            assert data["count"] == \
                result.per_priority[priority].served
            latencies = result.per_priority[priority].latencies
            assert data["sum"] == pytest.approx(sum(latencies))
            if latencies:
                assert data["min"] == min(latencies)
                assert data["max"] == max(latencies)
        workload_names = {
            name for name, metrics in result.per_workload.items()
            if metrics.served
        }
        for name in workload_names:
            data = histograms[f"latency.workload.{name}"]
            assert data["count"] == result.per_workload[name].served

    def test_latency_histograms_aggregate_across_runs(self):
        first = run_reference("polca-default", recorder=MemoryRecorder())
        second = run_reference(
            "polca-oversubscribed", recorder=MemoryRecorder()
        )
        merged = aggregate_snapshots(
            [first.observability, None, second.observability]
        )
        for priority in Priority:
            name = f"latency.priority.{priority.value}"
            merged_hist = merged["histograms"][name]
            expected = (
                first.observability["histograms"][name]["count"]
                + second.observability["histograms"][name]["count"]
            )
            assert merged_hist["count"] == expected
            assert merged_hist["counts"][-1] + sum(
                merged_hist["counts"][:-1]
            ) == expected

    def test_uninstrumented_run_has_no_histograms(self):
        result = run_reference("polca-default")
        assert result.observability is None


class TestSpanBuilderParity:
    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_span_recording_is_bit_identical_to_bare(self, name):
        from repro.obs import SpanBuilder

        bare = run_reference(name)
        traced = run_reference(name, recorder=SpanBuilder())
        assert_results_bit_identical(bare, traced)

    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_span_recording_matches_plain_recording(self, name):
        from repro.obs import SpanBuilder, TeeRecorder

        plain = run_reference(name, recorder=MemoryRecorder())
        teed = run_reference(
            name, recorder=TeeRecorder([MemoryRecorder(), SpanBuilder()])
        )
        assert_results_bit_identical(plain, teed)
