"""Synthetic GPU counters and the Figure 7 correlation structure."""

import numpy as np
import pytest

from repro.analysis.correlation import correlations_with
from repro.errors import ConfigurationError
from repro.gpu.counters import COUNTER_NAMES, CounterSynthesizer, GpuCounterTrace


@pytest.fixture()
def synthesizer():
    return CounterSynthesizer(seed=7)


class TestSynthesis:
    def test_all_counters_present(self, synthesizer):
        trace = synthesizer.prompt_phase(200)
        assert set(trace.counters) == set(COUNTER_NAMES)

    def test_lengths_consistent(self, synthesizer):
        trace = synthesizer.token_phase(123)
        assert len(trace) == 123

    def test_too_few_samples_rejected(self, synthesizer):
        with pytest.raises(ConfigurationError):
            synthesizer.prompt_phase(1)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            CounterSynthesizer(interval=0.0)

    def test_prompt_power_exceeds_token_power(self, synthesizer):
        prompt = synthesizer.prompt_phase(400)
        token = synthesizer.token_phase(400)
        assert prompt.counters["power"].mean() > token.counters["power"].mean()

    def test_deterministic_for_seed(self):
        a = CounterSynthesizer(seed=3).prompt_phase(100)
        b = CounterSynthesizer(seed=3).prompt_phase(100)
        assert np.allclose(a.counters["power"], b.counters["power"])


class TestFigure7Structure:
    def test_prompt_phase_correlations(self, synthesizer):
        trace = synthesizer.prompt_phase(800)
        against_power = correlations_with("power", trace.counters)
        assert against_power["sm_activity"] > 0.7
        assert against_power["tensor_core_activity"] > 0.7
        assert against_power["gpu_utilization"] > 0.7
        assert against_power["memory_utilization"] < -0.5
        assert abs(against_power["pcie_transmit"]) < 0.3

    def test_token_phase_uncorrelated(self, synthesizer):
        trace = synthesizer.token_phase(800)
        against_power = correlations_with("power", trace.counters)
        assert all(abs(value) < 0.25 for value in against_power.values())


class TestLagAndAlignment:
    def test_lag_delays_counter(self, synthesizer):
        trace = synthesizer.prompt_phase(200)
        lagged = trace.lagged("sm_activity", 5)
        assert np.allclose(
            lagged.counters["sm_activity"][5:],
            trace.counters["sm_activity"][:-5],
        )

    def test_negative_lag_rejected(self, synthesizer):
        with pytest.raises(ConfigurationError):
            synthesizer.prompt_phase(50).lagged("power", -1)

    def test_unknown_counter_rejected(self, synthesizer):
        trace = synthesizer.prompt_phase(50)
        with pytest.raises(ConfigurationError):
            trace.lagged("nope", 1)
        with pytest.raises(ConfigurationError):
            trace.aligned("nope")

    def test_alignment_recovers_lagged_correlation(self, synthesizer):
        """The Section 3.4 lag-alignment step restores the correlation."""
        trace = synthesizer.prompt_phase(800)
        original = correlations_with("power", trace.counters)[
            "tensor_core_activity"
        ]
        lagged = trace.lagged("tensor_core_activity", 4)
        degraded = correlations_with("power", lagged.counters)[
            "tensor_core_activity"
        ]
        realigned = lagged.aligned("tensor_core_activity")
        recovered = correlations_with("power", realigned.counters)[
            "tensor_core_activity"
        ]
        assert degraded < original
        assert recovered > degraded
        assert recovered == pytest.approx(original, abs=0.1)

    def test_zero_lag_alignment_is_noop(self, synthesizer):
        trace = synthesizer.prompt_phase(300)
        aligned = trace.aligned("sm_activity")
        assert np.allclose(
            aligned.counters["sm_activity"], trace.counters["sm_activity"]
        )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            GpuCounterTrace(
                phase="prompt",
                interval=0.1,
                counters={"a": np.zeros(3), "b": np.zeros(4)},
            )
