"""Control actions and latency-aware actuation."""

import pytest

from repro.control.actions import ActionKind, ControlAction
from repro.control.actuator import (
    Actuator,
    InBandActuator,
    OobActuator,
    UPS_CAPPING_DEADLINE_S,
)
from repro.errors import ConfigurationError


TARGETS = frozenset({"row0/r0/s0", "row0/r0/s1"})


class TestControlAction:
    def test_frequency_lock_requires_value(self):
        action = ControlAction.frequency_lock(TARGETS, 1275.0, "T1")
        assert action.kind is ActionKind.FREQUENCY_LOCK
        assert action.value == 1275.0
        with pytest.raises(ConfigurationError):
            ControlAction(ActionKind.FREQUENCY_LOCK, TARGETS, None)

    def test_brake_takes_no_value(self):
        action = ControlAction.power_brake(TARGETS)
        assert action.value is None
        with pytest.raises(ConfigurationError):
            ControlAction(ActionKind.POWER_BRAKE, TARGETS, 100.0)

    def test_empty_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            ControlAction.power_brake(frozenset())

    def test_negative_value_rejected(self):
        with pytest.raises(ConfigurationError):
            ControlAction.power_cap(TARGETS, -1.0)

    def test_constructors_cover_kinds(self):
        assert ControlAction.frequency_unlock(TARGETS).kind \
            is ActionKind.FREQUENCY_UNLOCK
        assert ControlAction.power_cap(TARGETS, 325.0).kind \
            is ActionKind.POWER_CAP
        assert ControlAction.brake_release(TARGETS).kind \
            is ActionKind.BRAKE_RELEASE


class TestActuator:
    def test_oob_latencies_match_table2(self):
        actuator = OobActuator()
        assert actuator.latency_for(ActionKind.FREQUENCY_LOCK) == 40.0
        assert actuator.latency_for(ActionKind.POWER_BRAKE) == 5.0

    def test_only_brake_meets_ups_deadline_oob(self):
        """Section 6.2: only the brake beats the 10 s UPS deadline OOB."""
        actuator = OobActuator()
        assert actuator.meets_ups_deadline(ActionKind.POWER_BRAKE)
        assert not actuator.meets_ups_deadline(ActionKind.FREQUENCY_LOCK)
        assert not actuator.meets_ups_deadline(ActionKind.POWER_CAP)
        assert UPS_CAPPING_DEADLINE_S == 10.0

    def test_in_band_meets_deadline_everywhere(self):
        actuator = InBandActuator()
        assert all(
            actuator.meets_ups_deadline(kind) for kind in ActionKind
        )

    def test_action_lands_after_latency(self):
        actuator = OobActuator()
        actuator.issue(0.0, ControlAction.frequency_lock(TARGETS, 1275.0))
        assert actuator.effective(39.9) == []
        landed = actuator.effective(40.0)
        assert len(landed) == 1
        assert landed[0].action.value == 1275.0
        assert actuator.in_flight_count == 0

    def test_landing_order_sorted_by_time(self):
        actuator = OobActuator()
        actuator.issue(0.0, ControlAction.power_brake(TARGETS))     # t=5
        actuator.issue(0.0, ControlAction.frequency_lock(TARGETS, 1110.0))
        landed = actuator.effective(100.0)
        assert [a.action.kind for a in landed] == [
            ActionKind.POWER_BRAKE, ActionKind.FREQUENCY_LOCK,
        ]

    def test_next_effective_time(self):
        actuator = OobActuator()
        assert actuator.next_effective_time() is None
        actuator.issue(10.0, ControlAction.power_brake(TARGETS))
        assert actuator.next_effective_time() == 15.0

    def test_silent_failures_recorded_but_not_applied(self):
        actuator = OobActuator(silent_failure_rate=0.5, seed=0)
        for _ in range(100):
            actuator.issue(0.0, ControlAction.frequency_lock(TARGETS, 1110.0))
        failed = sum(1 for a in actuator.history if a.failed_silently)
        assert 20 < failed < 80
        assert actuator.in_flight_count == 100 - failed

    def test_silent_failures_never_land(self):
        """A dropped command stays in history but never becomes effective."""
        actuator = OobActuator(silent_failure_rate=0.5, seed=1)
        for _ in range(50):
            actuator.issue(0.0, ControlAction.power_brake(TARGETS))
        landed = actuator.effective(1000.0)
        failed = sum(1 for a in actuator.history if a.failed_silently)
        assert len(actuator.history) == 50
        assert len(landed) == 50 - failed
        assert not any(a.failed_silently for a in landed)
        assert actuator.in_flight_count == 0

    def test_effective_preserves_issue_order_on_ties(self):
        """Commands landing at the same instant stay in issue order."""
        actuator = OobActuator()
        actuator.issue(0.0, ControlAction.frequency_lock(TARGETS, 1110.0))
        actuator.issue(0.0, ControlAction.frequency_unlock(TARGETS))
        actuator.issue(0.0, ControlAction.frequency_lock(TARGETS, 1305.0))
        landed = actuator.effective(40.0)  # all tie at t=40
        assert [a.action.kind for a in landed] == [
            ActionKind.FREQUENCY_LOCK,
            ActionKind.FREQUENCY_UNLOCK,
            ActionKind.FREQUENCY_LOCK,
        ]
        assert [a.action.value for a in landed] == [1110.0, None, 1305.0]

    def test_next_effective_time_after_partial_drain(self):
        actuator = OobActuator()
        actuator.issue(0.0, ControlAction.power_brake(TARGETS))        # t=5
        actuator.issue(0.0, ControlAction.frequency_lock(TARGETS, 1110.0))
        actuator.issue(20.0, ControlAction.brake_release(TARGETS))     # t=25
        drained = actuator.effective(10.0)  # pops only the brake
        assert [a.action.kind for a in drained] == [ActionKind.POWER_BRAKE]
        assert actuator.next_effective_time() == 25.0
        assert actuator.in_flight_count == 2
        actuator.effective(100.0)
        assert actuator.next_effective_time() is None

    @pytest.mark.parametrize("kind", list(ActionKind))
    def test_meets_ups_deadline_every_kind_oob(self, kind):
        """OOB, exactly the brake pair beats the 10 s UPS deadline."""
        actuator = OobActuator()
        expected = kind in (
            ActionKind.POWER_BRAKE, ActionKind.BRAKE_RELEASE,
        )
        assert actuator.meets_ups_deadline(kind) is expected

    def test_missing_latency_rejected(self):
        actuator = Actuator(latencies={})
        with pytest.raises(ConfigurationError):
            actuator.latency_for(ActionKind.POWER_CAP)

    def test_invalid_failure_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            Actuator(latencies={}, silent_failure_rate=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            Actuator(latencies={ActionKind.POWER_CAP: -1.0})
