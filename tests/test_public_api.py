"""Public API surface: exports resolve and stay importable."""

import importlib

import pytest

import repro


SUBPACKAGES = [
    "repro.analysis",
    "repro.characterization",
    "repro.cluster",
    "repro.control",
    "repro.core",
    "repro.datacenter",
    "repro.exec",
    "repro.faults",
    "repro.gpu",
    "repro.models",
    "repro.obs",
    "repro.server",
    "repro.telemetry",
    "repro.training",
    "repro.workloads",
]


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_root_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__")
    for name in module.__all__:
        assert getattr(module, name, None) is not None, (
            f"{module_name}.{name} in __all__ but missing"
        )


def test_headline_objects_reachable_from_root():
    # A user should be able to run the headline experiment from the root
    # namespace alone.
    assert repro.DualThresholdPolicy
    assert repro.EvaluationHarness
    assert repro.get_model("BLOOM-176B").n_inference_gpus == 8
    assert repro.A100_80GB.tdp_w == 400.0
    assert repro.POLCA_DEFAULTS.t1 == 0.80


def test_docstrings_on_public_api():
    """Every public item carries documentation."""
    for name in repro.__all__:
        if name == "__version__":
            continue
        item = getattr(repro, name)
        assert getattr(item, "__doc__", None), f"{name} lacks a docstring"
