"""Sharded cluster execution (repro.cluster.sharded).

The acceptance bar: ``n_shards=1`` is bit-identical to the serial
:class:`~repro.cluster.simulator.ClusterSimulator` on every fault-free
reference configuration, and the forked-worker driver is bit-identical
to the in-process driver for every shard count.
"""

import pytest

from repro.cluster.sharded import ShardedSimulator
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.policy import DualThresholdPolicy
from repro.errors import ConfigurationError
from repro.exec import (
    PolicySpec,
    RunSpec,
    SweepEngine,
    fork_available,
    result_to_dict,
)
from repro.faults.plan import FaultPlan
from repro.powerfail import ProtectionSpec
from repro.units import hours
from repro.workloads.spec import Priority

from .test_obs import (
    REFERENCE_CONFIGS,
    assert_results_bit_identical,
    make_requests,
)

#: The reference configurations a sharded run accepts (no fault
#: injection, no protection hierarchy).
FAULT_FREE = sorted(
    name
    for name, (overrides, _) in REFERENCE_CONFIGS.items()
    if (
        overrides.get("fault_plan") is None
        or overrides["fault_plan"].is_trivial
    )
    and overrides.get("protection") is None
)


def reference_run(name, duration_s=240.0):
    overrides, policy_cls = REFERENCE_CONFIGS[name]
    config = ClusterConfig(**overrides)
    requests = make_requests(4.0, duration_s, seed=config.seed)
    return config, policy_cls, requests


class TestValidation:
    def test_rejects_fault_plans(self):
        config = ClusterConfig(
            n_base_servers=8, fault_plan=FaultPlan.adversarial()
        )
        with pytest.raises(ConfigurationError):
            ShardedSimulator(config, DualThresholdPolicy())

    def test_trivial_fault_plan_is_fine(self):
        config = ClusterConfig(n_base_servers=8, fault_plan=FaultPlan.none())
        ShardedSimulator(config, DualThresholdPolicy())

    def test_rejects_protection(self):
        config = ClusterConfig(
            n_base_servers=8, protection=ProtectionSpec(servers_per_rack=4)
        )
        with pytest.raises(ConfigurationError):
            ShardedSimulator(config, DualThresholdPolicy())

    def test_rejects_bad_shard_counts(self):
        config = ClusterConfig(n_base_servers=8)
        with pytest.raises(ConfigurationError):
            ShardedSimulator(config, DualThresholdPolicy(), n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedSimulator(config, DualThresholdPolicy(), n_shards=9)

    def test_reference_set_is_nonempty(self):
        # The parity matrix below must actually cover brake and cap
        # activity; an empty set would pass vacuously.
        assert len(FAULT_FREE) >= 4


class TestSingleShardParity:
    """One shard owns everything: the decomposition must be exact."""

    @pytest.mark.parametrize("name", FAULT_FREE)
    def test_bit_identical_to_serial(self, name):
        config, policy_cls, requests = reference_run(name)
        serial = ClusterSimulator(config, policy_cls()).run(requests, 240.0)
        sharded = ShardedSimulator(config, policy_cls(), n_shards=1).run(
            requests, 240.0
        )
        assert_results_bit_identical(serial, sharded)

    def test_covers_brake_and_cap_machinery(self):
        # polca-oversubscribed engages the brake (and issues caps), so
        # the parity above exercises the command broadcast, the version
        # cancel path, and the landing order — not just idle ticks.
        config, policy_cls, requests = reference_run("polca-oversubscribed")
        serial = ClusterSimulator(config, policy_cls()).run(requests, 240.0)
        assert serial.power_brake_events > 0
        assert serial.capping_actions > 0

    def test_parallel_flag_falls_back_for_one_shard(self):
        config, policy_cls, requests = reference_run("polca-default")
        serial = ClusterSimulator(config, policy_cls()).run(requests, 240.0)
        sharded = ShardedSimulator(
            config, policy_cls(), n_shards=1, parallel=True
        ).run(requests, 240.0)
        assert_results_bit_identical(serial, sharded)


class TestMultiShard:
    """n > 1 partitions the row: deterministic, conserved, and the
    forked driver bit-identical to the in-process one."""

    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_deterministic_and_conserved(self, n_shards):
        config, policy_cls, requests = reference_run("polca-oversubscribed")
        first = ShardedSimulator(
            config, policy_cls(), n_shards=n_shards
        ).run(requests, 240.0)
        second = ShardedSimulator(
            config, policy_cls(), n_shards=n_shards
        ).run(requests, 240.0)
        assert result_to_dict(first) == result_to_dict(second)
        offered = {p: 0 for p in Priority}
        for request in requests:
            if request.arrival_time < 240.0:
                offered[request.priority] += 1
        for priority, tier in first.per_priority.items():
            assert tier.served + tier.dropped == offered[priority]

    @pytest.mark.skipif(not fork_available(), reason="requires fork")
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_parallel_matches_in_process(self, n_shards):
        config, policy_cls, requests = reference_run("polca-default")
        local = ShardedSimulator(
            config, policy_cls(), n_shards=n_shards
        ).run(requests, 240.0)
        parallel = ShardedSimulator(
            config, policy_cls(), n_shards=n_shards, parallel=True
        ).run(requests, 240.0)
        assert result_to_dict(local) == result_to_dict(parallel)

    def test_engine_run_sharded_single_shard_shares_cache(self):
        spec = RunSpec(
            ClusterConfig(n_base_servers=10, seed=1, added_fraction=0.3),
            PolicySpec("POLCA"),
            hours(1),
        )
        engine = SweepEngine(workers=1)
        serial = engine.run(spec)
        sharded_engine = SweepEngine(workers=1)
        sharded = sharded_engine.run_sharded(
            spec, n_shards=1, parallel=False
        )
        assert_results_bit_identical(serial, sharded)
        # n_shards=1 is bit-identical, so it fills the plain digest:
        # a later engine.run() is a cache hit, not a re-simulation.
        assert sharded_engine.run(spec) is sharded

    def test_engine_run_sharded_caches_per_shard_count(self):
        spec = RunSpec(
            ClusterConfig(n_base_servers=10, seed=1, added_fraction=0.3),
            PolicySpec("POLCA"),
            hours(1),
        )
        engine = SweepEngine(workers=1)
        first = engine.run_sharded(spec, n_shards=2, parallel=False)
        assert engine.run_sharded(spec, n_shards=2, parallel=False) is first
        assert engine.cache.get(f"{spec.digest()}-shards2") is first
        assert engine.cache.get(spec.digest()) is None

    def test_merged_series_and_counters_present(self):
        config, policy_cls, requests = reference_run("polca-oversubscribed")
        result = ShardedSimulator(config, policy_cls(), n_shards=2).run(
            requests, 240.0
        )
        serial = ClusterSimulator(config, policy_cls()).run(requests, 240.0)
        assert len(result.power_series.values) == \
            len(serial.power_series.values)
        assert result.total_energy_j > 0
        assert result.robustness.time_at_risk_s >= 0.0
        assert result.duration_s == 240.0
