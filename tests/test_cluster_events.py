"""Event queue: ordering, determinism, safety."""

import pytest

from repro.cluster.events import EventQueue
from repro.errors import SimulationError


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, "c")
        queue.push(1.0, "a")
        queue.push(2.0, "b")
        assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        for index in range(10):
            queue.push(5.0, index)
        assert [queue.pop()[1] for _ in range(10)] == list(range(10))

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(1.0, "x")
        assert queue.peek_time() == 1.0
        assert len(queue) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestSafety:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_scheduling_into_past_rejected(self):
        queue = EventQueue()
        queue.push(10.0, "late")
        queue.pop()
        with pytest.raises(SimulationError):
            queue.push(5.0, "too-late")

    def test_scheduling_at_current_time_allowed(self):
        queue = EventQueue()
        queue.push(10.0, "a")
        queue.pop()
        queue.push(10.0, "b")  # same instant is fine
        assert queue.pop() == (10.0, "b")

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, "x")
        assert queue and len(queue) == 1
