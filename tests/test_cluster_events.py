"""Event queue: ordering, determinism, safety."""

import pytest

from repro.cluster.events import EventQueue
from repro.errors import SimulationError


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, "c")
        queue.push(1.0, "a")
        queue.push(2.0, "b")
        assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        for index in range(10):
            queue.push(5.0, index)
        assert [queue.pop()[1] for _ in range(10)] == list(range(10))

    def test_equal_time_never_compares_payloads(self):
        # The heap entry is (time, sequence, payload); the unique
        # sequence makes tuple comparison total before the payload is
        # ever reached. This regression test would raise TypeError on
        # any implementation that lets a tie fall through to the
        # payload — the simulator schedules non-comparable payloads
        # (tuples mixing strings, requests, and None) at equal times
        # constantly (e.g. an arrival, a tick, and a cap landing all
        # at t = 80.0).
        class Opaque:
            __lt__ = None  # even attempting a compare raises

        queue = EventQueue()
        payloads = [
            ("arrival", Opaque(), 3),
            ("tick",),
            ("cap", None, 1380.0, 7),
            ("arrival", Opaque(), 4),
            ("brake_on", 2),
        ]
        for payload in payloads:
            queue.push(80.0, payload)
        # Interleave a pop with further equal-time pushes: heap sift-up
        # and sift-down paths both hit the tie comparison.
        assert queue.pop() == (80.0, payloads[0])
        queue.push(80.0, ("obs", Opaque()))
        popped = [queue.pop()[1] for _ in range(len(queue))]
        assert popped[:4] == payloads[1:]
        assert popped[4][0] == "obs"

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(1.0, "x")
        assert queue.peek_time() == 1.0
        assert len(queue) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestSafety:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_scheduling_into_past_rejected(self):
        queue = EventQueue()
        queue.push(10.0, "late")
        queue.pop()
        with pytest.raises(SimulationError):
            queue.push(5.0, "too-late")

    def test_scheduling_at_current_time_allowed(self):
        queue = EventQueue()
        queue.push(10.0, "a")
        queue.pop()
        queue.push(10.0, "b")  # same instant is fine
        assert queue.pop() == (10.0, "b")

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, "x")
        assert queue and len(queue) == 1
