"""Checkpointed incremental re-simulation (repro.exec.incremental).

The acceptance bar is bit-identical parity: a sweep point that restores
a family checkpoint and replays only its suffix must produce exactly
the result of a straight-through run — on every reference
configuration, under adversarial fault plans, and through powerfail
breaker trips.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.control.emergency import EmergencyConfig
from repro.core.baselines import NoCapPolicy
from repro.core.policy import DualThresholdPolicy, PolcaThresholds
from repro.core.sweeps import EvaluationHarness, threshold_search
from repro.errors import ConfigurationError
from repro.exec import (
    IncrementalExecutor,
    PolicySpec,
    RunCache,
    RunSpec,
    SweepEngine,
    TapePolicy,
    execute_spec,
    family_digest,
    first_divergence,
    result_to_dict,
)
from repro.faults.plan import FaultPlan
from repro.powerfail import ProtectionSpec, TripCurve
from repro.units import hours

from .test_obs import (
    REFERENCE_CONFIGS,
    assert_results_bit_identical,
    make_requests,
)

POLCA_LOW = PolicySpec("POLCA", PolcaThresholds(t1=0.75, t2=0.85))
POLCA_HIGH = PolicySpec("POLCA", PolcaThresholds(t1=0.85, t2=0.95))

#: The policy each reference configuration ran under (as a spec), and a
#: different policy to resume against its tape.
REFERENCE_POLICIES = {
    "polca-default": (PolicySpec("POLCA"), POLCA_LOW),
    "polca-oversubscribed": (PolicySpec("POLCA"), POLCA_HIGH),
    "polca-adversarial": (PolicySpec("POLCA"), POLCA_LOW),
    "nocap-power-scaled": (PolicySpec("No-cap"), PolicySpec("POLCA")),
    "single-thresh-lp-heavy": (
        PolicySpec("1-Thresh-Low-Pri"), PolicySpec("POLCA"),
    ),
    "nocap-stale-telemetry": (
        PolicySpec("No-cap"), PolicySpec("1-Thresh-All"),
    ),
}


def reference_spec(name, policy, duration_s=hours(2)):
    # Two hours, not the 240 s of the recorder tests: the engine path
    # synthesizes its request trace from the production power trace,
    # and the MAPE fit needs a realistic window (an hour misses the 3%
    # tolerance for some of the 8-server seeds).
    overrides, _ = REFERENCE_CONFIGS[name]
    return RunSpec(ClusterConfig(**overrides), policy, duration_s)


def run_tape(config, policy, duration_s=240.0, rate_per_s=4.0):
    """Run ``policy`` under a tape recorder; return (result, tape)."""
    wrapped = TapePolicy(policy)
    requests = make_requests(rate_per_s, duration_s, seed=config.seed)
    result = ClusterSimulator(config, wrapped).run(requests, duration_s)
    return result, list(wrapped.tape)


class TestTapePolicy:
    def test_wrapping_is_transparent(self):
        config = ClusterConfig(n_base_servers=8, seed=1, added_fraction=0.3)
        requests = make_requests(4.0, 240.0, seed=1)
        plain = ClusterSimulator(config, DualThresholdPolicy()).run(
            requests, 240.0
        )
        taped, tape = run_tape(config, DualThresholdPolicy())
        assert_results_bit_identical(plain, taped)
        assert len(tape) > 0
        assert all(r.now <= 240.0 for r in tape)

    def test_forwards_attributes(self):
        wrapped = TapePolicy(DualThresholdPolicy())
        assert wrapped.name == DualThresholdPolicy().name
        assert wrapped.brake_threshold == \
            DualThresholdPolicy().brake_threshold

    def test_reset_clears_tape(self):
        wrapped = TapePolicy(NoCapPolicy())
        wrapped.desired_caps(0.5, 2.0)
        assert wrapped.tape
        wrapped.reset()
        assert wrapped.tape == []


class TestDivergence:
    def test_identical_policy_matches_full_tape(self):
        config = ClusterConfig(n_base_servers=8, seed=1, added_fraction=0.3)
        _, tape = run_tape(config, DualThresholdPolicy())
        assert first_divergence(tape, DualThresholdPolicy()) is None

    def test_different_thresholds_diverge(self):
        config = ClusterConfig(n_base_servers=8, seed=1, added_fraction=0.3)
        _, tape = run_tape(config, DualThresholdPolicy())
        probe = DualThresholdPolicy(PolcaThresholds(t1=0.75, t2=0.85))
        index = first_divergence(tape, probe)
        assert index is not None
        # Everything before the divergent step matched — a fresh probe
        # re-fed the prefix answers identically.
        fresh = DualThresholdPolicy(PolcaThresholds(t1=0.75, t2=0.85))
        assert first_divergence(tape[:index], fresh) is None


class TestFamilyDigest:
    def test_policy_excluded(self):
        a = reference_spec("polca-default", PolicySpec("POLCA"))
        b = reference_spec("polca-default", PolicySpec("No-cap"))
        assert a.digest() != b.digest()
        assert family_digest(a) == family_digest(b)

    def test_config_and_duration_included(self):
        a = reference_spec("polca-default", PolicySpec("POLCA"))
        b = reference_spec("polca-oversubscribed", PolicySpec("POLCA"))
        c = reference_spec("polca-default", PolicySpec("POLCA"), 480.0)
        assert family_digest(a) != family_digest(b)
        assert family_digest(a) != family_digest(c)

    def test_epoch_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            IncrementalExecutor(RunCache(), checkpoint_epoch_s=0.0)


class TestIncrementalParity:
    """Base + resumed runs bit-identical on all 6 reference configs."""

    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_reference_config(self, name):
        base_policy, variant_policy = REFERENCE_POLICIES[name]
        base_spec = reference_spec(name, base_policy)
        variant_spec = reference_spec(name, variant_policy)
        executor = IncrementalExecutor(RunCache(), checkpoint_epoch_s=300.0)

        base = executor.execute(base_spec)
        executor.cache.put(base_spec.digest(), base)
        assert executor.stats.base_runs == 1
        assert_results_bit_identical(base, execute_spec(base_spec))

        variant = executor.execute(variant_spec)
        assert_results_bit_identical(variant, execute_spec(variant_spec))
        assert (
            executor.stats.resumed_runs
            + executor.stats.reused_results
            + executor.stats.cold_runs
        ) == 1

    def test_full_tape_match_reuses_base_result(self):
        spec = reference_spec("polca-default", PolicySpec("POLCA"))
        executor = IncrementalExecutor(RunCache(), checkpoint_epoch_s=300.0)
        base = executor.execute(spec)
        executor.cache.put(spec.digest(), base)
        again = executor.execute(
            reference_spec("polca-default", PolicySpec("POLCA"))
        )
        assert again is base
        assert executor.stats.reused_results == 1

    def test_evicted_checkpoints_degrade_to_cold_run(self):
        base_spec = reference_spec("polca-default", PolicySpec("No-cap"))
        variant_spec = reference_spec("polca-default", PolicySpec("POLCA"))
        executor = IncrementalExecutor(RunCache(), checkpoint_epoch_s=300.0)
        executor.execute(base_spec)
        for key in [k for k in executor.cache._blobs if "-ckpt-" in k]:
            del executor.cache._blobs[key]
        variant = executor.execute(variant_spec)
        assert executor.stats.cold_runs == 1
        assert_results_bit_identical(variant, execute_spec(variant_spec))


def tripping_config(seed=0, adversarial=False):
    """30% oversubscribed behind an undersized row breaker: sustained
    load trips it (and recovery re-energizes servers) inside 240 s."""
    return ClusterConfig(
        n_base_servers=4, added_fraction=0.5, seed=seed,
        fault_plan=FaultPlan.adversarial() if adversarial else None,
        protection=ProtectionSpec(
            servers_per_rack=2,
            row_headroom=0.55,
            rack_headroom=1.02,
            curve=TripCurve(tau_trip_s=5.0, tau_cool_s=60.0),
            cooldown_s=20.0,
            restore_stagger_s=2.0,
            emergency=EmergencyConfig(enabled=False),
        ),
    )


class TestCheckpointRestoreProperty:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        epoch=st.sampled_from([30.0, 60.0, 70.0, 110.0]),
        adversarial=st.booleans(),
    )
    def test_restore_at_every_epoch_matches_straight_through(
        self, seed, epoch, adversarial
    ):
        """Restore at epoch k + replay == straight-through, including
        under adversarial faults and powerfail breaker trips."""
        duration = 240.0
        config = tripping_config(seed=seed, adversarial=adversarial)
        requests = make_requests(4.0, duration, seed=seed)

        straight = ClusterSimulator(config, DualThresholdPolicy()).run(
            requests, duration
        )
        expected = result_to_dict(straight)

        blobs = []
        simulator = ClusterSimulator(config, DualThresholdPolicy())
        core = simulator.start(requests, duration)
        core.run_all(
            epoch, lambda when, c: blobs.append((when, pickle.dumps(c)))
        )
        assert_results_bit_identical(core.finalize(), straight)
        assert blobs

        for when, blob in blobs:
            restored = pickle.loads(blob)
            restored.run_all()
            resumed = restored.finalize()
            assert result_to_dict(resumed) == expected, (
                f"resume at t={when} diverged"
            )


class TestEngineIntegration:
    def family(self, harness):
        return [
            harness.spec(PolicySpec("No-cap"), added_fraction=0.3),
            harness.spec(PolicySpec("POLCA"), added_fraction=0.3),
            harness.spec(POLCA_LOW, added_fraction=0.3),
        ]

    def test_incremental_engine_matches_plain(self):
        plain = EvaluationHarness(
            n_base_servers=10, duration_s=hours(1), seed=1
        )
        incremental = EvaluationHarness(
            n_base_servers=10, duration_s=hours(1), seed=1,
            incremental=True, checkpoint_epoch_s=60.0,
        )
        expected = SweepEngine(workers=1, cache=plain.cache).run_specs(
            self.family(plain)
        )
        engine = incremental.engine()
        got = engine.run_specs(self.family(incremental))
        for a, b in zip(got, expected):
            assert result_to_dict(a) == result_to_dict(b)
        stats = engine.last_stats
        assert stats.incremental_resumed + stats.incremental_reused >= 1
        # Warm re-run: everything answered from the result cache.
        again = engine.run_specs(self.family(incremental))
        assert engine.last_stats.simulated == 0
        assert [id(r) for r in again] == [id(r) for r in got]

    def test_threshold_search_incremental_parity(self):
        combos = (
            ("80-89", PolcaThresholds(t1=0.80, t2=0.89)),
            ("85-95", PolcaThresholds(t1=0.85, t2=0.95)),
        )
        plain = EvaluationHarness(
            n_base_servers=10, duration_s=hours(1), seed=1
        )
        incremental = EvaluationHarness(
            n_base_servers=10, duration_s=hours(1), seed=1,
            incremental=True, checkpoint_epoch_s=300.0,
        )
        expected = threshold_search(plain, combos, [0.3])
        got = threshold_search(incremental, combos, [0.3])
        assert got == expected
