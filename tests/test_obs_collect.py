"""Distributed trace collection (repro.obs.collect).

The acceptance bar, mirroring the sharded simulator's own: a recorded
``n_shards=1`` run merges to the byte-identical serial trace, the
forked-worker spool merges byte-identically to the in-process one for
every shard count, engine-collected segments (serial, pool, sharded,
incremental) equal direct recordings, a resumed incremental run records
the same stream as a cold run, and sampling keeps a deterministic exact
subsequence with a census that accounts for every dropped event.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.sharded import ShardedSimulator
from repro.cluster.simulator import ClusterSimulator
from repro.errors import ConfigurationError
from repro.exec import (
    PolicySpec,
    RunSpec,
    SweepEngine,
    execute_spec,
    fork_available,
)
from repro.exec.cache import RunCache
from repro.exec.incremental import IncrementalExecutor
from repro.obs import (
    PARENT_SHARD,
    MemoryRecorder,
    RollupRecorder,
    SamplingRecorder,
    SuppressKindsRecorder,
    TraceCollector,
    cross_check,
    hash_fraction,
    merge_segments,
    shard_suppressed_kinds,
)
from repro.units import hours

from .test_cluster_sharded import FAULT_FREE, reference_run
from .test_exec_incremental import REFERENCE_POLICIES, reference_spec
from .test_obs import assert_results_bit_identical

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires fork start method"
)


def lines(events):
    """The byte-comparison canonical form of an event stream."""
    return [json.dumps(event, sort_keys=True) for event in events]


def serial_trace(name, duration_s=240.0):
    config, policy_cls, requests = reference_run(name, duration_s)
    recorder = MemoryRecorder()
    result = ClusterSimulator(
        config, policy_cls(), recorder=recorder
    ).run(requests, duration_s)
    return result, recorder.events


def sharded_trace(name, n_shards, parallel=False, duration_s=240.0):
    config, policy_cls, requests = reference_run(name, duration_s)
    recorder = MemoryRecorder()
    result = ShardedSimulator(
        config, policy_cls(), n_shards=n_shards, parallel=parallel,
        recorder=recorder,
    ).run(requests, duration_s)
    return result, recorder.events


# ----------------------------------------------------------------------
# Merge and suppression units
# ----------------------------------------------------------------------
class TestMergeSegments:
    def test_orders_by_time_then_shard_then_seq(self):
        merged = merge_segments({
            1: [{"t": 5.0, "kind": "b"}, {"t": 5.0, "kind": "c"}],
            0: [{"t": 5.0, "kind": "a"}, {"t": 9.0, "kind": "z"}],
            PARENT_SHARD: [{"t": 7.0, "kind": "p"}],
        })
        assert [e["kind"] for e in merged] == ["a", "b", "c", "p", "z"]

    def test_events_without_t_sort_first(self):
        merged = merge_segments({
            0: [{"t": 1.0, "kind": "late"}],
            PARENT_SHARD: [{"kind": "meta"}],
        })
        assert [e["kind"] for e in merged] == ["meta", "late"]

    def test_merge_is_stable_within_a_segment(self):
        events = [{"t": 2.0, "kind": "x", "seq": i} for i in range(20)]
        merged = merge_segments({0: events})
        assert merged == events

    def test_empty_segments_merge_to_nothing(self):
        assert merge_segments({}) == []
        assert merge_segments({0: [], 1: []}) == []


class TestSuppression:
    def test_parent_drops_only_broadcast_landings(self):
        assert shard_suppressed_kinds(PARENT_SHARD) == \
            frozenset({"cap_land", "brake_land"})

    def test_shard_zero_keeps_landings(self):
        assert shard_suppressed_kinds(0) == frozenset({"run_meta"})

    def test_other_shards_drop_landings_and_meta(self):
        assert shard_suppressed_kinds(3) == \
            frozenset({"run_meta", "cap_land", "brake_land"})

    def test_recorder_counts_what_it_drops(self):
        inner = MemoryRecorder()
        recorder = SuppressKindsRecorder(inner, {"noise"})
        recorder.emit({"kind": "noise", "t": 1.0})
        recorder.emit({"kind": "signal", "t": 2.0})
        recorder.emit({"kind": "noise", "t": 3.0})
        assert [e["kind"] for e in inner.events] == ["signal"]
        assert recorder.suppressed_by_kind == {"noise": 2}

    def test_delegates_lifecycle_to_inner(self):
        inner = MemoryRecorder(max_events=1)
        recorder = SuppressKindsRecorder(inner, ())
        recorder.emit({"kind": "a"})
        recorder.emit({"kind": "b"})
        recorder.finalize(10.0)
        recorder.close()
        snapshot = recorder.observability_snapshot()
        assert snapshot["trace_buffer"]["dropped_events"] == 1


# ----------------------------------------------------------------------
# Sharded recording parity
# ----------------------------------------------------------------------
class TestShardedTraceParity:
    @pytest.mark.parametrize("name", FAULT_FREE)
    def test_single_shard_merges_to_the_serial_trace(self, name):
        serial_result, serial_events = serial_trace(name)
        sharded_result, sharded_events = sharded_trace(name, n_shards=1)
        assert lines(sharded_events) == lines(serial_events)
        assert_results_bit_identical(serial_result, sharded_result)

    @pytest.mark.parametrize("name", FAULT_FREE)
    def test_recording_does_not_perturb_the_result(self, name):
        config, policy_cls, requests = reference_run(name)
        bare = ShardedSimulator(config, policy_cls(), n_shards=2).run(
            requests, 240.0
        )
        recorded, _ = sharded_trace(name, n_shards=2)
        assert_results_bit_identical(bare, recorded)

    @needs_fork
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_forked_spool_matches_in_process(self, n_shards):
        _, local = sharded_trace(
            "polca-oversubscribed", n_shards, parallel=False
        )
        _, piped = sharded_trace(
            "polca-oversubscribed", n_shards, parallel=True
        )
        assert lines(piped) == lines(local)

    def test_merged_trace_cross_checks_clean(self):
        result, events = sharded_trace("polca-oversubscribed", n_shards=2)
        report = cross_check(events, result)
        report.require_ok()

    def test_merged_observability_counters_are_exact(self):
        result, events = sharded_trace("polca-oversubscribed", n_shards=2)
        counters = result.observability["counters"]
        served = sum(1 for e in events if e.get("kind") == "serve")
        assert counters["requests.served"] == served
        assert counters["brake.engagements"] == result.power_brake_events
        # ticks are counted by parent and shards alike; the merge must
        # keep the parent's single copy, not the sum.
        assert counters["telemetry.ticks"] == \
            sum(1 for e in events if e.get("kind") == "control")

    def test_parity_covers_brake_and_cap_traffic(self):
        result, events = sharded_trace("polca-oversubscribed", n_shards=2)
        kinds = {e.get("kind") for e in events}
        assert result.power_brake_events > 0
        assert {"brake_land", "cap_land", "cap_issue"} <= kinds


# ----------------------------------------------------------------------
# Incremental recording parity
# ----------------------------------------------------------------------
class TestIncrementalRecording:
    def cold_trace(self, spec):
        recorder = MemoryRecorder()
        result = execute_spec(spec, recorder=recorder)
        return result, recorder.events

    def test_resumed_run_records_the_cold_trace(self):
        base_policy, variant_policy = \
            REFERENCE_POLICIES["polca-oversubscribed"]
        base_spec = reference_spec("polca-oversubscribed", base_policy)
        variant_spec = reference_spec(
            "polca-oversubscribed", variant_policy
        )
        executor = IncrementalExecutor(RunCache(), checkpoint_epoch_s=300.0)
        base_recorder = MemoryRecorder()
        executor.execute(base_spec, recorder=base_recorder)
        recorder = MemoryRecorder()
        resumed = executor.execute(variant_spec, recorder=recorder)
        assert executor.stats.resumed_runs == 1
        cold_result, cold_events = self.cold_trace(variant_spec)
        assert lines(recorder.events) == lines(cold_events)
        assert_results_bit_identical(resumed, cold_result)
        assert resumed.observability == cold_result.observability

    def test_base_run_records_the_cold_trace(self):
        spec = reference_spec("polca-default", PolicySpec("POLCA"))
        executor = IncrementalExecutor(RunCache(), checkpoint_epoch_s=300.0)
        recorder = MemoryRecorder()
        executor.execute(spec, recorder=recorder)
        _, cold_events = self.cold_trace(spec)
        assert lines(recorder.events) == lines(cold_events)

    def test_full_tape_reuse_replays_the_family_trace(self):
        from repro.core.policy import PolcaThresholds

        base_spec = reference_spec("polca-default", PolicySpec("POLCA"))
        # A distinct digest whose controller never decides differently
        # on this trace: the whole family tape matches, so the result
        # is reused and the trace must replay from the tape.
        variant_spec = reference_spec(
            "polca-default",
            PolicySpec("POLCA", PolcaThresholds(t2=0.90)),
        )
        executor = IncrementalExecutor(RunCache(), checkpoint_epoch_s=300.0)
        base = executor.execute(base_spec, recorder=MemoryRecorder())
        executor.cache.put(base_spec.digest(), base)
        recorder = MemoryRecorder()
        executor.execute(variant_spec, recorder=recorder)
        assert executor.stats.reused_results == 1
        _, cold_events = self.cold_trace(base_spec)
        assert lines(recorder.events) == lines(cold_events)

    def test_unrecorded_family_is_rerecorded_for_a_recorded_variant(self):
        # The family tape was laid down without a recorder, so it holds
        # no events; asking for a recorded variant must not silently
        # return an empty trace.
        spec = reference_spec("polca-default", PolicySpec("POLCA"))
        executor = IncrementalExecutor(RunCache(), checkpoint_epoch_s=300.0)
        executor.execute(spec)
        recorder = MemoryRecorder()
        executor.execute(spec, recorder=recorder)
        _, cold_events = self.cold_trace(spec)
        assert lines(recorder.events) == lines(cold_events)


# ----------------------------------------------------------------------
# Overhead-bounded recording: sampling + rollups
# ----------------------------------------------------------------------
EVENT_KINDS = ("serve", "control", "phase_start", "drop")

event_strategy = st.fixed_dictionaries({
    "kind": st.sampled_from(EVENT_KINDS),
    "t": st.floats(
        min_value=0.0, max_value=1e4,
        allow_nan=False, allow_infinity=False,
    ),
    "value": st.integers(min_value=0, max_value=10),
})


class TestSampling:
    @settings(max_examples=50, deadline=None)
    @given(
        events=st.lists(event_strategy, max_size=60),
        rates=st.dictionaries(
            st.sampled_from(EVENT_KINDS),
            st.floats(min_value=0.0, max_value=1.0),
            max_size=len(EVENT_KINDS),
        ),
    )
    def test_sampled_is_a_subsequence_with_exact_census(
        self, events, rates
    ):
        inner = MemoryRecorder()
        recorder = SamplingRecorder(inner, rates=rates)
        for event in events:
            recorder.emit(event)
        sampled = lines(inner.events)
        full = lines(events)
        # exact subsequence: every kept line appears in order
        iterator = iter(full)
        assert all(line in iterator for line in sampled)
        assert recorder.kept == len(inner.events)
        assert recorder.kept + recorder.dropped == len(events)
        census = recorder.observability_snapshot()["trace_sampling"]
        assert census["kept"] == recorder.kept
        assert census["dropped"] == sum(
            census["dropped_by_kind"].values()
        )

    def test_keep_decision_is_a_pure_function_of_the_event(self):
        events = [
            {"kind": "serve", "t": float(i), "value": i}
            for i in range(200)
        ]
        first = MemoryRecorder()
        a = SamplingRecorder(first, {"serve": 0.5})
        for event in events:
            a.emit(event)
        second = MemoryRecorder()
        b = SamplingRecorder(second, {"serve": 0.5})
        for event in reversed(events):
            b.emit(event)
        assert sorted(lines(first.events)) == sorted(lines(second.events))
        assert 0 < len(first.events) < len(events)

    def test_rate_one_keeps_everything(self):
        inner = MemoryRecorder()
        recorder = SamplingRecorder(inner)
        for i in range(50):
            recorder.emit({"kind": "serve", "t": float(i)})
        assert len(inner.events) == 50
        assert recorder.dropped == 0

    def test_rate_zero_drops_everything_counted(self):
        inner = MemoryRecorder()
        recorder = SamplingRecorder(inner, default_rate=0.0)
        for i in range(50):
            recorder.emit({"kind": "serve", "t": float(i)})
        assert inner.events == []
        assert recorder.dropped_by_kind == {"serve": 50}

    def test_hash_fraction_is_deterministic_and_bounded(self):
        event = {"kind": "serve", "t": 1.25, "server": "s3"}
        assert hash_fraction(event) == hash_fraction(dict(event))
        assert 0.0 <= hash_fraction(event) < 1.0

    def test_invalid_rates_are_rejected(self):
        with pytest.raises(ConfigurationError):
            SamplingRecorder(MemoryRecorder(), {"serve": 1.5})
        with pytest.raises(ConfigurationError):
            SamplingRecorder(MemoryRecorder(), default_rate=-0.1)


class TestRollup:
    def test_folds_kind_into_epoch_aggregates(self):
        inner = MemoryRecorder()
        recorder = RollupRecorder(inner, ("serve",), epoch_s=60.0)
        recorder.emit({"kind": "serve", "t": 10.0, "latency_s": 2.0})
        recorder.emit({"kind": "serve", "t": 50.0, "latency_s": 4.0})
        recorder.emit({"kind": "serve", "t": 70.0, "latency_s": 6.0})
        recorder.finalize(120.0)
        rollups = [e for e in inner.events if e["kind"] == "rollup"]
        assert [r["t"] for r in rollups] == [0.0, 60.0]
        first = rollups[0]
        assert first["source"] == "serve" and first["n"] == 2
        assert first["fields"]["latency_s"] == {
            "sum": 6.0, "min": 2.0, "max": 4.0,
        }

    def test_other_kinds_pass_through_in_order(self):
        inner = MemoryRecorder()
        recorder = RollupRecorder(inner, ("serve",), epoch_s=60.0)
        recorder.emit({"kind": "serve", "t": 10.0})
        recorder.emit({"kind": "control", "t": 30.0})
        recorder.emit({"kind": "control", "t": 70.0})
        recorder.finalize(120.0)
        kinds = [e["kind"] for e in inner.events]
        assert kinds == ["control", "rollup", "control"]

    def test_census_counts_everything_rolled(self):
        inner = MemoryRecorder()
        recorder = RollupRecorder(inner, ("serve", "drop"), epoch_s=30.0)
        for i in range(7):
            recorder.emit({"kind": "serve", "t": float(i)})
        recorder.emit({"kind": "drop", "t": 3.0})
        recorder.finalize(60.0)
        census = recorder.observability_snapshot()["trace_rollup"]
        assert census["rolled_up"] == 8
        assert census["by_kind"] == {"drop": 1, "serve": 7}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RollupRecorder(MemoryRecorder(), ())
        with pytest.raises(ConfigurationError):
            RollupRecorder(MemoryRecorder(), ("serve",), epoch_s=0.0)


# ----------------------------------------------------------------------
# Engine-level collection
# ----------------------------------------------------------------------
def tiny_spec(seed, policy="POLCA"):
    from repro.cluster.simulator import ClusterConfig

    return RunSpec(
        config=ClusterConfig(n_base_servers=4, seed=seed),
        policy=PolicySpec(policy),
        duration_s=hours(1),
    )


class TestEngineCollection:
    SPECS = staticmethod(
        lambda: [tiny_spec(11), tiny_spec(12, "No-cap")]
    )

    def reference_traces(self, specs):
        out = {}
        for spec in specs:
            recorder = MemoryRecorder()
            execute_spec(spec, recorder=recorder)
            out[spec.digest()] = lines(recorder.events)
        return out

    def test_serial_segments_equal_direct_recordings(self, tmp_path):
        specs = self.SPECS()
        collector = TraceCollector(tmp_path / "traces")
        engine = SweepEngine(workers=1, collector=collector)
        engine.run_specs(specs)
        for digest, expected in self.reference_traces(specs).items():
            assert lines(collector.events(digest)) == expected
        assert collector.digests() == sorted(
            spec.digest() for spec in specs
        )

    @needs_fork
    def test_pool_segments_equal_direct_recordings(self, tmp_path):
        specs = self.SPECS()
        collector = TraceCollector(tmp_path / "traces")
        engine = SweepEngine(workers=2, collector=collector)
        engine.run_specs(specs)
        for digest, expected in self.reference_traces(specs).items():
            assert lines(collector.events(digest)) == expected

    def test_incremental_segments_equal_direct_recordings(self, tmp_path):
        specs = self.SPECS()
        collector = TraceCollector(tmp_path / "traces")
        engine = SweepEngine(
            workers=1, incremental=True, collector=collector
        )
        engine.run_specs(specs)
        for digest, expected in self.reference_traces(specs).items():
            assert lines(collector.events(digest)) == expected

    def test_cache_hit_without_segment_resimulates(self, tmp_path):
        specs = self.SPECS()
        cache = RunCache()
        SweepEngine(workers=1, cache=cache).run_specs(specs)
        collector = TraceCollector(tmp_path / "traces")
        engine = SweepEngine(workers=1, cache=cache, collector=collector)
        engine.run_specs(specs)
        assert engine.last_stats.simulated == len(specs)
        assert engine.last_stats.cache_hits == 0
        for spec in specs:
            assert collector.has(spec.digest())
        # with segments spooled, the memo hit is honored again
        engine.run_specs(specs)
        assert engine.last_stats.cache_hits == len(specs)
        assert engine.last_stats.simulated == 0

    def test_collection_does_not_perturb_results(self, tmp_path):
        specs = self.SPECS()
        bare = SweepEngine(workers=1).run_specs(specs)
        collected = SweepEngine(
            workers=1, collector=TraceCollector(tmp_path / "traces")
        ).run_specs(specs)
        for a, b in zip(bare, collected):
            assert_results_bit_identical(a, b)

    def test_run_sharded_spools_under_qualified_digest(self, tmp_path):
        spec = tiny_spec(13)
        collector = TraceCollector(tmp_path / "traces")
        engine = SweepEngine(workers=1, collector=collector)
        engine.run_sharded(spec, n_shards=2, parallel=False)
        assert collector.has(f"{spec.digest()}-shards2")
        engine.run_sharded(spec, n_shards=1)
        expected = self.reference_traces([spec])[spec.digest()]
        assert lines(collector.events(spec.digest())) == expected

    def test_sampled_collection_applies_in_every_segment(self, tmp_path):
        specs = self.SPECS()
        collector = TraceCollector(
            tmp_path / "traces", sample={"serve": 0.25}
        )
        SweepEngine(workers=1, collector=collector).run_specs(specs)
        for spec in specs:
            recorder = MemoryRecorder()
            execute_spec(spec, recorder=recorder)
            expected = [
                event for event in recorder.events
                if event.get("kind") != "serve"
                or hash_fraction(event) < 0.25
            ]
            assert lines(collector.events(spec.digest())) == \
                lines(expected)

    def test_missing_segment_raises(self, tmp_path):
        collector = TraceCollector(tmp_path / "traces")
        with pytest.raises(ConfigurationError):
            collector.events("no-such-digest")

    def test_collector_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TraceCollector(tmp_path, kinds=())
        with pytest.raises(ConfigurationError):
            TraceCollector(tmp_path, sample={"serve": 2.0})
        with pytest.raises(ConfigurationError):
            TraceCollector(tmp_path, rollup_epoch_s=0.0)


class TestHarnessCollection:
    def test_harness_threads_the_collector_into_its_engine(
        self, tmp_path
    ):
        from repro.core.sweeps import EvaluationHarness

        collector = TraceCollector(tmp_path / "traces")
        harness = EvaluationHarness(
            n_base_servers=10, duration_s=hours(2), seed=1,
            collector=collector,
        )
        engine = harness.engine()
        assert engine.collector is collector
        spec = harness.spec(PolicySpec("No-cap"))
        engine.run_specs([spec])
        assert collector.has(spec.digest())
