"""The experiment ledger: cross-run journaling with zero perturbation.

The contract mirrors the recorder parity guarantee one layer up: a
``SweepEngine`` handed an :class:`~repro.obs.ledger.ExperimentLedger`
must produce results bit-identical to an unledgered engine on the six
reference configurations, while journaling exactly one entry per unique
spec — executed, recalled from cache, retried, or quarantined — with
the provenance flags telling those apart.

The reference configurations run at 1800 s here (not the 240 s the
recorder-parity tests use) because the engine path synthesizes its
request trace from the utilization model, and the synthetic generator's
MAPE acceptance gate needs the longer window at this cluster size.
"""

import json
import math
import os

import pytest

from repro.cluster.simulator import ClusterConfig
from repro.core.baselines import NoCapPolicy, SingleThresholdLowPriPolicy
from repro.core.policy import DualThresholdPolicy, PolcaThresholds
from repro.errors import ConfigurationError
from repro.exec import PolicySpec, RunSpec, SweepEngine
from repro.exec.engine import fork_available
from repro.obs import (
    LEDGER_SCHEMA_VERSION,
    ExperimentLedger,
    MemoryRecorder,
    environment_stamp,
    headline_metrics,
    read_ledger,
)
from tests.test_obs import (
    REFERENCE_CONFIGS,
    assert_results_bit_identical,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires fork start method"
)

#: A seed no other test uses: the injected worker failure keys off it.
DOOMED_SEED = 424_243

#: PolicySpec names for the reference configurations' policy classes.
POLICY_NAMES = {
    DualThresholdPolicy: "POLCA",
    NoCapPolicy: "No-cap",
    SingleThresholdLowPriPolicy: "1-Thresh-Low-Pri",
}

#: Minimum duration at which the synthetic-trace MAPE gate accepts all
#: six reference configurations (240-600 s windows fail it for some).
REFERENCE_DURATION_S = 1800.0


def reference_spec(name, duration_s=REFERENCE_DURATION_S):
    overrides, policy_factory = REFERENCE_CONFIGS[name]
    return RunSpec(
        config=ClusterConfig(**overrides),
        policy=PolicySpec(POLICY_NAMES[policy_factory]),
        duration_s=duration_s,
    )


def tiny_spec(seed=1, policy=None):
    return RunSpec(
        config=ClusterConfig(n_base_servers=4, seed=seed),
        policy=policy or PolicySpec("No-cap"),
        duration_s=3600.0,
    )


# ----------------------------------------------------------------------
# Parity: a ledgered engine run is bit-identical to an unledgered one
# ----------------------------------------------------------------------
class TestLedgerParity:
    @pytest.mark.parametrize("name", sorted(REFERENCE_CONFIGS))
    def test_ledger_on_off_bit_identical(self, name):
        spec = reference_spec(name)
        bare = SweepEngine(workers=1).run(spec)
        ledger = ExperimentLedger()
        journaled = SweepEngine(workers=1, ledger=ledger).run(spec)
        assert_results_bit_identical(bare, journaled)
        assert len(ledger) == 1
        assert ledger.entries[0]["digest"] == spec.digest()


# ----------------------------------------------------------------------
# Entry content
# ----------------------------------------------------------------------
class TestLedgerEntries:
    def test_executed_entry_structure(self):
        ledger = ExperimentLedger()
        spec = tiny_spec(seed=11)
        result = SweepEngine(workers=1, ledger=ledger).run(spec)
        (entry,) = ledger.entries
        assert entry["schema"] == LEDGER_SCHEMA_VERSION
        assert entry["kind"] == "run"
        assert entry["digest"] == spec.digest()
        assert entry["policy"] == "No-cap"
        assert entry["thresholds"] is None
        assert entry["seed"] == 11
        assert entry["n_servers"] == spec.config.n_servers
        assert entry["duration_s"] == 3600.0
        assert entry["wall_s"] > 0.0
        assert entry["worker"] == os.getpid()
        assert entry["provenance"] == {
            "cache_hit": False,
            "incremental_resumed": False,
            "incremental_reused": False,
            "retries": 0,
            "quarantined": False,
            "shards": 1,
        }
        # Per-run rusage: CPU deltas are non-negative, RSS is the
        # process high-water mark in whatever unit the kernel used.
        rusage = entry["rusage"]
        assert set(rusage) == {"max_rss_kb", "cpu_user_s", "cpu_system_s"}
        assert rusage["cpu_user_s"] >= 0.0
        assert rusage["max_rss_kb"] > 0.0
        assert entry["metrics"] == headline_metrics(result)
        assert entry["env"] == environment_stamp()
        assert json.dumps(entry)  # every field JSON-serializable

    def test_thresholds_recorded_for_polca(self):
        ledger = ExperimentLedger()
        spec = tiny_spec(policy=PolicySpec(
            "POLCA", PolcaThresholds(t1=0.78, t2=0.88)
        ))
        SweepEngine(workers=1, ledger=ledger).run(spec)
        thresholds = ledger.entries[0]["thresholds"]
        assert thresholds["t1"] == 0.78
        assert thresholds["t2"] == 0.88

    def test_family_and_trace_digests_are_stable(self):
        """Same config family, different policy: family and trace
        digests agree, content digests differ."""
        ledger = ExperimentLedger()
        engine = SweepEngine(workers=1, ledger=ledger)
        engine.run(tiny_spec(policy=PolicySpec("No-cap")))
        engine.run(tiny_spec(policy=PolicySpec("POLCA")))
        a, b = ledger.entries
        assert a["digest"] != b["digest"]
        assert a["family"] == b["family"]
        assert a["trace"] == b["trace"]

    def test_cache_hit_entry(self):
        ledger = ExperimentLedger()
        engine = SweepEngine(workers=1, ledger=ledger)
        spec = tiny_spec()
        engine.run(spec)
        engine.run(spec)
        first, second = ledger.entries
        assert first["provenance"]["cache_hit"] is False
        assert second["provenance"]["cache_hit"] is True
        assert second["wall_s"] == 0.0
        assert second["metrics"] == first["metrics"]

    def test_duplicate_specs_in_batch_share_one_entry(self):
        ledger = ExperimentLedger()
        engine = SweepEngine(workers=1, ledger=ledger)
        a, b = tiny_spec(seed=1), tiny_spec(seed=2)
        engine.run_specs([a, b, a, a])
        assert [e["digest"] for e in ledger.entries] == \
            [a.digest(), b.digest()]

    def test_incremental_provenance_flags(self):
        """A resumed (or tape-reused) family run carries its flag."""
        from repro.core.sweeps import EvaluationHarness
        from repro.units import hours

        ledger = ExperimentLedger()
        harness = EvaluationHarness(
            n_base_servers=10, duration_s=hours(1), seed=1,
            incremental=True, checkpoint_epoch_s=60.0, ledger=ledger,
        )
        engine = harness.engine()
        engine.run_specs([
            harness.spec(PolicySpec("No-cap"), added_fraction=0.3),
            harness.spec(PolicySpec("POLCA"), added_fraction=0.3),
        ])
        assert engine.last_stats.incremental_resumed + \
            engine.last_stats.incremental_reused >= 1
        base, follower = ledger.entries
        assert base["provenance"]["incremental_resumed"] is False
        prov = follower["provenance"]
        assert prov["incremental_resumed"] or prov["incremental_reused"]

    def test_sharded_run_entries(self):
        ledger = ExperimentLedger()
        engine = SweepEngine(workers=1, ledger=ledger)
        spec = tiny_spec()
        engine.run_sharded(spec, n_shards=2, parallel=False)
        engine.run_sharded(spec, n_shards=2, parallel=False)
        executed, recalled = ledger.entries
        assert executed["provenance"]["shards"] == 2
        assert executed["provenance"]["cache_hit"] is False
        assert executed["rusage"] is not None
        assert recalled["provenance"]["shards"] == 2
        assert recalled["provenance"]["cache_hit"] is True


# ----------------------------------------------------------------------
# Retries and quarantine appear exactly once, flagged
# ----------------------------------------------------------------------
@needs_fork
class TestLedgerWorkerFailures:
    def test_retried_run_appears_once_with_retry_count(
        self, monkeypatch, tmp_path
    ):
        sentinel = tmp_path / "failed-once"
        monkeypatch.setenv("REPRO_EXEC_FAIL_SEED", str(DOOMED_SEED))
        monkeypatch.setenv("REPRO_EXEC_FAIL_ONCE", str(sentinel))
        ledger = ExperimentLedger()
        engine = SweepEngine(workers=2, ledger=ledger)
        specs = [tiny_spec(DOOMED_SEED), tiny_spec(7), tiny_spec(8)]
        engine.run_specs(specs)
        assert sentinel.exists()
        assert engine.last_stats.retried == 1
        by_digest = {e["digest"]: e for e in ledger.entries}
        assert len(ledger.entries) == len(by_digest) == 3
        doomed = by_digest[specs[0].digest()]
        assert doomed["provenance"]["retries"] == 1
        assert doomed["provenance"]["quarantined"] is False
        for spec in specs[1:]:
            assert by_digest[spec.digest()]["provenance"]["retries"] == 0

    def test_quarantined_run_appears_once_flagged(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_FAIL_SEED", str(DOOMED_SEED))
        ledger = ExperimentLedger()
        engine = SweepEngine(workers=2, ledger=ledger, retries=1)
        specs = [tiny_spec(DOOMED_SEED), tiny_spec(7)]
        engine.run_specs(specs)
        assert engine.last_stats.quarantined == 1
        by_digest = {e["digest"]: e for e in ledger.entries}
        assert len(ledger.entries) == len(by_digest) == 2
        doomed = by_digest[specs[0].digest()]
        assert doomed["provenance"]["quarantined"] is True
        assert doomed["provenance"]["retries"] == 1
        assert doomed["worker"] == os.getpid()  # ran in the parent
        assert doomed["rusage"]["cpu_user_s"] >= 0.0


# ----------------------------------------------------------------------
# The file format
# ----------------------------------------------------------------------
class TestLedgerFile:
    def test_file_round_trip_and_append(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with ExperimentLedger(path) as ledger:
            SweepEngine(workers=1, ledger=ledger).run(tiny_spec(seed=1))
            assert read_ledger(path) == ledger.entries
        # Append mode: a second life grows the same file.
        with ExperimentLedger(path) as ledger:
            SweepEngine(workers=1, ledger=ledger).run(tiny_spec(seed=2))
        entries = read_ledger(path)
        assert len(entries) == 2
        assert entries[0]["seed"] == 1
        assert entries[1]["seed"] == 2

    def test_record_after_close_raises(self, tmp_path):
        ledger = ExperimentLedger(str(tmp_path / "ledger.jsonl"))
        ledger.close()
        ledger.close()  # idempotent
        with pytest.raises(ConfigurationError):
            ledger.record({"kind": "run"})

    def test_memory_ledger_never_closes(self):
        ledger = ExperimentLedger()
        ledger.close()
        ledger.record({"kind": "note"})
        assert len(ledger) == 1

    def test_read_ledger_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": 1}\nnot json\n')
        with pytest.raises(ConfigurationError):
            read_ledger(str(path))
        path.write_text("[1, 2]\n")
        with pytest.raises(ConfigurationError):
            read_ledger(str(path))

    def test_read_ledger_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"schema": LEDGER_SCHEMA_VERSION + 1, "kind": "run"}
        ) + "\n")
        with pytest.raises(ConfigurationError):
            read_ledger(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gappy.jsonl"
        path.write_text('\n{"schema": 1, "kind": "run"}\n\n')
        assert len(read_ledger(str(path))) == 1


# ----------------------------------------------------------------------
# Satellite: engine_progress edge cases
# ----------------------------------------------------------------------
class TestEngineProgress:
    @staticmethod
    def progress_events(recorder):
        return [e for e in recorder.events
                if e.get("kind") == "engine_progress"]

    def test_eta_finite_from_first_completed_run(self):
        """The very first progress event already extrapolates an ETA —
        never inf, never NaN — and the last one reads zero."""
        recorder = MemoryRecorder()
        engine = SweepEngine(workers=1, recorder=recorder)
        engine.run_specs([tiny_spec(seed=1), tiny_spec(seed=2)])
        events = self.progress_events(recorder)
        assert [e["done"] for e in events] == [1, 2]
        first, last = events[0], events[-1]
        assert math.isfinite(first["eta_s"])
        assert first["eta_s"] >= 0.0
        assert last["eta_s"] == 0.0
        assert all(e["total"] == 2 for e in events)

    def test_all_cache_hit_batch_emits_no_progress(self):
        """A batch resolved entirely from cache simulates nothing, so
        the progress feed stays silent — but the batch event and the
        ledger still account for every recalled run."""
        ledger = ExperimentLedger()
        engine = SweepEngine(workers=1, ledger=ledger)
        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        engine.run_specs(specs)
        recorder = MemoryRecorder()
        engine.recorder = recorder
        engine.run_specs(specs)
        assert self.progress_events(recorder) == []
        batches = [e for e in recorder.events
                   if e.get("kind") == "engine_batch"]
        assert len(batches) == 1
        assert batches[0]["cache_hits"] == 2
        assert batches[0]["simulated"] == 0
        hits = [e for e in ledger.entries
                if e["provenance"]["cache_hit"]]
        assert [e["digest"] for e in hits] == \
            [s.digest() for s in specs]

    def test_progress_counts_cache_hits_in_mixed_batch(self):
        recorder = MemoryRecorder()
        engine = SweepEngine(workers=1, recorder=recorder)
        warm = tiny_spec(seed=1)
        engine.run(warm)
        engine.run_specs([warm, tiny_spec(seed=2)])
        events = self.progress_events(recorder)
        # One progress event for the single simulated run; the cache
        # hit is visible in its counter, not as a phantom completion.
        assert events[-1]["done"] == events[-1]["total"] == 1
        assert events[-1]["cache_hits"] == 1
