"""The Table 3 model zoo."""

import pytest

from repro.errors import ModelNotFoundError
from repro.models.architecture import ArchitectureKind
from repro.models.registry import (
    INFERENCE_FIGURE_MODELS,
    MODEL_ZOO,
    TRAINING_FIGURE_MODELS,
    get_model,
    inference_models,
    training_models,
)


#: Table 3, verbatim: model -> (#params, #inference GPUs, inference-only).
TABLE3 = {
    "RoBERTa-355M": (355e6, 1, False),
    "Llama2-13B": (13e9, 1, True),
    "Llama2-70B": (70e9, 4, True),
    "GPT-NeoX-20B": (20e9, 2, False),
    "OPT-30B": (30e9, 4, True),
    "BLOOM-176B": (176e9, 8, True),
    "Flan-T5-XXL": (11e9, 1, False),
}


class TestTable3:
    def test_zoo_contains_exactly_table3(self):
        assert set(MODEL_ZOO) == set(TABLE3)

    @pytest.mark.parametrize("name", sorted(TABLE3))
    def test_params_and_gpus_match(self, name):
        params, gpus, inference_only = TABLE3[name]
        spec = get_model(name)
        assert spec.n_params == pytest.approx(params)
        assert spec.n_inference_gpus == gpus
        assert spec.trainable == (not inference_only)

    def test_architecture_kinds(self):
        assert get_model("RoBERTa-355M").architecture.kind \
            is ArchitectureKind.ENCODER
        assert get_model("BLOOM-176B").architecture.kind \
            is ArchitectureKind.DECODER
        assert get_model("Flan-T5-XXL").architecture.kind \
            is ArchitectureKind.ENCODER_DECODER

    def test_unknown_model_rejected(self):
        with pytest.raises(ModelNotFoundError, match="BLOOM-176B"):
            get_model("GPT-5")


class TestCalibration:
    def test_trainable_models_have_training_profiles(self):
        for spec in MODEL_ZOO.values():
            assert (spec.training is not None) == spec.trainable

    def test_training_phase_fractions_sum_to_one(self):
        for spec in MODEL_ZOO.values():
            if spec.training is None:
                continue
            total = (spec.training.forward_fraction
                     + spec.training.backward_fraction
                     + spec.training.sync_fraction)
            assert total == pytest.approx(1.0)

    def test_figure4_trough_ordering(self):
        """RoBERTa troughs high, GPT-NeoX mid, Flan-T5 at idle."""
        roberta = get_model("RoBERTa-355M").training
        neox = get_model("GPT-NeoX-20B").training
        flan = get_model("Flan-T5-XXL").training
        assert roberta.trough_activity > neox.trough_activity \
            > flan.trough_activity
        assert flan.trough_activity == 0.0

    def test_figure10a_sensitivity_ordering(self):
        """BLOOM most clock-sensitive, GPT-NeoX least (Figure 10a)."""
        sensitivities = {
            name: spec.calibration.token_clock_sensitivity
            for name, spec in MODEL_ZOO.items()
        }
        assert sensitivities["BLOOM-176B"] == max(
            sensitivities[name] for name in INFERENCE_FIGURE_MODELS
        )
        assert sensitivities["GPT-NeoX-20B"] == min(
            sensitivities[name] for name in INFERENCE_FIGURE_MODELS
        )

    def test_prompt_activity_ranges_valid(self):
        for spec in MODEL_ZOO.values():
            cal = spec.calibration
            assert 0 < cal.prompt_activity_min < cal.prompt_activity_max <= 1.0
            assert 0 < cal.token_activity_base < cal.prompt_activity_max

    def test_params_per_gpu(self):
        assert get_model("BLOOM-176B").params_per_gpu == pytest.approx(22e9)


class TestFigureModelSets:
    def test_inference_figure_models(self):
        names = [spec.name for spec in inference_models()]
        assert names == list(INFERENCE_FIGURE_MODELS)
        assert "BLOOM-176B" in names and "RoBERTa-355M" not in names

    def test_training_figure_models(self):
        names = [spec.name for spec in training_models()]
        assert names == list(TRAINING_FIGURE_MODELS)
        assert all(get_model(name).trainable for name in names)
