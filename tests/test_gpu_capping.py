"""Reactive power capping: overshoot, convergence, hysteresis."""

import pytest

from repro.errors import ConfigurationError, PowerCapError
from repro.gpu.capping import ReactivePowerCap
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB

MODEL = GpuPowerModel(A100_80GB)


def make_cap(cap_w=325.0, **kwargs):
    return ReactivePowerCap(MODEL, cap_w=cap_w, **kwargs)


class TestConfiguration:
    def test_defaults_to_tdp(self):
        cap = ReactivePowerCap(MODEL)
        assert cap.cap_w == A100_80GB.tdp_w

    def test_invalid_cap_rejected(self):
        with pytest.raises(PowerCapError):
            make_cap(cap_w=50.0)

    def test_invalid_convergence_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cap(convergence=0.0)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cap(sample_interval=0.0)


class TestReactiveBehaviour:
    def test_first_observation_overshoots(self):
        """A sudden spike exceeds the cap before the loop reacts (Fig 9b)."""
        cap = make_cap()
        first = cap.observe(0.0, 1.0)
        assert first > cap.cap_w

    def test_converges_below_cap_under_sustained_load(self):
        cap = make_cap()
        power = 0.0
        for step in range(100):
            power = cap.observe(step * cap.sample_interval, 1.0)
        assert power <= cap.cap_w + 1.0

    def test_throttle_releases_when_load_drops(self):
        cap = make_cap()
        for step in range(100):
            cap.observe(step * cap.sample_interval, 1.0)
        throttled = cap.throttle_clock_mhz
        assert throttled < A100_80GB.max_sm_clock_mhz
        t0 = 100 * cap.sample_interval
        for step in range(200):
            cap.observe(t0 + step * cap.sample_interval, 0.2)
        assert cap.throttle_clock_mhz > throttled

    def test_low_activity_untouched(self):
        """Power troughs are not raised or clipped (Insight 3)."""
        cap = make_cap()
        power = cap.observe(0.0, 0.2)
        assert power == pytest.approx(MODEL.power(0.2, 1410.0))

    def test_between_samples_state_is_held(self):
        cap = make_cap(sample_interval=1.0)
        cap.observe(0.0, 1.0)
        clock_after_first = cap.throttle_clock_mhz
        cap.observe(0.5, 1.0)  # before the next control instant
        assert cap.throttle_clock_mhz == clock_after_first

    def test_reset_restores_full_clock(self):
        cap = make_cap()
        for step in range(50):
            cap.observe(step * cap.sample_interval, 1.0)
        cap.reset()
        assert cap.throttle_clock_mhz == A100_80GB.max_sm_clock_mhz


class TestSteadyState:
    def test_steady_state_power_meets_cap(self):
        cap = make_cap()
        assert cap.steady_state_power(1.0) == pytest.approx(325.0)

    def test_steady_state_below_cap_when_not_binding(self):
        cap = make_cap(cap_w=390.0)
        assert cap.steady_state_power(0.4) < 390.0
