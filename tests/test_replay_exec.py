"""Replayed traces through the execution engine: parity and digests.

The tentpole guarantee: a replayed Azure CSV (or session/burst source)
flows through ``TraceKey``/``RunSpec`` into the sweep engine, the memo
cache, incremental re-simulation, and sharded execution *unchanged*,
and every path produces bit-identical results. Digests are content
addresses: same trace bytes → same digest on any machine, regardless
of where the file lives.
"""

import shutil

import pytest

from repro.cluster.simulator import ClusterConfig
from repro.core.policy import PolcaThresholds
from repro.core.sweeps import EvaluationHarness, threshold_search
from repro.exec import (
    PolicySpec,
    RunSpec,
    SweepEngine,
    TraceKey,
    execute_spec,
    family_digest,
    requests_for,
)
from repro.exec import traces as _traces
from repro.exec.engine import fork_available
from repro.units import hours
from repro.workloads.replay import (
    BurstWindow,
    CsvReplaySpec,
    FlashCrowdSpec,
    SessionProfile,
    TraceSource,
)

FIXTURE = "tests/data/azure_llm_sample.csv"

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires fork start method"
)


def csv_source(**kwargs):
    return TraceSource(csv=CsvReplaySpec.from_file(FIXTURE, **kwargs))


def replay_spec(source, policy=None, seed=5):
    return RunSpec(
        config=ClusterConfig(n_base_servers=4, seed=seed),
        policy=policy or PolicySpec("No-cap"),
        duration_s=hours(1),
        trace=source,
    )


def assert_bit_identical(a, b):
    assert (a.power_series.values == b.power_series.values).all()
    assert a.total_energy_j == b.total_energy_j
    assert a.total_served == b.total_served
    assert a.power_brake_events == b.power_brake_events


class TestTraceKeyDispatch:
    def test_replayed_stream_reaches_the_simulator(self):
        key = TraceKey(seed=0, n_servers=4, duration_s=hours(1),
                       source=csv_source())
        requests = requests_for(key)
        assert len(requests) == 219  # every fixture row replayed

    def test_key_caches_by_source(self):
        _traces.clear_caches()
        source = csv_source()
        key = TraceKey(seed=5, n_servers=4, duration_s=hours(1),
                       source=source)
        assert requests_for(key) is requests_for(key)
        plain = TraceKey(seed=5, n_servers=4, duration_s=hours(1))
        assert requests_for(plain) is not requests_for(key)
        assert _traces.cache_sizes()["request_traces"] == 2

    def test_window_slice_changes_the_stream(self):
        full = requests_for(TraceKey(
            seed=0, n_servers=4, duration_s=hours(1), source=csv_source()
        ))
        sliced = requests_for(TraceKey(
            seed=0, n_servers=4, duration_s=hours(1),
            source=csv_source(window_start_s=600.0, window_end_s=1800.0),
        ))
        assert 0 < len(sliced) < len(full)

    def test_burst_on_synthetic_base(self):
        plain = TraceKey(seed=0, n_servers=8, duration_s=hours(6))
        burst = TraceKey(
            seed=0, n_servers=8, duration_s=hours(6),
            source=TraceSource(burst=FlashCrowdSpec(
                windows=(BurstWindow(3600.0, 3600.0, magnitude=3.0),),
            )),
        )
        base = requests_for(plain)
        crowded = requests_for(burst)
        assert len(crowded) > len(base)


class TestDigests:
    def test_replay_digest_differs_from_synthetic(self):
        assert replay_spec(csv_source()).digest() \
            != replay_spec(None).digest()

    def test_digest_is_path_independent(self, tmp_path):
        moved = tmp_path / "renamed.csv"
        shutil.copy(FIXTURE, moved)
        original = TraceSource(csv=CsvReplaySpec.from_file(FIXTURE))
        relocated = TraceSource(csv=CsvReplaySpec.from_file(moved))
        assert replay_spec(original).digest() \
            == replay_spec(relocated).digest()

    def test_digest_tracks_slice_and_scale(self):
        base = replay_spec(csv_source()).digest()
        assert replay_spec(csv_source(window_start_s=60.0)).digest() != base
        assert replay_spec(csv_source(time_scale=2.0)).digest() != base
        assert replay_spec(csv_source(classify_salt=1)).digest() != base

    def test_family_digest_includes_trace(self):
        assert family_digest(replay_spec(csv_source())) \
            != family_digest(replay_spec(None))

    def test_specs_pickle(self):
        import pickle

        spec = replay_spec(TraceSource(
            sessions=SessionProfile(n_sessions=10),
            burst=FlashCrowdSpec(windows=(BurstWindow(0.0, 60.0),)),
        ))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.digest() == spec.digest()


class TestExecutionParity:
    """Serial, parallel, cached, incremental, sharded: one stream."""

    @pytest.fixture(scope="class")
    def spec(self):
        return replay_spec(
            csv_source(),
            policy=PolicySpec(
                "POLCA", PolcaThresholds(t1=0.80, t2=0.90)
            ),
        )

    @pytest.fixture(scope="class")
    def serial(self, spec):
        return execute_spec(spec)

    def test_cached_matches_serial(self, spec, serial):
        engine = SweepEngine(workers=1)
        first = engine.run_specs([spec])[0]
        again = engine.run_specs([spec])[0]
        assert engine.last_stats.cache_hits == 1
        assert_bit_identical(first, serial)
        assert_bit_identical(again, serial)

    @needs_fork
    def test_parallel_matches_serial(self, spec, serial):
        results = SweepEngine(workers=2).run_specs(
            [spec, replay_spec(csv_source(), seed=6)]
        )
        assert_bit_identical(results[0], serial)

    def test_incremental_matches_serial(self, spec, serial):
        engine = SweepEngine(workers=1, incremental=True)
        assert_bit_identical(engine.run_specs([spec])[0], serial)

    def test_sharded_matches_serial(self, spec, serial):
        engine = SweepEngine(workers=1)
        assert_bit_identical(engine.run_sharded(spec, n_shards=1), serial)
        two = engine.run_sharded(spec, n_shards=2)
        again = engine.run_sharded(spec, n_shards=2)
        assert_bit_identical(two, again)


def _stream_digest(requests):
    import hashlib

    digest = hashlib.sha256()
    for r in requests:
        digest.update((
            f"{r.arrival_time!r}:{r.workload.name}:{r.priority.value}:"
            f"{r.input_tokens}:{r.output_tokens}\n"
        ).encode())
    return digest.hexdigest()


class TestSyntheticPipelineGoldens:
    """Pinned cross-seed digests of the synthetic workloads pipeline.

    The engine's content-addressed memoization (and the parity
    guarantees above) assume the trace synthesis itself is
    platform-deterministic; these goldens pin the full request stream
    per seed. They change only when trace synthesis changes — which
    must come with a ``DIGEST_VERSION`` bump in ``repro.exec.runspec``.
    """

    @pytest.mark.parametrize("seed,expected", [
        (0, "005fb287a311bcc48980b7d340f430797c32b21769c41f8be790f0be8e409dd2"),
        (1, "f335c54aafc1da9aa3b107ec123ee6a2e3c5a0b1044a825dcec92762126593d0"),
    ])
    def test_request_stream_golden_per_seed(self, seed, expected):
        key = TraceKey(seed=seed, n_servers=8, duration_s=hours(6))
        assert _stream_digest(requests_for(key)) == expected


class TestHarnessIntegration:
    def test_trace_source_flows_through_sweeps(self):
        harness = EvaluationHarness(
            n_base_servers=4, duration_s=hours(1), seed=5,
            trace_source=csv_source(),
        )
        points = threshold_search(
            harness,
            [("80-90", PolcaThresholds(t1=0.80, t2=0.90))],
            [0.25],
        )
        point = points[("80-90", 0.25)]
        assert point.power_brake_events >= 0
        assert all(v > 0 for v in point.normalized_p99.values())

    def test_harness_replay_differs_from_synthetic(self):
        replayed = EvaluationHarness(
            n_base_servers=4, duration_s=hours(1), seed=5,
            trace_source=csv_source(),
        )
        synthetic = EvaluationHarness(
            n_base_servers=4, duration_s=hours(1), seed=5,
        )
        assert replayed.baseline_spec().digest() \
            != synthetic.baseline_spec().digest()
        assert replayed.requests_for(0.0) \
            != synthetic.requests_for(0.0)

    def test_session_source_runs_end_to_end(self):
        harness = EvaluationHarness(
            n_base_servers=4, duration_s=hours(1), seed=5,
            trace_source=TraceSource(
                sessions=SessionProfile(n_sessions=60, seed=2),
            ),
        )
        result = harness.baseline()
        assert result.total_served > 0
