"""DGX server model: component budgets, power aggregation, derating."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.server.components import (
    ComponentBudget,
    DGX_A100_BUDGET,
    DGX_H100_BUDGET,
)
from repro.server.dgx import DgxServer, HostPowerModel
from repro.server.fleet import sample_fleet_peaks


class TestComponentBudget:
    def test_dgx_a100_rated_6500w(self):
        """Section 5: 'the rated power for the DGX-A100 machine is 6500W'."""
        assert DGX_A100_BUDGET.total_w == 6500.0

    def test_gpu_share_about_half(self):
        """Figure 3: ~50% of provisioned power goes to the GPUs."""
        assert DGX_A100_BUDGET.fraction("gpus") == pytest.approx(0.49, abs=0.02)

    def test_fan_share_about_quarter(self):
        """Section 5: 'server fans constitute nearly 25% of the server
        power'."""
        assert DGX_A100_BUDGET.fraction("fans") == pytest.approx(0.25, abs=0.01)

    def test_fractions_sum_to_one(self):
        assert sum(DGX_A100_BUDGET.fractions().values()) == pytest.approx(1.0)
        assert sum(DGX_H100_BUDGET.fractions().values()) == pytest.approx(1.0)

    def test_h100_budget_matches_rating(self):
        """Section 6.7: DGX-H100 is a 10.2 kW machine."""
        assert DGX_H100_BUDGET.total_w == pytest.approx(10200.0)

    def test_unknown_component_rejected(self):
        with pytest.raises(ConfigurationError):
            DGX_A100_BUDGET.fraction("psu")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            ComponentBudget(name="bad", components={})
        with pytest.raises(ConfigurationError):
            ComponentBudget(name="bad", components={"gpus": -1.0})


class TestHostPowerModel:
    def test_host_is_weakly_load_following(self):
        """Insight 8: GPUs dominate the variable portion of server power."""
        host = HostPowerModel()
        swing = host.power(1.0) - host.power(0.0)
        gpu_swing = 8 * (465.0 - 80.0)
        assert swing < 0.1 * gpu_swing

    def test_invalid_load_rejected(self):
        with pytest.raises(ConfigurationError):
            HostPowerModel().power(1.5)


class TestDgxServer:
    @pytest.fixture()
    def server(self):
        return DgxServer()

    def test_peak_below_rating(self, server):
        """Section 5: observed peak never exceeded 5700 W on a 6500 W
        machine."""
        assert server.peak_power_w < 5700.0
        assert server.derating_headroom_w() >= 800.0

    def test_gpu_share_of_drawn_power_about_60pct(self, server):
        """Figure 11 observation (1): GPUs are ~60% of drawn power."""
        activity = 0.55  # token-phase serving level
        gpu = server.gpu_power(0.0, [activity] * 8)
        total = server.server_power_uniform(0.0, activity)
        assert gpu / total == pytest.approx(0.60, abs=0.05)

    def test_gpu_peak_exceeds_gpu_tdp_total(self, server):
        """Figure 11 observation (2): peak GPU power exceeds the server
        GPU TDP (by up to ~500 W)."""
        peak_gpu = server.gpu_power(0.0, [1.0] * 8)
        excess = peak_gpu - server.gpu_tdp_total_w
        assert 0 < excess <= 550.0

    def test_activity_count_must_match(self, server):
        with pytest.raises(ConfigurationError):
            server.gpu_power(0.0, [0.5] * 4)

    def test_knob_fanout(self, server):
        server.lock_all_frequencies(1275.0)
        assert all(g.frequency_lock_mhz == 1275.0 for g in server.gpus)
        server.unlock_all_frequencies()
        assert all(g.frequency_lock_mhz is None for g in server.gpus)
        server.set_all_power_caps(350.0)
        assert all(g.power_cap_w == 350.0 for g in server.gpus)
        server.clear_all_power_caps()
        assert all(g.power_cap_w is None for g in server.gpus)

    def test_brake_fanout(self, server):
        server.engage_brake(0.0)
        assert all(g.brake.is_engaged(10.0) for g in server.gpus)
        server.release_brake()
        assert not any(g.brake.is_engaged(11.0) for g in server.gpus)

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigurationError):
            DgxServer(n_gpus=0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_server_power_monotone_in_activity(self, activity):
        server = DgxServer()
        low = server.server_power_uniform(0.0, activity * 0.5)
        high = server.server_power_uniform(0.0, activity)
        assert low <= high + 1e-9


class TestFleet:
    def test_figure11_observations(self):
        samples = sample_fleet_peaks(n_servers=200, seed=1)
        server = DgxServer()
        normalized = [s.normalized(server) for s in samples]
        gpu_peaks = [s.peak_gpu_power_w for s in normalized]
        server_peaks = [s.peak_server_power_w for s in normalized]
        # (2) GPU peaks exceed the GPU TDP for most heavily loaded servers.
        assert max(gpu_peaks) > 1.0
        # (3) server peak correlates with GPU peak.
        from repro.analysis.correlation import pearson
        assert pearson(gpu_peaks, server_peaks) > 0.8
        # (4) normalized GPU peak spans a smaller range than server peak.
        gpu_range = max(gpu_peaks) - min(gpu_peaks)
        server_range = max(server_peaks) - min(server_peaks)
        assert server_range > gpu_range * 0.8
        # (1) GPUs are the majority of drawn power.
        assert all(0.5 < s.mean_gpu_share < 0.75 for s in samples)

    def test_zero_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_fleet_peaks(n_servers=0)
