"""Smoke tests: every example script runs end to end.

The quickstart and POLCA walkthroughs simulate hours of cluster time, so
they are exercised with reduced horizons by importing their modules and
driving the cheap entry points; the fully fast scripts run as-is. The
``trace_inspect.py`` CLI additionally gets contract tests for its exit
codes (0 = fine/identical, 1 = traces diverge, 2 = usage/IO error) and
its summarize/diff modes.
"""

import importlib.util
import json
import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_SCRIPTS = [
    "characterize_inference.py",
    "training_power.py",
    "datatype_study.py",
    "phase_aware_serving.py",
    "trace_inspect.py",
    "monitor_run.py",
    "powerfail_study.py",
    "replay_study.py",
    "mission_control.py",
]


@pytest.mark.parametrize("script", FAST_SCRIPTS)
def test_fast_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_sections_importable():
    """The quickstart's cheap sections run inline (the POLCA section is
    covered by the integration suite with a shared harness)."""
    namespace = runpy.run_path(str(EXAMPLES / "quickstart.py"))
    assert "main" in namespace


def test_polca_example_importable():
    namespace = runpy.run_path(str(EXAMPLES / "polca_oversubscription.py"))
    assert "main" in namespace


# ----------------------------------------------------------------------
# trace_inspect.py CLI contract
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trace_inspect():
    spec = importlib.util.spec_from_file_location(
        "trace_inspect", EXAMPLES / "trace_inspect.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_trace(path, events):
    path.write_text(
        "".join(json.dumps(event) + "\n" for event in events)
    )
    return str(path)


EVENTS = [
    {"kind": "control", "t": 2.0, "utilization": 0.8},
    {"kind": "serve", "t": 3.0, "latency_s": 1.0},
]


class TestTraceInspectCli:
    def test_summarize_exits_zero(self, trace_inspect, tmp_path, capsys):
        trace = write_trace(tmp_path / "a.jsonl", EVENTS)
        assert trace_inspect.main([trace]) == 0
        out = capsys.readouterr().out
        assert "2 events spanning" in out
        assert "control=1" in out and "serve=1" in out

    def test_unknown_kind_filter_yields_empty_summary(
        self, trace_inspect, tmp_path, capsys
    ):
        trace = write_trace(tmp_path / "a.jsonl", EVENTS)
        assert trace_inspect.main([trace, "--kinds", "nonexistent"]) == 0
        assert "0 events" in capsys.readouterr().out

    def test_kind_filter_keeps_only_named_kinds(
        self, trace_inspect, tmp_path, capsys
    ):
        trace = write_trace(tmp_path / "a.jsonl", EVENTS)
        assert trace_inspect.main([trace, "--kinds", "serve"]) == 0
        out = capsys.readouterr().out
        assert "serve=1" in out and "control" not in out

    def test_empty_trace_handled(self, trace_inspect, tmp_path, capsys):
        trace = write_trace(tmp_path / "empty.jsonl", [])
        assert trace_inspect.main([trace]) == 0
        assert "0 events" in capsys.readouterr().out

    def test_missing_file_exits_two(self, trace_inspect, tmp_path, capsys):
        code = trace_inspect.main([str(tmp_path / "nope.jsonl")])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")

    def test_invalid_trace_exits_two(self, trace_inspect, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert trace_inspect.main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_identical_exits_zero(
        self, trace_inspect, tmp_path, capsys
    ):
        a = write_trace(tmp_path / "a.jsonl", EVENTS)
        b = write_trace(tmp_path / "b.jsonl", EVENTS)
        assert trace_inspect.main(["diff", a, b]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_divergent_exits_one_and_names_the_field(
        self, trace_inspect, tmp_path, capsys
    ):
        changed = [dict(EVENTS[0]), dict(EVENTS[1], latency_s=9.0)]
        a = write_trace(tmp_path / "a.jsonl", EVENTS)
        b = write_trace(tmp_path / "b.jsonl", changed)
        assert trace_inspect.main(["diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "first divergence at event [1]" in out
        assert "field: latency_s" in out
        assert "a.jsonl: 1.0" in out and "b.jsonl: 9.0" in out

    def test_diff_missing_file_exits_two(
        self, trace_inspect, tmp_path, capsys
    ):
        a = write_trace(tmp_path / "a.jsonl", EVENTS)
        code = trace_inspect.main(["diff", a, str(tmp_path / "no.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# trace_inspect.py trips subcommand
# ----------------------------------------------------------------------
TRIP_EVENTS = [
    {"t": 10.0, "kind": "trip_risk", "device": "row",
     "device_level": "row", "accumulator": 0.5, "overload": 1.2,
     "at_risk": 1.0},
    {"t": 12.0, "kind": "shed_engage"},
    {"t": 14.0, "kind": "shed_defer", "request_id": 3,
     "priority": "low", "workload": "Summarize", "delay_s": 20.0,
     "deferrals": 1},
    {"t": 15.0, "kind": "drop", "request_id": 4, "priority": "low",
     "workload": "Chat", "reason": "shed", "server": None},
    {"t": 30.0, "kind": "trip", "device": "row", "device_level": "row",
     "capacity_w": 5000.0, "overload": 1.25, "servers_offline": 6,
     "dropped": 2, "cascaded": False, "restore_at": 570.0,
     "offline_capacity_w": 4000.0, "offline_fraction": 1.0},
    {"t": 570.0, "kind": "reenergize", "device": "row", "step": 0,
     "servers": ["server-0", "server-1"]},
    {"t": 580.0, "kind": "shed_release"},
    {"t": 590.0, "kind": "reenergize_done", "device": "row"},
]


class TestTripsCli:
    def test_trips_renders_protection_timeline(
        self, trace_inspect, tmp_path, capsys
    ):
        trace = write_trace(tmp_path / "trips.jsonl", TRIP_EVENTS)
        assert trace_inspect.main(["trips", trace]) == 0
        out = capsys.readouterr().out
        assert "1 trip(s), 1 deferral(s), 1 shed drop(s)" in out
        assert "TRIP row" in out
        assert "overload x1.25" in out
        assert "6 server(s) offline, 2 request(s) lost" in out
        assert "risk AT RISK: row" in out
        assert "emergency shed ENGAGED" in out
        assert "emergency shed released" in out
        assert "deferred r3 [low/Summarize] by 20s" in out

    def test_trips_unprotected_trace_exits_one(
        self, trace_inspect, tmp_path, capsys
    ):
        trace = write_trace(tmp_path / "plain.jsonl", EVENTS)
        assert trace_inspect.main(["trips", trace]) == 1
        err = capsys.readouterr().err
        assert "no power-delivery protection events" in err

    def test_trips_missing_file_exits_two(
        self, trace_inspect, tmp_path, capsys
    ):
        code = trace_inspect.main(
            ["trips", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# trace_inspect.py spans / attrib subcommands
# ----------------------------------------------------------------------
class TestSpanAndAttribCli:
    @pytest.fixture()
    def span_trace(self, tmp_path):
        from tests.test_obs_spans import simple_request_events

        return write_trace(tmp_path / "spans.jsonl",
                           simple_request_events())

    def test_spans_renders_all_requests(
        self, trace_inspect, span_trace, capsys
    ):
        assert trace_inspect.main(["spans", span_trace]) == 0
        out = capsys.readouterr().out
        assert "request 0 [low/Chat] - served" in out
        assert "<- brake v1 (policy)" in out

    def test_spans_request_id_found(
        self, trace_inspect, span_trace, capsys
    ):
        code = trace_inspect.main(
            ["spans", span_trace, "--request-id", "0"]
        )
        assert code == 0
        assert "request 0" in capsys.readouterr().out

    def test_spans_request_id_missing_exits_one(
        self, trace_inspect, span_trace, capsys
    ):
        code = trace_inspect.main(
            ["spans", span_trace, "--request-id", "42"]
        )
        assert code == 1
        assert "no span for request 42" in capsys.readouterr().err

    def test_spans_pre_span_trace_exits_one(
        self, trace_inspect, tmp_path, capsys
    ):
        trace = write_trace(tmp_path / "old.jsonl", EVENTS)
        assert trace_inspect.main(["spans", trace]) == 1
        assert "no span events" in capsys.readouterr().err

    def test_spans_missing_file_exits_two(
        self, trace_inspect, tmp_path, capsys
    ):
        code = trace_inspect.main(
            ["spans", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_attrib_reports_components_and_victims(
        self, trace_inspect, span_trace, capsys
    ):
        assert trace_inspect.main(["attrib", span_trace]) == 0
        out = capsys.readouterr().out
        assert "queue_wait" in out and "brake_stall" in out
        assert "conservation  exact" in out
        assert "Top 1 victims" in out
        assert "excess energy" in out

    def test_attrib_pre_span_trace_exits_one(
        self, trace_inspect, tmp_path, capsys
    ):
        trace = write_trace(tmp_path / "old.jsonl", EVENTS)
        assert trace_inspect.main(["attrib", trace]) == 1
        assert "no span events" in capsys.readouterr().err

    def test_attrib_missing_file_exits_two(
        self, trace_inspect, tmp_path, capsys
    ):
        code = trace_inspect.main(
            ["attrib", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# trace_inspect.py ledger / report subcommands
# ----------------------------------------------------------------------
def write_ledger(path):
    """Journal two tiny engine runs into a real ledger file."""
    from repro.cluster.simulator import ClusterConfig
    from repro.exec import PolicySpec, RunSpec, SweepEngine
    from repro.obs import ExperimentLedger

    with ExperimentLedger(str(path)) as ledger:
        engine = SweepEngine(workers=1, ledger=ledger)
        spec = RunSpec(
            config=ClusterConfig(n_base_servers=4, seed=1),
            policy=PolicySpec("No-cap"),
            duration_s=3600.0,
        )
        engine.run(spec)
        engine.run(spec)  # journals a cache hit
    return str(path)


class TestLedgerCli:
    def test_ledger_prints_runs_and_flags(
        self, trace_inspect, tmp_path, capsys
    ):
        ledger = write_ledger(tmp_path / "ledger.jsonl")
        assert trace_inspect.main(["ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "2 run(s), showing last 2" in out
        assert "No-cap" in out
        assert "C cache hit" in out  # the flag legend
        lines = [ln for ln in out.splitlines() if "No-cap" in ln]
        assert len(lines) == 2
        # Executed run has no flags; the recall is marked C.
        assert " - " in lines[0] or lines[0].split()[3] == "-"
        assert " C " in lines[1]

    def test_policy_filter_without_match_exits_one(
        self, trace_inspect, tmp_path, capsys
    ):
        ledger = write_ledger(tmp_path / "ledger.jsonl")
        code = trace_inspect.main(
            ["ledger", ledger, "--policy", "POLCA"]
        )
        assert code == 1
        assert "no ledger entries" in capsys.readouterr().err

    def test_ledger_missing_file_exits_two(
        self, trace_inspect, tmp_path, capsys
    ):
        code = trace_inspect.main(
            ["ledger", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestReportCli:
    def test_report_writes_dashboard(
        self, trace_inspect, tmp_path, capsys
    ):
        trace = write_trace(tmp_path / "a.jsonl", EVENTS)
        out_path = tmp_path / "REPORT.html"
        code = trace_inspect.main(
            ["report", trace, "--out", str(out_path)]
        )
        assert code == 0
        assert f"wrote {out_path}" in capsys.readouterr().out
        html = out_path.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "Trace summary" in html

    def test_report_with_ledger_panels(
        self, trace_inspect, tmp_path, capsys
    ):
        trace = write_trace(tmp_path / "a.jsonl", EVENTS)
        ledger = write_ledger(tmp_path / "ledger.jsonl")
        out_path = tmp_path / "REPORT.html"
        code = trace_inspect.main([
            "report", trace, "--out", str(out_path),
            "--ledger", ledger, "--title", "Study 7",
        ])
        assert code == 0
        html = out_path.read_text(encoding="utf-8")
        assert "Study 7" in html
        assert "Run ledger history" in html
        assert "Cache and incremental savings" in html

    def test_report_empty_trace_exits_one(
        self, trace_inspect, tmp_path, capsys
    ):
        trace = write_trace(tmp_path / "empty.jsonl", [])
        code = trace_inspect.main(
            ["report", trace, "--out", str(tmp_path / "r.html")]
        )
        assert code == 1
        assert "no events" in capsys.readouterr().err
        assert not (tmp_path / "r.html").exists()

    def test_report_missing_file_exits_two(
        self, trace_inspect, tmp_path, capsys
    ):
        code = trace_inspect.main(
            ["report", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQueryCli:
    QUERY_EVENTS = [
        {"kind": "control", "t": 0.0, "utilization": 0.5},
        {"kind": "serve", "t": 1.0, "server": "s0", "latency_s": 2.0},
        {"kind": "serve", "t": 2.0, "server": "s1", "latency_s": 4.0},
        {"kind": "serve", "t": 3.0, "server": "s2", "latency_s": 6.0},
        {"kind": "drop", "t": 4.0, "server": "s1", "reason": "queue"},
    ]

    def trace(self, tmp_path):
        return write_trace(tmp_path / "q.jsonl", self.QUERY_EVENTS)

    def test_filter_prints_json_lines(self, trace_inspect, tmp_path, capsys):
        code = trace_inspect.main(
            ["query", self.trace(tmp_path), "--kinds", "serve",
             "--since", "2.0"]
        )
        assert code == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert [r["t"] for r in rows] == [2.0, 3.0]

    def test_group_by_aggregates(self, trace_inspect, tmp_path, capsys):
        code = trace_inspect.main(
            ["query", self.trace(tmp_path), "--group-by", "kind",
             "--agg", "count", "--agg", "mean:latency_s"]
        )
        assert code == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        serve = next(r for r in rows if r["kind"] == "serve")
        assert serve["count"] == 3
        assert serve["mean:latency_s"] == 4.0

    def test_shard_filter_and_projection(
        self, trace_inspect, tmp_path, capsys
    ):
        code = trace_inspect.main(
            ["query", self.trace(tmp_path), "--shard", "1",
             "--n-shards", "2", "--fields", "kind,server"]
        )
        assert code == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert rows == [
            {"kind": "serve", "server": "s1"},
            {"kind": "drop", "server": "s1"},
        ]

    def test_where_clause_parses_json_values(
        self, trace_inspect, tmp_path, capsys
    ):
        code = trace_inspect.main(
            ["query", self.trace(tmp_path), "--where", "t=1.0"]
        )
        assert code == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert [r["server"] for r in rows] == ["s0"]

    def test_limit_truncates_output(self, trace_inspect, tmp_path, capsys):
        code = trace_inspect.main(
            ["query", self.trace(tmp_path), "--kinds", "serve",
             "--limit", "1"]
        )
        assert code == 0
        assert len(capsys.readouterr().out.splitlines()) == 1

    def test_empty_result_set_exits_one(
        self, trace_inspect, tmp_path, capsys
    ):
        code = trace_inspect.main(
            ["query", self.trace(tmp_path), "--kinds", "nonexistent"]
        )
        assert code == 1
        assert "no matching events" in capsys.readouterr().err

    def test_invalid_query_exits_two(self, trace_inspect, tmp_path, capsys):
        trace = self.trace(tmp_path)
        assert trace_inspect.main(
            ["query", trace, "--shard", "0"]
        ) == 2  # missing --n-shards
        assert trace_inspect.main(
            ["query", trace, "--group-by", "kind", "--agg", "median:x"]
        ) == 2
        assert trace_inspect.main(
            ["query", trace, "--agg", "count"]
        ) == 2  # --agg without --group-by
        assert trace_inspect.main(
            ["query", trace, "--where", "noequalsign"]
        ) == 2

    def test_missing_file_exits_two(self, trace_inspect, tmp_path, capsys):
        code = trace_inspect.main(
            ["query", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
