"""Smoke tests: every example script runs end to end.

The quickstart and POLCA walkthroughs simulate hours of cluster time, so
they are exercised with reduced horizons by importing their modules and
driving the cheap entry points; the fully fast scripts run as-is.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_SCRIPTS = [
    "characterize_inference.py",
    "training_power.py",
    "datatype_study.py",
    "phase_aware_serving.py",
    "trace_inspect.py",
]


@pytest.mark.parametrize("script", FAST_SCRIPTS)
def test_fast_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_sections_importable():
    """The quickstart's cheap sections run inline (the POLCA section is
    covered by the integration suite with a shared harness)."""
    namespace = runpy.run_path(str(EXAMPLES / "quickstart.py"))
    assert "main" in namespace


def test_polca_example_importable():
    namespace = runpy.run_path(str(EXAMPLES / "polca_oversubscription.py"))
    assert "main" in namespace
