"""The DVFS power model (P = idle + a * dyn * (f/fmax)^alpha)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB

MODEL = GpuPowerModel(A100_80GB)
F_MAX = A100_80GB.max_sm_clock_mhz


class TestPowerCurve:
    def test_idle_at_zero_activity(self):
        assert MODEL.power(0.0, F_MAX) == A100_80GB.idle_w

    def test_transient_peak_at_full_activity(self):
        assert MODEL.power(1.0, F_MAX) == A100_80GB.transient_peak_w

    def test_full_activity_exceeds_tdp(self):
        # Insight 1/4: peaks go beyond TDP.
        assert MODEL.power(1.0, F_MAX) > A100_80GB.tdp_w

    def test_activity_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            MODEL.power(1.2, F_MAX)
        with pytest.raises(ConfigurationError):
            MODEL.power(-0.1, F_MAX)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=210.0, max_value=1410.0))
    def test_power_between_idle_and_peak(self, activity, clock):
        power = MODEL.power(activity, clock)
        assert A100_80GB.idle_w <= power <= A100_80GB.transient_peak_w + 1e-9

    @given(st.floats(min_value=0.1, max_value=1.0))
    def test_power_monotone_in_clock(self, activity):
        low = MODEL.power(activity, 1100.0)
        high = MODEL.power(activity, 1410.0)
        assert low < high

    @given(st.floats(min_value=300.0, max_value=1410.0))
    def test_power_monotone_in_activity(self, clock):
        assert MODEL.power(0.3, clock) < MODEL.power(0.9, clock)


class TestInversion:
    @given(st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=500.0, max_value=1410.0))
    def test_activity_for_power_roundtrip(self, activity, clock):
        power = MODEL.power(activity, clock)
        recovered = MODEL.activity_for_power(power, clock)
        assert recovered == pytest.approx(activity, rel=1e-9)

    def test_unreachable_power_rejected(self):
        with pytest.raises(ConfigurationError):
            MODEL.activity_for_power(600.0, F_MAX)
        with pytest.raises(ConfigurationError):
            MODEL.activity_for_power(50.0, F_MAX)


class TestThrottleClock:
    def test_cap_above_power_leaves_max_clock(self):
        # At activity 0.5 the GPU draws ~272 W; a 350 W cap never binds.
        assert MODEL.throttle_clock_for_cap(0.5, 350.0) == F_MAX

    def test_binding_cap_meets_cap_exactly(self):
        clock = MODEL.throttle_clock_for_cap(1.0, 325.0)
        assert clock < F_MAX
        assert MODEL.power(1.0, clock) == pytest.approx(325.0)

    def test_cap_below_idle_floors_at_min_clock(self):
        # Frequency throttling cannot reclaim idle power.
        clock = MODEL.throttle_clock_for_cap(1.0, 100.0)
        assert clock == A100_80GB.min_sm_clock_mhz

    @given(st.floats(min_value=0.3, max_value=1.0),
           st.floats(min_value=150.0, max_value=400.0))
    def test_throttled_power_never_exceeds_cap_or_uncapped(self, activity, cap):
        clock = MODEL.throttle_clock_for_cap(activity, cap)
        power = MODEL.power(activity, clock)
        uncapped = MODEL.power(activity, F_MAX)
        floor = MODEL.power(activity, A100_80GB.min_sm_clock_mhz)
        assert power <= max(cap, floor) + 1e-6
        assert power <= uncapped + 1e-9


class TestPeakPowerReduction:
    def test_no_reduction_at_max_clock(self):
        assert MODEL.peak_power_reduction(1.0, F_MAX) == 0.0

    def test_reduction_at_1p1ghz_near_20pct(self):
        # Figure 10's x-axis spans ~0-20%+ over the 1.1-1.4 GHz range.
        reduction = MODEL.peak_power_reduction(1.0, 1100.0)
        assert 0.15 < reduction < 0.30

    @given(st.floats(min_value=400.0, max_value=1409.0))
    def test_reduction_positive_below_max(self, clock):
        assert MODEL.peak_power_reduction(1.0, clock) > 0.0
