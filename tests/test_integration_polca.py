"""End-to-end POLCA integration: the paper's headline claims.

These tests run the full pipeline — production-style trace, synthetic
request generation, discrete-event simulation, POLCA control — over 30
simulated hours (one full daily peak) and assert the paper's evaluation
shape: 30% more servers, zero brakes, SLO-compliant latency, the Table 4
inference column, and the policy comparison ordering.
"""

import pytest

from repro.core import (
    DualThresholdPolicy,
    NoCapPolicy,
    SingleThresholdAllPolicy,
    evaluate_slos,
    select_thresholds,
)
from repro.workloads.spec import Priority


class TestBaselineCluster:
    def test_peak_utilization_near_79pct(self, baseline_result):
        """Table 4: inference cluster peaks at ~79% of provisioned power."""
        assert baseline_result.peak_utilization == pytest.approx(0.79, abs=0.04)

    def test_substantial_headroom(self, baseline_result):
        """Insight 9: ~21% headroom (vs ~3% for training)."""
        headroom = 1.0 - baseline_result.peak_utilization
        assert headroom > 0.15

    def test_diurnal_mean_well_below_peak(self, baseline_result):
        assert baseline_result.mean_utilization < \
            baseline_result.peak_utilization - 0.10

    def test_short_term_stability(self, baseline_result):
        """Table 4: inference swings (9% in 2 s) are far below training's
        37.5%."""
        assert baseline_result.max_swing_fraction(2.0) < 0.20
        assert baseline_result.max_swing_fraction(2.0) < 0.375 / 2

    def test_no_brakes_without_oversubscription(self, baseline_result):
        assert baseline_result.power_brake_events == 0


class TestPolcaHeadline:
    def test_zero_power_brakes_at_30pct(self, polca_30pct_result):
        """The headline: 30% more servers with no power brakes."""
        assert polca_30pct_result.power_brake_events == 0

    def test_peak_stays_under_the_breaker(self, polca_30pct_result):
        assert polca_30pct_result.peak_utilization < 1.0

    def test_all_slos_met(self, polca_30pct_result, baseline_result):
        report = evaluate_slos(polca_30pct_result, baseline_result)
        assert report.meets(Priority.HIGH)
        assert report.meets(Priority.LOW)
        assert report.all_met

    def test_hp_barely_affected(self, polca_30pct_result, baseline_result):
        """Figure 13b: high-priority p50 within 1%."""
        normalized = polca_30pct_result.normalized_latencies(
            Priority.HIGH, baseline_result
        )
        assert normalized["p50"] < 1.01

    def test_lp_degrades_more_than_hp(self, polca_30pct_result,
                                      baseline_result):
        """POLCA's whole point: reclaim from low priority first."""
        lp = polca_30pct_result.normalized_latencies(
            Priority.LOW, baseline_result
        )
        hp = polca_30pct_result.normalized_latencies(
            Priority.HIGH, baseline_result
        )
        assert lp["p50"] >= hp["p50"]

    def test_throughput_loss_under_2pct(self, polca_30pct_result,
                                        baseline_result):
        """Figure 14: LP throughput declines < 2%, HP unaffected."""
        for priority in Priority:
            ratio = polca_30pct_result.normalized_throughput(
                priority, baseline_result
            )
            assert ratio > 0.98

    def test_capping_did_happen(self, polca_30pct_result):
        assert polca_30pct_result.capping_actions > 0


class TestOversubscriptionLimit:
    def test_brakes_appear_beyond_the_cliff(self, harness):
        """Figure 13: pushing well past the selected level causes brakes."""
        result = harness.run(DualThresholdPolicy(), added_fraction=0.45)
        assert result.power_brake_events > 0


class TestThresholdSelectionRoundTrip:
    def test_historical_trace_recommends_paper_like_thresholds(
        self, baseline_result
    ):
        utilization = baseline_result.power_series.normalized(
            baseline_result.provisioned_power_w
        )
        recommendation = select_thresholds(utilization)
        # Our simulated short-term spikes run somewhat larger than the
        # production trace's 11.8%, so the recommended T2 lands at or a
        # little below the paper's 89%.
        assert 0.70 <= recommendation.thresholds.t2 <= 0.95
        assert recommendation.thresholds.t1 < recommendation.thresholds.t2


class TestPolicyOrdering:
    def test_1thresh_all_hurts_hp_more_than_polca(self, harness,
                                                  baseline_result,
                                                  polca_30pct_result):
        """Figure 17: 1-Thresh-All breaches HP SLOs that POLCA protects."""
        aggressive = harness.run(SingleThresholdAllPolicy(),
                                 added_fraction=0.30)
        hp_aggressive = aggressive.normalized_latencies(
            Priority.HIGH, baseline_result
        )
        hp_polca = polca_30pct_result.normalized_latencies(
            Priority.HIGH, baseline_result
        )
        assert hp_aggressive["p99"] > hp_polca["p99"]

    def test_nocap_brakes_when_power_grows_5pct(self, harness):
        """Figure 18: No-cap is defenceless against workload power creep
        at 30% oversubscription, while POLCA stays brake-free or nearly
        so."""
        nocap = harness.run(NoCapPolicy(), added_fraction=0.30,
                            power_scale=1.05)
        polca = harness.run(DualThresholdPolicy(), added_fraction=0.30,
                            power_scale=1.05)
        assert nocap.power_brake_events > 0
        assert polca.power_brake_events <= nocap.power_brake_events
