"""Parallel execution is bit-identical to serial execution.

The engine's whole contract is that ``workers`` is a pure throughput
knob: every sweep result — power series, energy integral, latency lists,
event counters — must match the serial run to the last bit, on multiple
seeds and with fault injection active. These tests compare live runs
(two engines, two worker settings), never stored goldens.
"""

import pytest

from repro.core.policy import PolcaThresholds
from repro.core.sweeps import (
    EvaluationHarness,
    added_servers_sweep,
    compare_policies,
    threshold_search,
)
from repro.exec import fork_available
from repro.faults.plan import FaultPlan
from repro.units import hours
from repro.workloads.spec import Priority

SEEDS = (1, 2)
FRACTIONS = (0.0, 0.30)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


def make_harness(seed: int, workers: int) -> EvaluationHarness:
    return EvaluationHarness(
        n_base_servers=10, duration_s=hours(2), seed=seed, workers=workers
    )


def assert_points_identical(serial_points, parallel_points):
    assert len(serial_points) == len(parallel_points)
    for serial, parallel in zip(serial_points, parallel_points):
        assert serial.added_fraction == parallel.added_fraction
        for priority in Priority:
            assert serial.normalized_p50[priority] == \
                parallel.normalized_p50[priority]
            assert serial.normalized_p99[priority] == \
                parallel.normalized_p99[priority]
            assert serial.normalized_throughput[priority] == \
                parallel.normalized_throughput[priority]
        assert serial.power_brake_events == parallel.power_brake_events


class TestSweepParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_added_servers_sweep_bit_identical(self, seed):
        serial = added_servers_sweep(
            make_harness(seed, workers=1), PolcaThresholds(), FRACTIONS
        )
        parallel = added_servers_sweep(
            make_harness(seed, workers=2), PolcaThresholds(), FRACTIONS
        )
        assert_points_identical(serial, parallel)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sweep_with_faults_bit_identical(self, seed):
        plan = FaultPlan.adversarial(seed=seed)
        serial = added_servers_sweep(
            make_harness(seed, workers=1), PolcaThresholds(), FRACTIONS,
            fault_plan=plan,
        )
        parallel = added_servers_sweep(
            make_harness(seed, workers=2), PolcaThresholds(), FRACTIONS,
            fault_plan=plan,
        )
        assert_points_identical(serial, parallel)

    def test_threshold_search_bit_identical(self):
        combos = (
            ("80-89", PolcaThresholds(t1=0.80, t2=0.89)),
            ("85-95", PolcaThresholds(t1=0.85, t2=0.95)),
        )
        serial = threshold_search(
            make_harness(1, workers=1), combos, FRACTIONS
        )
        parallel = threshold_search(
            make_harness(1, workers=2), combos, FRACTIONS
        )
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert_points_identical([serial[key]], [parallel[key]])


class TestComparisonParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_compare_policies_bit_identical(self, seed):
        serial = compare_policies(
            make_harness(seed, workers=1), added_fraction=0.30,
            power_scales=(1.0, 1.05),
        )
        parallel = compare_policies(
            make_harness(seed, workers=2), added_fraction=0.30,
            power_scales=(1.0, 1.05),
        )
        assert len(serial) == len(parallel)
        for s, p in zip(serial, parallel):
            assert s.policy_name == p.policy_name
            for priority in Priority:
                assert s.normalized_p50[priority] == \
                    p.normalized_p50[priority]
                assert s.normalized_p99[priority] == \
                    p.normalized_p99[priority]
                assert s.normalized_max[priority] == \
                    p.normalized_max[priority]
            assert s.power_brake_events == p.power_brake_events

    def test_raw_results_bit_identical(self):
        """The underlying series/counters match, not just the summaries."""
        serial_h = make_harness(1, workers=1)
        parallel_h = make_harness(1, workers=3)
        spec = serial_h.spec(
            serial_h.baseline_spec().policy, added_fraction=0.0
        )
        serial = serial_h.engine().run_specs(
            [spec, serial_h.spec(serial_h.baseline_spec().policy, 0.30)]
        )
        parallel = parallel_h.engine().run_specs(
            [spec, parallel_h.spec(parallel_h.baseline_spec().policy, 0.30)]
        )
        for s, p in zip(serial, parallel):
            assert (s.power_series.values == p.power_series.values).all()
            assert s.total_energy_j == p.total_energy_j
            assert s.capping_actions == p.capping_actions
            assert s.power_brake_events == p.power_brake_events
            for priority in Priority:
                assert s.per_priority[priority].latencies == \
                    p.per_priority[priority].latencies
