"""Power-delivery fault domains: trip curves, topology, and lifecycle.

Unit coverage for :mod:`repro.powerfail` (inverse-time trip curves, the
server → rack → row topology, the protection runtime) and
:mod:`repro.control.emergency` (shed decisions, safe-mode clamps), plus
simulator-level regression tests: a fragile row must trip and recover
with exact request accounting, and a topology with generous headroom
must leave the simulation bit-identical to an unprotected run.
"""

import math

import numpy as np
import pytest

from repro.cluster.policy_base import GroupCaps
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.control.emergency import EmergencyConfig
from repro.core.baselines import NoCapPolicy
from repro.errors import ConfigurationError
from repro.obs import MemoryRecorder
from repro.powerfail import PowerTopology, ProtectionSpec, TripCurve
from repro.powerfail.protection import ProtectionRuntime
from repro.powerfail.topology import ProtectionDevice
from repro.workloads.requests import RequestSampler


def poisson_requests(rate_per_s, duration_s, seed=0):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


FAST_CURVE = TripCurve(tau_trip_s=5.0, tau_cool_s=60.0)


def fragile_config(seed=0, emergency=None):
    """30% oversubscribed behind a row breaker rated at 55% of the
    budget: sustained load trips it well inside a 240 s run."""
    return ClusterConfig(
        n_base_servers=4, added_fraction=0.5, seed=seed,
        protection=ProtectionSpec(
            servers_per_rack=2,
            row_headroom=0.55,
            rack_headroom=1.02,
            curve=FAST_CURVE,
            cooldown_s=20.0,
            restore_stagger_s=2.0,
            emergency=emergency or EmergencyConfig(enabled=False),
        ),
    )


# ----------------------------------------------------------------------
# Trip curve
# ----------------------------------------------------------------------
class TestTripCurve:
    def test_rate_signs(self):
        curve = TripCurve()
        assert curve.rate(1.5) > 0
        assert curve.rate(1.0) == 0.0
        assert curve.rate(0.5) < 0
        assert curve.rate(0.0) == -1.0 / curve.tau_cool_s

    def test_constant_overload_trip_time(self):
        curve = TripCurve(tau_trip_s=20.0)
        # 2x overload: t = tau / (4 - 1)
        assert curve.time_to_trip(2.0) == pytest.approx(20.0 / 3.0)
        assert curve.time_to_trip(1.0) == math.inf
        assert curve.time_to_trip(0.5) == math.inf

    def test_rate_and_trip_time_are_consistent(self):
        curve = TripCurve()
        for overload in (1.01, 1.2, 2.0, 5.0):
            assert curve.rate(overload) * curve.time_to_trip(overload) \
                == pytest.approx(1.0)

    def test_higher_overload_trips_faster(self):
        curve = TripCurve()
        assert curve.time_to_trip(3.0) < curve.time_to_trip(1.5)

    def test_reset_time(self):
        curve = TripCurve(tau_cool_s=600.0, reset_below=0.1)
        assert curve.reset_time_s == pytest.approx(0.9 * 600.0)

    @pytest.mark.parametrize("kwargs", [
        dict(tau_trip_s=0.0),
        dict(tau_cool_s=-1.0),
        dict(risk_at=0.2, clear_at=0.5),
        dict(risk_at=1.5),
        dict(clear_at=0.0),
        dict(reset_below=0.0),
        dict(reset_below=0.5, clear_at=0.3),
    ])
    def test_invalid_curves_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TripCurve(**kwargs)


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
class TestTopology:
    def test_build_shape(self):
        spec = ProtectionSpec(servers_per_rack=2)
        topology = PowerTopology.build(
            n_servers=5, provisioned_power_w=5000.0,
            peak_server_w=1000.0, spec=spec,
        )
        by_id = topology.by_id
        assert by_id["row"].capacity_w == 5000.0 * spec.row_headroom
        racks = [d for d in topology.devices if d.level == "rack"]
        assert len(racks) == 3  # 2 + 2 + 1
        assert by_id["rack2"].servers == (4,)
        # Rack shares are population-proportional, with headroom.
        assert by_id["rack0"].capacity_w == pytest.approx(
            5000.0 * (2 / 5) * spec.rack_headroom
        )
        assert by_id["fuse3"].capacity_w == pytest.approx(
            1000.0 * spec.server_headroom
        )
        assert topology.chains[3] == ("fuse3", "rack1", "row")

    def test_build_rejects_empty_row(self):
        with pytest.raises(ConfigurationError):
            PowerTopology.build(
                n_servers=0, provisioned_power_w=1000.0,
                peak_server_w=500.0, spec=ProtectionSpec(),
            )

    def test_duplicate_device_ids_rejected(self):
        device = ProtectionDevice(
            device_id="row", level="row", capacity_w=1.0,
            servers=(0,), parent=None,
        )
        with pytest.raises(ConfigurationError):
            PowerTopology(devices=(device, device), chains=(("row",),))

    def test_device_validation(self):
        with pytest.raises(ConfigurationError):
            ProtectionDevice(
                device_id="x", level="rack", capacity_w=0.0,
                servers=(0,), parent="row",
            )
        with pytest.raises(ConfigurationError):
            ProtectionDevice(
                device_id="x", level="rack", capacity_w=1.0,
                servers=(), parent="row",
            )

    @pytest.mark.parametrize("kwargs", [
        dict(servers_per_rack=0),
        dict(row_headroom=0.0),
        dict(rack_headroom=-1.0),
        dict(server_headroom=0.0),
        dict(cooldown_s=-1.0),
        dict(restore_batch=0),
        dict(restore_stagger_s=0.0),
        dict(cascade_window_s=-5.0),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProtectionSpec(**kwargs)


# ----------------------------------------------------------------------
# Protection runtime
# ----------------------------------------------------------------------
def small_runtime(idle_w=100.0, n_servers=4, **spec_kwargs):
    spec = ProtectionSpec(
        servers_per_rack=2, curve=FAST_CURVE, cooldown_s=10.0,
        restore_batch=1, restore_stagger_s=2.0, **spec_kwargs,
    )
    topology = PowerTopology.build(
        n_servers=n_servers, provisioned_power_w=1000.0 * n_servers,
        peak_server_w=1000.0, spec=spec,
    )
    return ProtectionRuntime(
        topology, spec, duration_s=1000.0,
        initial_powers=[idle_w] * n_servers,
    )


class TestProtectionRuntime:
    def test_calm_cluster_projects_nothing(self):
        runtime = small_runtime()
        assert runtime.initial_events() == []
        # A change that stays below every capacity stays silent too.
        assert runtime.update_server_power(10.0, 0, 500.0) == []
        assert not runtime.in_emergency

    def test_overload_projects_risk_then_trip_at_analytic_times(self):
        runtime = small_runtime()
        # 2x the row capacity: heat rate (4-1)/tau across the row.
        per_server = 2 * 4000.0 / 4
        pushes = []
        for index in range(4):
            pushes += runtime.update_server_power(0.0, index, per_server)
        row_pushes = [p for p in pushes if p[1][1] == "row"]
        fire_t, payload = row_pushes[-1]
        assert payload[:3] == ("prot", "row", "risk")
        curve = FAST_CURVE
        rate = curve.rate(2.0)
        assert fire_t == pytest.approx(curve.risk_at / rate)
        fired, info, next_pushes = runtime.on_projection(
            fire_t, "row", "risk", payload[3]
        )
        assert fired == "risk" and runtime.in_emergency
        assert info["overload"] == pytest.approx(2.0)
        (trip_t, trip_payload), = [
            p for p in next_pushes if p[1][1] == "row"
        ]
        assert trip_payload[2] == "trip"
        assert trip_t == pytest.approx(
            fire_t + (1.0 - curve.risk_at) / rate
        )

    def test_stale_epoch_projection_is_dropped(self):
        runtime = small_runtime()
        pushes = runtime.update_server_power(0.0, 0, 5000.0)
        _, payload = pushes[0]
        runtime.update_server_power(1.0, 0, 100.0)  # rate changed
        assert runtime.on_projection(2.0, payload[1], payload[2],
                                     payload[3]) is None

    def test_trip_lifecycle_and_staged_restore(self):
        runtime = small_runtime()
        covered = runtime.begin_trip("rack0", 50.0)
        assert covered == [0, 1]
        assert runtime.is_deenergized(0) and runtime.is_deenergized(1)
        assert not runtime.is_deenergized(2)
        record, (restore_at, restore_payload) = runtime.commit_trip(
            "rack0", 50.0, dropped=3
        )
        assert record["device"] == "rack0"
        assert record["dropped"] == 3
        assert record["servers_offline"] == 2
        assert restore_at == 50.0 + max(
            10.0, FAST_CURVE.reset_time_s
        )
        assert restore_payload == ("prot_restore", "rack0", 0, 1)
        assert runtime.report.trips == 1
        # restore_batch=1: two staged steps bring the rack back.
        batch, next_push, done = runtime.restore_step(
            "rack0", 0, 1, restore_at
        )
        assert batch == [0] and not done and next_push is not None
        assert runtime.is_deenergized(1)
        batch, next_push, done = runtime.restore_step(
            "rack0", 1, 1, restore_at + 2.0
        )
        assert batch == [1] and done and next_push is None
        assert not runtime.is_deenergized(0)
        assert not runtime.in_emergency

    def test_stale_restore_version_is_dropped(self):
        runtime = small_runtime()
        runtime.begin_trip("rack0", 50.0)
        runtime.commit_trip("rack0", 50.0, dropped=0)
        assert runtime.restore_step("rack0", 0, 99, 120.0) is None

    def test_second_trip_within_window_is_a_cascade(self):
        runtime = small_runtime(cascade_window_s=60.0)
        runtime.begin_trip("rack0", 50.0)
        record, _ = runtime.commit_trip("rack0", 50.0, dropped=0)
        assert not record["cascaded"]
        runtime.begin_trip("rack1", 80.0)
        record, _ = runtime.commit_trip("rack1", 80.0, dropped=0)
        assert record["cascaded"]
        assert runtime.report.trips == 2
        assert runtime.report.cascade_trips == 1

    def test_offline_stats(self):
        runtime = small_runtime()
        assert runtime.offline_stats(1000.0) == (0.0, 0.0)
        runtime.begin_trip("rack0", 10.0)
        watts, fraction = runtime.offline_stats(1000.0)
        assert watts == 2000.0 and fraction == 0.5


# ----------------------------------------------------------------------
# Emergency response config
# ----------------------------------------------------------------------
class TestEmergencyConfig:
    def test_shed_decisions(self):
        emergency = EmergencyConfig(max_defers=2)
        assert emergency.shed_action("high", "Chat", 0) is None
        assert emergency.shed_action("low", "Summarize", 0) == "defer"
        assert emergency.shed_action("low", "Summarize", 2) == "drop"
        assert emergency.shed_action("low", "Chat", 0) == "drop"

    def test_disabled_sheds_nothing(self):
        emergency = EmergencyConfig(enabled=False)
        assert emergency.shed_action("low", "Chat", 0) is None

    def test_clamp_min_combines(self):
        emergency = EmergencyConfig(
            safe_low_clock_mhz=1110.0, safe_high_clock_mhz=1305.0
        )
        clamped = emergency.clamp(GroupCaps.uncapped())
        assert clamped.low_clock_mhz == 1110.0
        assert clamped.high_clock_mhz == 1305.0
        already_lower = GroupCaps(low_clock_mhz=900.0,
                                  high_clock_mhz=1200.0)
        assert emergency.clamp(already_lower) == already_lower

    @pytest.mark.parametrize("kwargs", [
        dict(defer_s=0.0),
        dict(max_defers=-1),
        dict(safe_low_clock_mhz=0.0),
        dict(safe_high_clock_mhz=-1.0),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EmergencyConfig(**kwargs)


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------
class TestSimulatorTrips:
    def test_fragile_row_trips_and_recovers(self):
        """The end-to-end lifecycle: trip, mid-flight drops, staged
        re-energization — with exact accounting per priority AND per
        workload tier (the simulator enforces the invariant itself and
        raises if a trip loses a request)."""
        requests = poisson_requests(1.5, 240.0, seed=0)
        recorder = MemoryRecorder()
        result = ClusterSimulator(
            fragile_config(), NoCapPolicy(), recorder=recorder
        ).run(requests, 240.0)
        pf = result.powerfail
        assert pf is not None
        assert pf.trips >= 1
        assert pf.reenergizations >= 1
        assert pf.offline_server_seconds > 0.0
        # A trip pins the peak at the trip point (a settle landing a
        # float-rounding hair past the projected crossing is fine).
        assert pf.peak_accumulator == pytest.approx(1.0)
        for entry in pf.trip_log:
            assert entry["overload"] > 1.0
            assert entry["restore_at"] > entry["t"]
        accounted = sum(
            m.served + m.dropped for m in result.per_priority.values()
        )
        assert accounted == len(requests)
        by_workload = sum(
            m.served + m.dropped for m in result.per_workload.values()
        )
        assert by_workload == len(requests)
        kinds = [e.get("kind") for e in recorder.events]
        assert "trip" in kinds and "reenergize" in kinds
        assert "reenergize_done" in kinds and "capacity_status" in kinds
        trip_drops = [
            e for e in recorder.events
            if e.get("kind") == "drop" and e.get("reason") == "trip"
        ]
        assert len(trip_drops) == pf.requests_lost_to_trips
        for event in trip_drops:
            assert event["server"] and event["device"]
        assert pf.energy_conserved_exactly

    def test_emergency_shedding_engages_on_risk(self):
        requests = poisson_requests(1.5, 240.0, seed=0)
        recorder = MemoryRecorder()
        result = ClusterSimulator(
            fragile_config(emergency=EmergencyConfig()),
            NoCapPolicy(), recorder=recorder,
        ).run(requests, 240.0)
        pf = result.powerfail
        assert pf.shed_engagements >= 1
        assert pf.time_shedding_s > 0.0
        assert pf.requests_dropped_shed + pf.requests_deferred > 0
        kinds = [e.get("kind") for e in recorder.events]
        assert "shed_engage" in kinds and "shed_release" in kinds
        accounted = sum(
            m.served + m.dropped for m in result.per_priority.values()
        )
        assert accounted == len(requests)

    def test_permanently_overloaded_breaker_terminates(self):
        """Regression: a breaker that cannot hold even the post-drain
        load must not trip/restore forever past the horizon (the run
        loop discards protection events after ``duration_s``)."""
        requests = poisson_requests(1.5, 120.0, seed=0)
        result = ClusterSimulator(
            fragile_config(), NoCapPolicy()
        ).run(requests, 120.0)
        assert result.powerfail.trips >= 1

    def test_codec_round_trips_powerfail(self):
        from repro.exec import result_from_dict, result_to_dict

        requests = poisson_requests(1.5, 240.0, seed=0)
        result = ClusterSimulator(
            fragile_config(), NoCapPolicy()
        ).run(requests, 240.0)
        assert result.powerfail.trips >= 1
        decoded = result_from_dict(result_to_dict(result))
        assert decoded.powerfail == result.powerfail


class TestProtectionParity:
    """Protection that never engages is invisible, bit for bit."""

    GENEROUS = ProtectionSpec(row_headroom=10.0, rack_headroom=10.0,
                              server_headroom=10.0)

    @pytest.mark.parametrize("name", [
        "polca-default", "polca-oversubscribed", "nocap-power-scaled",
    ])
    def test_generous_headroom_is_bit_identical_to_unprotected(
        self, name
    ):
        from tests.test_obs import (
            REFERENCE_CONFIGS,
            assert_results_bit_identical,
            make_requests,
        )

        overrides, policy_factory = REFERENCE_CONFIGS[name]
        requests = make_requests(4.0, 240.0, seed=overrides["seed"])
        bare = ClusterSimulator(
            ClusterConfig(**overrides), policy_factory()
        ).run(list(requests), 240.0)
        protected = ClusterSimulator(
            ClusterConfig(**overrides, protection=self.GENEROUS),
            policy_factory(),
        ).run(list(requests), 240.0)
        assert_results_bit_identical(bare, protected)
        assert bare.powerfail is None
        pf = protected.powerfail
        assert pf.trips == 0 and pf.shed_engagements == 0
        assert pf.energy_conserved_exactly
